#!/usr/bin/env python3
"""CMS-style analysis facility: the scenario that motivates the paper.

The paper's introduction: US CMS Tier-2 sites run arbitrarily divisible
event-analysis jobs and want a multi-tiered QoS framework where jobs
"pay" for the response time they request.  This example models such a
site:

* a 32-node analysis cluster;
* two job classes — *interactive calibration* jobs (small data, tight
  deadlines) and *bulk skim* jobs (large data, loose deadlines);
* one shared admission controller per algorithm.

It compares the paper's EDF-DLT against the current practice
(EDF-UserSplit, users hand-splitting their skims) and prints per-class
acceptance, plus an ASCII Gantt excerpt of the DLT schedule.

Usage::

    python examples/cms_physics_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import make_algorithm
from repro.core.cluster import ClusterSpec
from repro.core.task import DivisibleTask, TaskOutcome
from repro.sim.cluster_sim import ClusterSimulation
from repro.sim.trace import render_gantt

CLUSTER = ClusterSpec(nodes=32, cms=1.0, cps=100.0)
HORIZON = 400_000.0


def build_workload(seed: int) -> tuple[list[DivisibleTask], dict[int, str]]:
    """Two Poisson streams: calibration (tight) + skim (bulk)."""
    rng = np.random.default_rng(seed)
    classes: dict[int, str] = {}
    tasks: list[DivisibleTask] = []

    # Interactive calibration: sigma ~ 50, deadline ~ 1.5x min exec.
    t = 0.0
    while t < HORIZON:
        t += rng.exponential(2_000.0)
        if t >= HORIZON:
            break
        sigma = float(max(rng.normal(50.0, 15.0), 5.0))
        min_exec = sigma * (1.0 + 100.0 / 32)  # rough E(sigma, N) scale
        tasks.append(
            DivisibleTask(
                task_id=len(tasks),
                arrival=t,
                sigma=sigma,
                deadline=float(min_exec * rng.uniform(1.5, 3.0)),
            )
        )
        classes[tasks[-1].task_id] = "calibration"

    # Bulk skims: sigma ~ 800, deadlines ~ 6x min exec.
    t = 0.0
    while t < HORIZON:
        t += rng.exponential(9_000.0)
        if t >= HORIZON:
            break
        sigma = float(max(rng.normal(800.0, 250.0), 50.0))
        min_exec = sigma * (1.0 + 100.0 / 32)
        tasks.append(
            DivisibleTask(
                task_id=len(tasks),
                arrival=t,
                sigma=sigma,
                deadline=float(min_exec * rng.uniform(4.0, 8.0)),
            )
        )
        classes[tasks[-1].task_id] = "skim"

    tasks.sort(key=lambda x: x.arrival)
    # Re-number so ids follow arrival order (required by the simulator).
    renumbered = []
    new_classes: dict[int, str] = {}
    for i, task in enumerate(tasks):
        renumbered.append(
            DivisibleTask(
                task_id=i,
                arrival=task.arrival,
                sigma=task.sigma,
                deadline=task.deadline,
            )
        )
        new_classes[i] = classes[task.task_id]
    return renumbered, new_classes


def acceptance_by_class(records, classes) -> dict[str, tuple[int, int]]:
    out: dict[str, tuple[int, int]] = {}
    for tid, rec in records.items():
        cls = classes[tid]
        acc, tot = out.get(cls, (0, 0))
        out[cls] = (acc + (rec.outcome is TaskOutcome.ACCEPTED), tot + 1)
    return out


def main() -> None:
    tasks, classes = build_workload(seed=7)
    print(f"workload: {len(tasks)} jobs over {HORIZON:.0f} time units "
          f"({sum(1 for c in classes.values() if c == 'calibration')} "
          f"calibration, {sum(1 for c in classes.values() if c == 'skim')} skims)")
    print()

    gantt_src = None
    for algorithm in ("EDF-DLT", "EDF-UserSplit"):
        rng = np.random.default_rng(123)  # User-Split's node requests
        sim = ClusterSimulation(
            CLUSTER,
            make_algorithm(algorithm, rng=rng),
            tasks,
            horizon=HORIZON,
            trace=True,
        )
        out = sim.run()
        print(f"{algorithm}: reject ratio {out.stats.reject_ratio:.2%}, "
              f"validation: {out.validation.summary()}")
        for cls, (acc, tot) in sorted(acceptance_by_class(out.records, classes).items()):
            print(f"  {cls:<12s} accepted {acc}/{tot} ({acc / tot:.1%})")
        if algorithm == "EDF-DLT":
            gantt_src = out.traces
        print()

    if gantt_src:
        window = [tr for tr in gantt_src if tr.start < 30_000.0]
        print("EDF-DLT schedule, first 30k time units ('-' transmit, '#' compute):")
        print(render_gantt(window, nodes=8, width=72, t_start=0.0, t_end=30_000.0))
        print("(first 8 of 32 nodes shown)")


if __name__ == "__main__":
    main()
