#!/usr/bin/env python3
"""Adaptive routing: bandits learn the fleet's best router online.

Walkthrough of the ``repro.learn`` layer on the documented heterogeneous
4-cluster fleet (``docs/fleet.md``: four 8-node clusters, cluster speeds
spanning cps·[0.6, 1.4], per-cluster load 0.6):

1. run the four *static* routing policies on the shared stream — the
   spread between the best (``earliest-finish``) and the worst shows what
   there is to learn;
2. run the three *bandit* meta-policies (``epsilon-greedy``, ``ucb1``,
   ``thompson``) that pick among those same routers per task and learn
   from accept/reject feedback — each converges to (or near) the best
   static policy without being told which one it is;
3. pin a bandit to a single arm — it reproduces that static policy's run
   record by record (the learning layer's equivalence anchor);
4. show what one bandit learned: per-arm pulls, means, regret.

Convergence (each bandit's reject ratio at most the worst static
policy's, and within 10% of the best static policy's) is asserted here
and in ``tests/test_learn.py``.

Usage::

    python examples/adaptive_routing.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import FleetScenario, LearnConfig, simulate_fleet
from repro.fleet import routing_policy_names, static_routing_policy_names
from repro.learn import learning_policy_names

#: The documented fleet configuration (docs/fleet.md) at the example
#: horizon: long enough for a few hundred routing decisions — the scale
#: where the bandits' arm estimates separate cleanly.
FLEET_KWARGS = dict(
    n_clusters=4,
    system_load=0.6,
    total_time=400_000.0,
    seed=2007,
    nodes=8,
    cluster_spread=0.8,
)


def run_static_policies(base: FleetScenario) -> dict[str, float]:
    """Reject ratios of the four static routers on the shared stream."""
    print("1. static routing policies (the arms)")
    print("-" * 64)
    results: dict[str, float] = {}
    for policy in static_routing_policy_names():
        out = simulate_fleet(base.with_policy(policy), "EDF-DLT")
        results[policy] = out.reject_ratio
        print(f"  {policy:<16s} fleet rr={out.reject_ratio:.4f}")
    print()
    return results


def run_bandit_policies(base: FleetScenario) -> dict[str, float]:
    """Reject ratios of the bandit meta-policies on the same stream."""
    print("2. bandit meta-policies (learning which arm fits this fleet)")
    print("-" * 64)
    results: dict[str, float] = {}
    for policy in learning_policy_names():
        out = simulate_fleet(base.with_policy(policy), "EDF-DLT")
        results[policy] = out.reject_ratio
        report = out.learning
        assert report is not None
        print(
            f"  {policy:<16s} fleet rr={out.reject_ratio:.4f}  "
            f"best arm={report.best_arm}  "
            f"regret={report.cumulative_regret:.1f}"
        )
    print()
    return results


def show_pinned_parity(base: FleetScenario) -> None:
    """A bandit pinned to one arm replays that static policy exactly."""
    print("3. pinned-arm parity (single-arm bandit == static policy)")
    print("-" * 64)
    for arm in static_routing_policy_names():
        pinned = base.with_policy("ucb1").with_learn(LearnConfig(arms=(arm,)))
        bandit_out = simulate_fleet(pinned, "EDF-DLT")
        static_out = simulate_fleet(base.with_policy(arm), "EDF-DLT")
        assert bandit_out.assignments == static_out.assignments
        assert (
            replace(bandit_out.metrics, learning_regret=0.0)
            == static_out.metrics
        )
        print(f"  ucb1 pinned to {arm:<16s} == static run, bit for bit")
    print()


def show_learning_report(base: FleetScenario) -> None:
    """Per-arm statistics of one converged bandit run."""
    print("4. what epsilon-greedy learned (per-arm statistics)")
    print("-" * 64)
    out = simulate_fleet(base.with_policy("epsilon-greedy"), "EDF-DLT")
    report = out.learning
    assert report is not None
    for arm in report.arms:
        print(
            f"  {arm.name:<16s} pulls={arm.pulls:<5d} "
            f"mean reward={arm.mean_reward:.3f}"
        )
    print(
        f"  -> {report.resolved} rewards resolved, best arm "
        f"{report.best_arm!r}, cumulative regret "
        f"{report.cumulative_regret:.1f}"
    )
    print()


def main() -> None:
    """Run the full walkthrough and assert the convergence claim."""
    base = FleetScenario.uniform(**FLEET_KWARGS)
    print(
        f"fleet: {base.n_clusters} clusters x {base.clusters[0].nodes} "
        f"nodes, cluster_spread=0.8, per-cluster load 0.6, "
        f"horizon {base.total_time:g}, seed {base.seed}"
    )
    print(f"routing registry: {', '.join(routing_policy_names())}")
    print()

    static = run_static_policies(base)
    bandits = run_bandit_policies(base)
    show_pinned_parity(base)
    show_learning_report(base)

    best, worst = min(static.values()), max(static.values())
    print("convergence check")
    print("-" * 64)
    for policy, rr in bandits.items():
        assert rr <= worst, f"{policy} worse than the worst static policy"
        assert rr <= best * 1.10, f"{policy} not within 10% of the best"
        print(
            f"  {policy:<16s} rr={rr:.4f} <= worst static {worst:.4f}, "
            f"within 10% of best static {best:.4f}"
        )
    print()
    print("All adaptive-routing assertions held (parity + convergence).")


if __name__ == "__main__":
    main()
