#!/usr/bin/env python3
"""Empirical validation of Theorem 4 at scale.

Theorem 4 is the paper's soundness result: executing the heterogeneous-
model partition on the real homogeneous cluster finishes **no later**
than the estimate ``r_n + Ê``.  The simulator asserts this on every task
of every run; this script goes further and *characterises* the slack —
how conservative the estimate actually is — across thousands of
staggered-release instances, broken down by stagger magnitude.

Usage::

    python examples/theorem4_validation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import het_model

CMS, CPS = 1.0, 100.0
SIGMA = 200.0


def main() -> None:
    rng = np.random.default_rng(20070227)
    buckets: dict[str, list[float]] = {}
    violations = 0
    trials = 5_000

    for _ in range(trials):
        n = int(rng.integers(2, 17))
        spread = float(rng.uniform(0.0, 2000.0))
        releases = np.sort(rng.uniform(0.0, spread, size=n))
        model = het_model.build_model(SIGMA, releases, CMS, CPS)
        sched = het_model.actual_node_schedule(
            SIGMA, model.alphas, model.release_times, CMS, CPS
        )
        slack = model.completion - sched.completion
        if slack < -1e-6 * model.completion:
            violations += 1
        rel_spread = (releases[-1] - releases[0]) / model.no_iit_exec_time
        if rel_spread < 0.05:
            key = "spread < 5% of E"
        elif rel_spread < 0.25:
            key = "spread 5-25% of E"
        else:
            key = "spread > 25% of E"
        buckets.setdefault(key, []).append(slack / model.exec_time)

    print(f"instances checked : {trials}")
    print(f"Theorem 4 violations: {violations} (must be 0)")
    assert violations == 0
    print()
    print("relative slack (estimate − actual) / Ê, by release-time stagger:")
    for key in ("spread < 5% of E", "spread 5-25% of E", "spread > 25% of E"):
        vals = np.array(buckets.get(key, [0.0]))
        print(
            f"  {key:<20s} mean {vals.mean():.4f}  "
            f"p50 {np.percentile(vals, 50):.4f}  "
            f"p99 {np.percentile(vals, 99):.4f}  max {vals.max():.4f}"
        )
    print()
    print("Interpretation: the estimate is tight (tiny slack) when nodes")
    print("free nearly simultaneously, and grows conservative with stagger —")
    print("the λ̃ transmission-delay bound of Theorem 4's proof is the gap.")


if __name__ == "__main__":
    main()
