#!/usr/bin/env python3
"""Quickstart: describe an experiment as a Scenario and run it.

Composes the paper's baseline scenario (N=16, Cms=1, Cps=100 at 60%
system load), runs the paper's algorithm (EDF-DLT) against the no-IIT
baseline (EDF-OPR-MN) through the batch engine, then swaps the workload
model for a bursty, heavy-tailed one — same cluster, same seeds — to show
what the composable API buys.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BatchRunner,
    MMPPProcess,
    ParetoSizes,
    RunSpec,
    Scenario,
    WorkloadModel,
)

ALGORITHMS = ("EDF-DLT", "EDF-OPR-MN")


def run_and_print(scenario: Scenario) -> None:
    """One table: both algorithms on the identical task set."""
    header = (
        f"{'algorithm':<14s} {'arrivals':>8s} {'rejects':>8s} "
        f"{'reject%':>8s} {'util':>6s} {'misses':>7s} {'slack':>8s}"
    )
    print(header)
    print("-" * len(header))
    specs = [
        RunSpec(scenario=scenario, algorithm=a, keep_output=True)
        for a in ALGORITHMS
    ]
    for record in BatchRunner().run(specs):  # BatchRunner(workers=4) to fan out
        m = record.metrics
        print(
            f"{record.algorithm:<14s} {m.arrivals:>8d} {m.rejected:>8d} "
            f"{m.reject_ratio:>8.2%} {m.utilization:>6.2f} "
            f"{m.deadline_misses:>7d} {m.mean_slack:>8.2f}"
        )
        # The validator checked Theorem 4 on every executed task:
        assert record.output is not None and record.output.validation.ok


def main() -> None:
    # --- The paper's Section 5.1 baseline, as a composable Scenario -------
    baseline = Scenario.paper_baseline(
        system_load=0.6,       # offered load vs the all-nodes drain rate
        total_time=500_000.0,  # simulation horizon
        seed=42,
        # cluster + workload knobs (these are the defaults, spelled out):
        nodes=16, cms=1.0, cps=100.0, avg_sigma=200.0, dc_ratio=2.0,
    )
    mean_gap = baseline.workload.arrivals.mean_interarrival
    print("cluster      : N=16, Cms=1, Cps=100 (Section 5.1 baseline)")
    print(f"interarrival : {mean_gap:.1f} time units (load 0.6)")
    print()
    run_and_print(baseline)
    print()
    print("Theorem 4 held for every executed task; zero deadline misses —")
    print("exactly the guarantee the schedulability test of Figure 2 makes.")
    print()

    # --- Same cluster, harsher traffic: bursty arrivals, heavy tails ------
    stressed = baseline.with_overrides(
        name="bursty-pareto",
        workload=WorkloadModel(
            arrivals=MMPPProcess.balanced(mean_gap, burst_factor=4.0),
            sizes=ParetoSizes(mean=200.0, alpha=2.5),
            deadlines=baseline.workload.deadlines,
        ),
    )
    print("same cluster under bursty (MMPP) arrivals + Pareto sizes:")
    print()
    run_and_print(stressed)


if __name__ == "__main__":
    main()
