#!/usr/bin/env python3
"""Quickstart: admit, schedule and execute a real-time divisible workload.

Runs the paper's baseline cluster (N=16, Cms=1, Cps=100) at 60% system
load under the paper's algorithm (EDF-DLT) and under the no-IIT baseline
(EDF-OPR-MN), then prints the admission and execution metrics side by
side.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, simulate


def main() -> None:
    config = SimulationConfig(
        nodes=16,          # processing nodes behind the switch
        cms=1.0,           # time to ship one workload unit to a node
        cps=100.0,         # time to compute one workload unit on a node
        system_load=0.6,   # offered load vs the all-nodes drain rate
        avg_sigma=200.0,   # mean task data size
        dc_ratio=2.0,      # mean deadline = 2 x mean minimum execution time
        total_time=500_000.0,
        seed=42,
    )

    print("cluster      : N=16, Cms=1, Cps=100 (Section 5.1 baseline)")
    print(f"mean E(σ,N)  : {config.min_exec_time_avg:.1f} time units")
    print(f"interarrival : {config.mean_interarrival:.1f} time units (load 0.6)")
    print()

    header = (
        f"{'algorithm':<14s} {'arrivals':>8s} {'rejects':>8s} "
        f"{'reject%':>8s} {'util':>6s} {'misses':>7s} {'slack':>8s}"
    )
    print(header)
    print("-" * len(header))
    for algorithm in ("EDF-DLT", "EDF-OPR-MN"):
        result = simulate(config, algorithm)
        m = result.metrics
        print(
            f"{algorithm:<14s} {m.arrivals:>8d} {m.rejected:>8d} "
            f"{m.reject_ratio:>8.2%} {m.utilization:>6.2f} "
            f"{m.deadline_misses:>7d} {m.mean_slack:>8.2f}"
        )
        # The validator checked Theorem 4 on every executed task:
        assert result.output.validation.ok

    print()
    print("Theorem 4 held for every executed task; zero deadline misses —")
    print("exactly the guarantee the schedulability test of Figure 2 makes.")


if __name__ == "__main__":
    main()
