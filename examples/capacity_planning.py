#!/usr/bin/env python3
"""Capacity planning with the reproduction as a what-if tool.

A facility question the paper's framework answers directly: *how many
nodes does the cluster need so that at most 10% of jobs are rejected at a
given offered load?*  This script sweeps the cluster size N for both the
paper's EDF-DLT and the EDF-OPR-MN baseline and reports the smallest
adequate cluster — the IIT-utilizing algorithm consistently needs fewer
(or equal) nodes for the same QoS.

Usage::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import SimulationConfig
from repro.core import dlt
from repro.experiments.runner import run_replications

TARGET_REJECT = 0.15
NODE_GRID = (8, 12, 16, 24, 32, 48)

# The demand is fixed in absolute terms: one job every REFERENCE_GAP time
# units on average (SystemLoad is defined *relative* to a cluster's size,
# so sweeping N at constant SystemLoad would sweep the arrival rate too —
# a capacity question holds the arrival rate still and grows the cluster).
REFERENCE_GAP = 2_700.0  # ≈ SystemLoad 0.5 on the paper's 16-node baseline


def reject_at(nodes: int, algorithm: str) -> float:
    e_avg = dlt.execution_time(200.0, nodes, 1.0, 100.0)
    cfg = SimulationConfig(
        nodes=nodes,
        cms=1.0,
        cps=100.0,
        system_load=e_avg / REFERENCE_GAP,  # fixed absolute arrival rate
        avg_sigma=200.0,
        dc_ratio=3.0,
        total_time=300_000.0,
        seed=2024,
    )
    return run_replications(cfg, algorithm, replications=3).ci.mean


def main() -> None:
    print(f"target: reject ratio <= {TARGET_REJECT:.0%} at a fixed demand of")
    print(f"one job per {REFERENCE_GAP:.0f} time units (Avgσ=200, DCRatio=3)")
    print()
    print(f"{'N':>4s}  {'EDF-DLT':>10s}  {'EDF-OPR-MN':>11s}")
    needed: dict[str, int | None] = {"EDF-DLT": None, "EDF-OPR-MN": None}
    for n in NODE_GRID:
        row = [f"{n:>4d}"]
        for alg in ("EDF-DLT", "EDF-OPR-MN"):
            r = reject_at(n, alg)
            row.append(f"{r:>10.2%} " if alg == "EDF-DLT" else f"{r:>11.2%}")
            if needed[alg] is None and r <= TARGET_REJECT:
                needed[alg] = n
        print("  ".join(row))
    print()
    for alg, n in needed.items():
        verdict = f"{n} nodes" if n is not None else f"> {NODE_GRID[-1]} nodes"
        print(f"{alg:<12s} needs {verdict} to hit the target")


if __name__ == "__main__":
    main()
