#!/usr/bin/env python3
"""Preview of the paper's future work: multi-round IIT scheduling.

Section 6 closes with: "by adopting multi-round scheduling [10], we can
further improve the IITs utilization and the system performance."  The
``repro.ext.multiround`` extension implements a uniform multi-round
dispatcher; this script measures how the reject ratio responds to the
round count M on the baseline workload — and confirms the paper's
hypothesis directionally.

Usage::

    python examples/multiround_future_work.py
"""

from __future__ import annotations

from repro import SimulationConfig, simulate
from repro.ext.multiround import register_multiround


def main() -> None:
    cfg = SimulationConfig(
        nodes=16,
        cms=1.0,
        cps=100.0,
        system_load=0.8,
        avg_sigma=200.0,
        dc_ratio=2.0,
        total_time=400_000.0,
        seed=11,
    )

    print("baseline EDF-DLT (single-round heterogeneous-model partition):")
    base = simulate(cfg, "EDF-DLT").metrics
    print(f"  reject ratio {base.reject_ratio:.4f}, "
          f"utilization {base.utilization:.3f}")
    print()
    print("uniform multi-round (equal chunks, round-robin dispatch):")
    print(f"{'rounds':>7s} {'reject':>8s} {'util':>6s} {'Δ vs DLT':>9s}")
    for rounds in (1, 2, 4, 8, 16):
        register_multiround(rounds=rounds)
        m = simulate(cfg, "EDF-MR-DLT").metrics
        print(
            f"{rounds:>7d} {m.reject_ratio:>8.4f} {m.utilization:>6.3f} "
            f"{m.reject_ratio - base.reject_ratio:>+9.4f}"
        )
    print()
    print("M=1 is the naive equal split; moderate M recovers almost all of")
    print("the optimal single-round partition's benefit without any of the")
    print("heterogeneous-model math, by letting early nodes start on small")
    print("chunks immediately.  On some workloads (see the multi-round")
    print("ablation bench) it edges ahead — the direction Section 6 predicts;")
    print("a full multi-round reproduction would need the paper's follow-up.")


if __name__ == "__main__":
    main()
