#!/usr/bin/env python3
"""Fleet routing: shard one arrival stream across four clusters.

Walkthrough of the ``repro.fleet`` layer:

1. a 1-cluster fleet reproduces the single-cluster simulation *exactly*
   (same seed → bit-identical records under every routing policy);
2. a heterogeneous 4-cluster fleet (fast → slow members) compares all
   four routing policies on the identical shared stream;
3. the documented configuration where the DLT-aware ``earliest-finish``
   router beats blind ``round-robin`` on fleet reject ratio — asserted
   here and in ``tests/test_fleet.py``.

Usage::

    python examples/fleet_routing.py
"""

from __future__ import annotations

from repro import FleetScenario, simulate, simulate_fleet
from repro.fleet import static_routing_policy_names

#: The documented configuration (see docs/fleet.md): four 8-node clusters
#: whose nominal per-node cost spans cps·[0.6, 1.4] (cluster 0 fastest),
#: fed at 0.6 per-cluster load.
FLEET_KWARGS = dict(
    n_clusters=4,
    system_load=0.6,
    total_time=100_000.0,
    seed=2007,
    nodes=8,
    cluster_spread=0.8,
)


def show_single_cluster_equivalence() -> None:
    """A 1-cluster fleet is the single-cluster simulation, bit for bit."""
    print("1. single-cluster equivalence")
    print("-" * 60)
    for policy in static_routing_policy_names():
        fleet = FleetScenario.uniform(
            n_clusters=1,
            system_load=0.6,
            total_time=60_000.0,
            seed=42,
            policy=policy,
        )
        fleet_out = simulate_fleet(fleet, "EDF-DLT")
        single_out = simulate(fleet.stream_scenario(), "EDF-DLT")
        assert fleet_out.metrics == single_out.metrics
        print(
            f"  policy={policy:<16s} fleet rr={fleet_out.reject_ratio:.4f} "
            f"== single rr={single_out.metrics.reject_ratio:.4f}"
        )
    print()


def compare_policies() -> None:
    """All four static policies on the identical heterogeneous 4-cluster stream

    (the bandit policies that learn among these are walked through in
    ``examples/adaptive_routing.py``)."""
    print("2. routing policies on a heterogeneous 4-cluster fleet")
    print("-" * 60)
    base = FleetScenario.uniform(**FLEET_KWARGS)
    print(
        f"  {base.n_clusters} clusters x {base.clusters[0].nodes} nodes, "
        f"cluster_spread=0.8 (cluster 0 fastest), "
        f"per-cluster load {0.6:g}, seed {base.seed}"
    )
    print()
    results: dict[str, float] = {}
    for policy in static_routing_policy_names():
        out = simulate_fleet(base.with_policy(policy), "EDF-DLT")
        results[policy] = out.reject_ratio
        routed = "/".join(str(c) for c in out.routed_counts)
        print(
            f"  {policy:<16s} fleet rr={out.reject_ratio:.4f}  "
            f"util={out.metrics.utilization:.3f}  routed {routed}"
        )
        for m in out.per_cluster:
            assert m.deadline_misses == 0  # Theorem 4 held on every member
    print()

    # The headline claim, asserted: the DLT-aware router sees through the
    # speed spread that blind cycling cannot.
    assert results["earliest-finish"] <= results["round-robin"], results
    gain = results["round-robin"] - results["earliest-finish"]
    print(
        f"  earliest-finish rejects {gain:.1%} fewer arrivals than "
        "round-robin on this fleet."
    )
    print()


def main() -> None:
    """Run the full walkthrough."""
    show_single_cluster_equivalence()
    compare_policies()
    print("All fleet assertions held (equivalence + earliest-finish win).")


if __name__ == "__main__":
    main()
