#!/usr/bin/env python3
"""Perf regression gate: a fresh BENCH_core.json vs the committed baseline.

Compares the *speedup* metrics (batch and fast admission engines over the
reference engine, replaying the same captured call stream on the same
machine) of a freshly generated ``BENCH_core.json`` against the committed
record, and — when ``--serve-baseline``/``--serve-fresh`` are given — the
admission service's concurrency-retention ratios of ``BENCH_serve.json``.
Speedups are relative throughputs, so they transfer across machines where
absolute decisions/sec do not; the gate fails when a fresh speedup drops
more than ``--tolerance`` (default 30%) below the committed value.  The
fresh record's admission-throughput panel (three load points x three
engines) is also shape-checked.  Rationale, tolerance choice and escape
hatches are documented in ``docs/performance.md``.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_core.py -q   # refresh
    python scripts/check_perf.py --baseline BENCH_core.json \\
        --fresh /path/to/fresh/BENCH_core.json [--tolerance 0.30]

Exit code 0 = within tolerance; 1 = regression (details on stdout).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (human label, path into the record) of each gated ratio metric.
GATED_METRICS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("core admission speedup (batch)", ("core", "speedup")),
    ("core admission speedup (fast)", ("core", "speedup_fast")),
    (
        "earliest-finish fleet speedup (batch)",
        ("fleet", "earliest-finish", "speedup"),
    ),
    (
        "earliest-finish fleet speedup (fast)",
        ("fleet", "earliest-finish", "speedup_fast"),
    ),
)

#: Absolute floor on the instrumentation-disabled throughput ratio
#: (registry attached, tracer off, vs the uninstrumented replay of the
#: same call stream).  A same-run ratio, so it transfers across machines
#: and is gated absolutely rather than against the committed record; the
#: tracer-on ratio rides the record ungated (docs/observability.md).
TRACING_DISABLED_RATIO_MIN = 0.95

#: The admission-throughput panel's expected axes (shape check only —
#: absolute decisions/sec are machine-specific, so they are not gated).
PANEL_LOADS = ("3", "6", "10")
PANEL_ENGINES = ("reference", "fast", "batch")

#: Absolute floor on the deep-queue checkpoint speedup (batch engine with
#: prefix checkpoints vs its own checkpoint-ablated replay of the same
#: stream).  A same-run ratio on identical hardware, so it is gated
#: absolutely; matches the benchmark's REPRO_BENCH_CKPT_MIN_SPEEDUP
#: default (docs/performance.md).
CKPT_SPEEDUP_MIN = 2.0

#: Engines the deep-queue panel must report (checkpoint on and ablated).
DEEP_QUEUE_ENGINES = ("fast", "batch")

#: Gated ratio metrics of BENCH_serve.json (``--serve-baseline``): the
#: service's concurrency retention — throughput at N clients relative to
#: one client — is a machine-transferable property of the watermark
#: merge, unlike raw decisions/sec.
SERVE_METRICS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("serve 4-client retention", ("retention_4",)),
    ("serve 16-client retention", ("retention_16",)),
)


def _lookup(record: dict, path: tuple[str, ...]) -> float:
    value: object = record
    for key in path:
        if not isinstance(value, dict) or key not in value:
            raise KeyError("/".join(path))
        value = value[key]
    return float(value)  # type: ignore[arg-type]


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    metrics: tuple[tuple[str, tuple[str, ...]], ...] = GATED_METRICS,
) -> list[str]:
    """Return one problem string per gated metric outside tolerance."""
    problems: list[str] = []
    for label, path in metrics:
        try:
            base = _lookup(baseline, path)
        except KeyError as exc:
            problems.append(f"{label}: baseline record is missing {exc}")
            continue
        try:
            new = _lookup(fresh, path)
        except KeyError as exc:
            problems.append(f"{label}: fresh record is missing {exc}")
            continue
        floor = base * (1.0 - tolerance)
        if new < floor:
            problems.append(
                f"{label}: {new:.2f}x regressed more than "
                f"{tolerance:.0%} below committed {base:.2f}x "
                f"(floor {floor:.2f}x)"
            )
        else:
            print(f"{label}: {new:.2f}x vs committed {base:.2f}x — ok")
    return problems


def check_panel(fresh: dict) -> list[str]:
    """Shape-check the fresh record's admission-throughput panel.

    Every load point must carry all three engines with positive
    decisions/sec and a reject ratio in [0, 1]; anything else means the
    benchmark emitted a malformed record and the gate must not pass it.
    """
    problems: list[str] = []
    panel = fresh.get("throughput_panel")
    if not isinstance(panel, dict):
        return ["throughput_panel: missing from fresh record"]
    for load in PANEL_LOADS:
        point = panel.get(load)
        if not isinstance(point, dict):
            problems.append(f"throughput_panel/{load}: missing load point")
            continue
        ratio = point.get("reject_ratio", -1.0)
        if not 0.0 <= float(ratio) <= 1.0:
            problems.append(
                f"throughput_panel/{load}: reject_ratio {ratio} out of [0, 1]"
            )
        engines = point.get("engines", {})
        for engine in PANEL_ENGINES:
            rate = engines.get(engine, {}).get("decisions_per_sec", 0.0)
            if not float(rate) > 0.0:
                problems.append(
                    f"throughput_panel/{load}/{engine}: "
                    f"non-positive decisions/sec ({rate})"
                )
    if not problems:
        print("admission-throughput panel: shape ok")
    return problems


def check_deep_queue(fresh: dict) -> list[str]:
    """Shape-check and gate the fresh record's deep-queue panel.

    Both optimized engines must report positive throughput for the
    checkpointed and the ablated replay, and the batch engine's
    ``checkpoint_speedup`` must clear :data:`CKPT_SPEEDUP_MIN` — the
    panel exists to prove prefix checkpoints pay off on a deep FIFO
    queue, so a record without it (or below the floor) fails.
    """
    section = fresh.get("deep_queue")
    if not isinstance(section, dict):
        return ["deep_queue: missing from fresh record"]
    problems: list[str] = []
    engines = section.get("engines", {})
    for engine in DEEP_QUEUE_ENGINES:
        cell = engines.get(engine)
        if not isinstance(cell, dict):
            problems.append(f"deep_queue/{engine}: missing engine cell")
            continue
        for field in ("decisions_per_sec", "decisions_per_sec_ablated"):
            rate = cell.get(field, 0.0)
            if not float(rate) > 0.0:
                problems.append(
                    f"deep_queue/{engine}/{field}: "
                    f"non-positive decisions/sec ({rate})"
                )
    try:
        speedup = float(engines["batch"]["checkpoint_speedup"])
    except (KeyError, TypeError, ValueError):
        return problems + ["deep_queue/batch: missing checkpoint_speedup"]
    if speedup < CKPT_SPEEDUP_MIN:
        problems.append(
            f"deep-queue checkpoint speedup (batch): {speedup:.2f}x below "
            f"the {CKPT_SPEEDUP_MIN} floor — prefix checkpoints must pay "
            "off on a deep FIFO queue"
        )
    elif not problems:
        fast = engines.get("fast", {}).get("checkpoint_speedup")
        note = f", fast {float(fast):.2f}x (ungated)" if fast else ""
        print(
            f"deep-queue checkpoint speedup: batch {speedup:.2f}x >= "
            f"{CKPT_SPEEDUP_MIN}{note} — ok"
        )
    return problems


def check_serve_batches(serve_fresh: dict) -> list[str]:
    """Shape-check the serve record's coalesced-dispatch evidence.

    Every client count must report at least one coalesced backend pass
    with a mean batch size >= 1 — a record without them means the server
    stopped coalescing (or stopped measuring it).
    """
    problems: list[str] = []
    results = serve_fresh.get("results")
    if not isinstance(results, dict) or not results:
        return ["serve results: missing from fresh record"]
    for clients, cell in sorted(results.items(), key=lambda kv: int(kv[0])):
        batches = cell.get("coalesced_batches", 0)
        mean = cell.get("mean_batch_size", 0.0)
        if not int(batches) > 0:
            problems.append(
                f"serve results/{clients}: no coalesced batches recorded"
            )
        elif not float(mean) >= 1.0:
            problems.append(
                f"serve results/{clients}: mean batch size {mean} < 1"
            )
    if not problems:
        print("serve coalesced-dispatch panel: shape ok")
    return problems


def check_tracing_overhead(fresh: dict) -> list[str]:
    """Gate the fresh record's instrumentation-disabled overhead.

    ``tracing_overhead.disabled_ratio`` must stay at or above
    :data:`TRACING_DISABLED_RATIO_MIN`; the tracer-on ratio is printed
    for context but not gated (tracing is opt-in and pays for itself in
    visibility).  A record without the section fails — the benchmark
    must measure the overhead, not silently skip it.
    """
    section = fresh.get("tracing_overhead")
    if not isinstance(section, dict):
        return ["tracing_overhead: missing from fresh record"]
    try:
        disabled = float(section["disabled_ratio"])
    except (KeyError, TypeError, ValueError):
        return ["tracing_overhead: missing/invalid disabled_ratio"]
    if disabled < TRACING_DISABLED_RATIO_MIN:
        return [
            f"tracing overhead (disabled): ratio {disabled:.3f} below the "
            f"{TRACING_DISABLED_RATIO_MIN} floor — an attached registry "
            "must be near-free"
        ]
    tracing = section.get("tracing_ratio")
    note = f", tracer-on {float(tracing):.3f} (ungated)" if tracing else ""
    print(
        f"tracing overhead: disabled ratio {disabled:.3f} >= "
        f"{TRACING_DISABLED_RATIO_MIN}{note} — ok"
    )
    return []


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, compare records, print verdicts, return exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_core.json",
        help="committed perf record (default: BENCH_core.json)",
    )
    parser.add_argument(
        "--fresh",
        required=True,
        help="freshly generated perf record to check",
    )
    parser.add_argument(
        "--serve-baseline",
        default=None,
        help="committed BENCH_serve.json (gates the serve retention "
        "ratios; requires --serve-fresh)",
    )
    parser.add_argument(
        "--serve-fresh",
        default=None,
        help="freshly generated BENCH_serve.json to check",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the committed value "
        "(default 0.30 = 30%%, sized for shared-runner noise)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print(f"tolerance must be in [0, 1), got {args.tolerance}")
        return 1
    if (args.serve_baseline is None) != (args.serve_fresh is None):
        print("--serve-baseline and --serve-fresh must be given together")
        return 1

    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    problems = compare(baseline, fresh, args.tolerance)
    problems += check_panel(fresh)
    problems += check_deep_queue(fresh)
    problems += check_tracing_overhead(fresh)
    if args.serve_baseline is not None:
        serve_baseline = json.loads(
            Path(args.serve_baseline).read_text(encoding="utf-8")
        )
        serve_fresh = json.loads(
            Path(args.serve_fresh).read_text(encoding="utf-8")
        )
        problems += compare(
            serve_baseline, serve_fresh, args.tolerance, SERVE_METRICS
        )
        problems += check_serve_batches(serve_fresh)
    for problem in problems:
        print(problem)
    if problems:
        print(
            f"\n{len(problems)} perf regression(s); if intentional, commit "
            "the refreshed BENCH record(s) or label the PR skip-perf-gate "
            "(docs/performance.md)",
            file=sys.stderr,
        )
        return 1
    print("perf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
