#!/usr/bin/env python3
"""Regenerate every figure panel and write the EXPERIMENTS.md data dump.

Headline figures (3, 4, 5) run at near-paper scale; the appendix figures
(6-16) run at a reduced but still statistically meaningful scale.  The
output is a markdown fragment consumed by EXPERIMENTS.md.

Usage::

    python scripts/run_experiments.py [output.md]
"""

from __future__ import annotations

import sys
import time

from repro.experiments.figures import FIGURES
from repro.experiments.report import render_panel
from repro.experiments.sweep import run_panel
from repro.experiments.sec52 import default_grid, render_win_stats, run_win_stats

HEADLINE = ["fig3a", "fig3b", "fig4a", "fig4b", "fig4c", "fig4d", "fig5a", "fig5b"]
HEADLINE_SCALE = dict(total_time=2_000_000.0, replications=5)
HEADLINE_LOADS = tuple(round(0.1 * k, 1) for k in range(1, 11))

APPENDIX_SCALE = dict(total_time=1_000_000.0, replications=3)
APPENDIX_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "experiments_results.md"
    chunks: list[str] = []
    t0 = time.time()

    for panel_id in FIGURES:
        headline = panel_id in HEADLINE
        scale = HEADLINE_SCALE if headline else APPENDIX_SCALE
        loads = HEADLINE_LOADS if headline else APPENDIX_LOADS
        t1 = time.time()
        result = run_panel(FIGURES[panel_id], loads=loads, seed=2007, **scale)
        txt = render_panel(result)
        chunks.append(f"### {panel_id}\n\n```text\n{txt}\n```\n")
        print(
            f"[{time.time() - t0:7.1f}s] {panel_id} done "
            f"({time.time() - t1:.1f}s)",
            flush=True,
        )

    stats = run_win_stats(
        default_grid(
            loads=(0.2, 0.4, 0.6, 0.8, 1.0),
            dc_ratios=(2.0, 3.0, 10.0, 20.0),
            cps_values=(100.0, 1000.0),
        ),
        policy="EDF",
        replications=3,
        total_time=1_000_000.0,
    )
    chunks.append(
        "### sec5.2 aggregate\n\n```text\n"
        + render_win_stats(stats, policy="EDF")
        + "\n```\n"
    )
    print(f"[{time.time() - t0:7.1f}s] sec5.2 done", flush=True)

    with open(out_path, "w") as fh:
        fh.write(
            "# Regenerated series for every figure panel\n\n"
            "Headline figures: horizon 2,000,000 time units x 5 replications;\n"
            "appendix figures: 1,000,000 x 3 (paper: 10,000,000 x 10).\n\n"
        )
        fh.write("\n".join(chunks))
    print(f"wrote {out_path} after {time.time() - t0:.1f}s", flush=True)


if __name__ == "__main__":
    main()
