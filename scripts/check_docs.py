#!/usr/bin/env python3
"""Documentation gate: intra-repo links + fleet/learn docstring coverage.

Two checks, both dependency-free so they run anywhere the package does:

1. **Links** — every relative (intra-repo) Markdown link target in
   ``README.md`` and ``docs/*.md`` must exist on disk.  External links
   (``http(s)://``, ``mailto:``) and pure in-page anchors are skipped;
   an anchor on a file link only requires the file.
2. **Docstrings** — every public symbol of the gated packages
   (``repro.fleet``, ``repro.learn`` and ``repro.serve``: every
   module, every name in
   each module's ``__all__``, and the public methods/properties of
   public classes) must carry a docstring.

Exit code 0 = clean; 1 = problems (each printed on its own line).

Usage::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) — images too.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Link schemes that are not files in this repo.
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_files() -> list[Path]:
    """README.md plus every Markdown file under docs/."""
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links() -> list[str]:
    """Return one problem string per broken intra-repo link."""
    problems: list[str] = []
    for md in iter_markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO)
                problems.append(f"{rel}: broken link -> {target}")
    return problems


def _public_members(obj: object, qualname: str) -> list[tuple[str, object]]:
    """(qualname, member) pairs for an object's public attributes."""
    members = []
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            members.append((f"{qualname}.{name}", member))
        elif inspect.isfunction(member):
            members.append((f"{qualname}.{name}", member))
    return members


#: Packages whose public symbols must all be documented.
GATED_PACKAGES = (
    "repro.faults",
    "repro.fleet",
    "repro.learn",
    "repro.obs",
    "repro.serve",
)

#: Individual modules gated the same way (hot-path code whose contracts —
#: bit-identical semantics, memo validity — live in the docstrings).
GATED_MODULES = ("repro.core.fastpath",)


def check_package_docstrings() -> list[str]:
    """Return one problem string per missing gated docstring."""
    import importlib
    import pkgutil

    problems: list[str] = []
    todo: list[tuple[str, object]] = []
    for pkg_name in GATED_PACKAGES:
        package = importlib.import_module(pkg_name)
        todo.append((pkg_name, package))
        for info in pkgutil.iter_modules(package.__path__):
            name = f"{pkg_name}.{info.name}"
            todo.append((name, importlib.import_module(name)))
    for mod_name in GATED_MODULES:
        todo.append((mod_name, importlib.import_module(mod_name)))

    for mod_name, module in todo:
        if not inspect.getdoc(module):
            problems.append(f"{mod_name}: missing module docstring")
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            qualname = f"{mod_name}.{symbol}"
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    problems.append(f"{qualname}: missing docstring")
                if inspect.isclass(obj):
                    for member_name, member in _public_members(obj, qualname):
                        doc = (
                            member.fget.__doc__
                            if isinstance(member, property) and member.fget
                            else getattr(member, "__doc__", None)
                        )
                        if not doc:
                            problems.append(
                                f"{member_name}: missing docstring"
                            )
    return problems


def main() -> int:
    """Run both checks; print problems; return the exit code."""
    problems = check_links() + check_package_docstrings()
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    md_count = len(iter_markdown_files())
    gated = " and ".join(GATED_PACKAGES + GATED_MODULES)
    print(f"docs OK: links resolve across {md_count} Markdown files; "
          f"all public {gated} symbols are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
