"""Reduce one simulation run to scalar metrics.

The paper's sole reported metric is the **Task Reject Ratio** ("the ratio
of the number of task rejections to the number of task arrivals").  The
collector also derives the quantities the paper *argues* with but does not
plot, so the examples and ablations can show them:

* node utilization (busy time / capacity),
* allocated-but-idle time — the Inserted Idle Times inside allocations,
* completion slack (estimate − actual; Theorem 4 says ≥ 0),
* deadline misses among accepted tasks (must be zero outside the
  shared-link ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.task import TaskOutcome
from repro.obs.metrics import merge_snapshots
from repro.sim.cluster_sim import SimulationOutput

__all__ = [
    "MetricsSummary",
    "metric_names",
    "summarize",
    "summarize_pooled",
    "validate_metric",
]


@dataclass(frozen=True, slots=True)
class MetricsSummary:
    """Scalar metrics of one run.

    ``learning_regret`` is the cumulative empirical pseudo-regret of a
    learning (bandit) routing policy — how much reward it left on the
    table versus its best arm in hindsight.  It stays ``0.0`` for every
    non-learning run, so static and adaptive results share one schema.

    ``displaced`` / ``readmitted`` / ``fault_missed`` are the fault-
    injection counters: running tasks torn down by an outage, how many of
    those (plus requeued waiting tasks) passed re-admission, and how many
    could not be re-fit before their original deadline.  All three stay
    ``0`` for fault-free runs, so faulted and clean results share one
    schema too.

    ``obs`` is the run's full deterministic metrics snapshot from
    :mod:`repro.obs` (pooled runs merge member snapshots).  It is a
    structured side-channel, not a scalar metric: :func:`metric_names`
    and :meth:`as_dict` exclude it so CSV/JSON row exports keep their
    flat schema, and it is excluded from equality — the optimized
    engines register engine-labeled diagnostics the reference engine
    does not, so two bit-identical *runs* on different engines still
    carry different snapshots (compare ``obs`` directly where snapshot
    equality is the claim, as the determinism suite does).
    """

    algorithm: str
    arrivals: int
    accepted: int
    rejected: int
    reject_ratio: float
    executed: int
    deadline_misses: int
    utilization: float
    allocated_fraction: float
    iit_inside_allocations: float
    mean_nodes_per_task: float
    mean_slack: float
    max_slack: float
    mean_waiting_queue_replans: float
    learning_regret: float = 0.0
    displaced: int = 0
    readmitted: int = 0
    fault_missed: int = 0
    obs: dict | None = field(default=None, compare=False)

    @property
    def accept_ratio(self) -> float:
        """1 − reject ratio."""
        return 1.0 - self.reject_ratio

    def as_dict(self) -> dict[str, float | int | str]:
        """All scalar metrics (fields plus derived ratios) as a flat dict.

        The structured ``obs`` snapshot is excluded — this dict is a CSV
        / JSON *row*, and rows stay flat scalars.
        """
        out: dict[str, float | int | str] = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "obs"
        }
        out["accept_ratio"] = self.accept_ratio
        return out


def metric_names() -> tuple[str, ...]:
    """Names of all numeric metrics an aggregation may target."""
    return tuple(
        f.name for f in fields(MetricsSummary) if f.name not in ("algorithm", "obs")
    ) + ("accept_ratio",)


def validate_metric(metric: str) -> str:
    """Return ``metric`` if it names a numeric metric, else raise.

    Raises
    ------
    InvalidParameterError
        With the full list of valid names — callers validate up front so a
        typo fails before any simulation time is spent.
    """
    valid = metric_names()
    if metric not in valid:
        raise InvalidParameterError(
            f"unknown metric {metric!r}; valid metrics: {', '.join(valid)}"
        )
    return metric


def summarize_pooled(
    outputs: "Sequence[SimulationOutput]",
    *,
    algorithm: str | None = None,
) -> MetricsSummary:
    """Pool several runs into one system-level summary (fleet aggregation).

    Counters (arrivals, accepted, rejected, executed, deadline misses,
    replans) add up; ratios are recomputed over the pooled totals, so
    ``reject_ratio`` is total rejections over total arrivals and
    ``utilization`` weights each member by its actual node-time capacity
    (``nodes × horizon``).  Task-level means (nodes per task, slack) pool
    the underlying per-task samples, not the per-member means.
    """
    if not outputs:
        raise InvalidParameterError("summarize_pooled needs at least one output")
    names = sorted({o.algorithm for o in outputs})
    if algorithm is None:
        algorithm = names[0] if len(names) == 1 else "+".join(names)

    capacity = sum(o.node_busy_time.size * o.horizon for o in outputs)
    records = [r for o in outputs for r in o.records.values()]

    slacks = [r.completion_slack for r in records if r.completion_slack is not None]
    slack_arr = np.asarray(slacks, dtype=np.float64)
    n_nodes = [
        r.n_nodes
        for r in records
        if r.outcome is TaskOutcome.ACCEPTED and r.n_nodes is not None
    ]
    misses = sum(1 for r in records if r.deadline_met is False)

    arrivals = sum(o.stats.arrivals for o in outputs)
    rejected = sum(o.stats.rejected for o in outputs)
    busy = float(sum(o.node_busy_time.sum() for o in outputs))
    allocated = float(sum(o.node_allocated_time.sum() for o in outputs))
    admission_tests = sum(o.stats.admission_tests for o in outputs)
    replanned = sum(o.stats.replanned_tasks for o in outputs)
    snapshots = [o.obs_snapshot for o in outputs if o.obs_snapshot is not None]

    return MetricsSummary(
        algorithm=algorithm,
        arrivals=arrivals,
        accepted=sum(o.stats.accepted for o in outputs),
        rejected=rejected,
        reject_ratio=rejected / arrivals if arrivals else 0.0,
        executed=sum(o.executed_tasks for o in outputs),
        deadline_misses=misses,
        utilization=busy / capacity if capacity > 0 else 0.0,
        allocated_fraction=allocated / capacity if capacity > 0 else 0.0,
        iit_inside_allocations=max(allocated - busy, 0.0),
        mean_nodes_per_task=float(np.mean(n_nodes)) if n_nodes else 0.0,
        mean_slack=float(slack_arr.mean()) if slack_arr.size else 0.0,
        max_slack=float(slack_arr.max()) if slack_arr.size else 0.0,
        mean_waiting_queue_replans=(
            replanned / admission_tests if admission_tests else 0.0
        ),
        displaced=sum(o.stats.displaced for o in outputs),
        readmitted=sum(o.stats.readmitted for o in outputs),
        fault_missed=sum(o.stats.fault_missed for o in outputs),
        obs=merge_snapshots(snapshots) if snapshots else None,
    )


def summarize(output: SimulationOutput) -> MetricsSummary:
    """Compute the run summary from raw simulation output.

    The single-run summary is exactly the pooled summary of one output
    (``SchedulerStats.reject_ratio`` is defined as rejections over
    arrivals, matching the pooled recomputation bit for bit).
    """
    return summarize_pooled((output,), algorithm=output.algorithm)
