"""Metrics and replication statistics.

``collector`` reduces one simulation run to a :class:`MetricsSummary`
(Task Reject Ratio front and centre); ``stats`` aggregates replications
into means with 95% confidence intervals (Figure 3b).
"""

from repro.metrics.collector import (
    MetricsSummary,
    metric_names,
    summarize,
    summarize_pooled,
    validate_metric,
)
from repro.metrics.stats import ConfidenceInterval, PointEstimate, mean_ci

__all__ = [
    "ConfidenceInterval",
    "MetricsSummary",
    "PointEstimate",
    "mean_ci",
    "metric_names",
    "summarize",
    "summarize_pooled",
    "validate_metric",
]
