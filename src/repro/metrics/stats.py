"""Replication statistics: means and Student-t confidence intervals.

Every point in the paper's figures "corresponds to the average performance
of ten simulations" and Figure 3b adds 95% confidence intervals; this
module provides exactly that aggregation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.core.errors import InvalidParameterError

__all__ = ["ConfidenceInterval", "PointEstimate", "mean_ci"]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± half_width``."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f}"


@dataclass(frozen=True, slots=True)
class PointEstimate:
    """One figure point: an aggregated metric over replications."""

    x: float  # the swept parameter value (SystemLoad in all figures)
    ci: ConfidenceInterval
    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Replication mean."""
        return self.ci.mean


def mean_ci(
    values: Sequence[float] | np.ndarray,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Mean with a Student-t confidence interval.

    With one sample the half-width is 0 (degenerate but convenient for
    smoke-scale runs); with zero samples an error is raised.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise InvalidParameterError("values must be a non-empty 1-D sequence")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(f"confidence must be in (0,1), got {confidence}")
    n = int(arr.size)
    mean = float(arr.mean())
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, confidence=confidence, n=n)
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    t_crit = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(
        mean=mean, half_width=t_crit * sem, confidence=confidence, n=n
    )
