"""Cross-cutting observability: tracing, metrics, and profiling hooks.

:mod:`repro.obs` is the instrumentation layer threaded through every
other layer of the stack — the admission engines (:mod:`repro.core`),
the event kernel and cluster driver (:mod:`repro.sim`), fleet routing and
bandits (:mod:`repro.fleet`, :mod:`repro.learn`), fault injection
(:mod:`repro.faults`) and the live service (:mod:`repro.serve`).  Three
pillars:

* :mod:`repro.obs.trace` — nestable spans/events with JSONL and Chrome
  trace-event (Perfetto) export;
* :mod:`repro.obs.metrics` — a deterministic registry of counters,
  gauges and fixed-bucket histograms, snapshot-able onto
  :class:`~repro.metrics.collector.MetricsSummary`, the serve wire
  protocol and a Prometheus endpoint;
* :mod:`repro.obs.profile` — opt-in ``perf_counter`` phase timers on the
  hot admission kernels plus the capture-and-replay harness behind
  ``repro profile``.

The package-wide **determinism contract**: an instrumented run is
bit-identical to an uninstrumented run.  Observability *reads* the
simulation and never perturbs it — no RNG draws, no event-kernel
entries, and wall clocks only in fields flagged as wall time (excluded
from every surface that is compared bit-for-bit).  See
``docs/observability.md`` for the span taxonomy and metrics catalog.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import Span, Tracer, TrackView, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "TrackView",
    "merge_snapshots",
    "read_jsonl",
    "render_prometheus",
]


class Observability:
    """One run's instrumentation bundle: a registry plus optional tracer.

    Every simulation owns one (drivers build a default, registry-only
    bundle when none is passed, so the counter surface is always
    present).  Tracing is opt-in: pass ``trace=True`` — or an explicit
    :class:`~repro.obs.trace.Tracer` — to collect spans; ``timing=True``
    additionally stamps wall-clock durations into ``wall_us`` fields.
    """

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        *,
        trace: bool = False,
        timing: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: "Tracer | TrackView | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None and trace:
            tracer = Tracer(timing=timing)
        self.tracer = tracer

    def member(self, index: int) -> "Observability":
        """A fleet member's bundle: fresh registry, shared tracer track.

        The member gets its *own* registry (so its counters stay
        bit-identical to a standalone run of the same cluster) and a
        per-track view of the shared fleet tracer (so the whole fleet
        lands in one trace file, one lane per member).
        """
        view: Tracer | TrackView | None = self.tracer
        if isinstance(view, Tracer):
            view = view.track(index)
        return Observability(registry=MetricsRegistry(), tracer=view)
