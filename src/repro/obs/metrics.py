"""Deterministic metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per simulation (cluster or fleet) absorbs the
counters that used to live as ad-hoc integer attributes
(``SchedulerStats`` fields, ``FleetOutput.probe_cache_hits``, …) and adds
the derived surfaces the rest of the stack reads: a typed snapshot dict
riding :class:`~repro.metrics.collector.MetricsSummary` and the serve wire
protocol, and a Prometheus text rendering behind
``repro serve --metrics-port``.

Determinism contract
--------------------
Every instrument that observes *simulation* state (task counts, cache
hits, queue depths) is driven only by simulated quantities, so two runs of
the same scenario produce byte-identical :meth:`MetricsRegistry.snapshot`
dicts — serially, across process pools, and across thread pools (the test
suite asserts it).  Wall-clock instruments (admission latency, replay
latency) are *flagged* with ``wall=True`` at registration and excluded
from the default snapshot, so nondeterministic timings can never leak
into a surface that is compared bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
]

#: Default histogram buckets for queue-depth style instruments.
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Default histogram buckets for wall-clock latencies, in seconds.
LATENCY_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0,
)


def _full_name(name: str, labels: Mapping[str, str] | None) -> str:
    """The registry key: ``name`` plus sorted ``{k="v",…}`` labels."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count.

    ``wall=True`` marks the instrument as wall-clock-derived; such
    instruments are excluded from the deterministic snapshot (see the
    module docstring).
    """

    __slots__ = ("name", "base", "help", "wall", "value")

    #: Snapshot/type tag ("counter").
    kind = "counter"

    def __init__(
        self, name: str, base: str, help: str = "", *, wall: bool = False
    ) -> None:
        self.name = name
        self.base = base
        self.help = help
        self.wall = wall
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def as_value(self) -> dict[str, Any]:
        """Snapshot payload: ``{"type": "counter", "value": n}``."""
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, clock, arm estimate)."""

    __slots__ = ("name", "base", "help", "wall", "value")

    #: Snapshot/type tag ("gauge").
    kind = "gauge"

    def __init__(
        self, name: str, base: str, help: str = "", *, wall: bool = False
    ) -> None:
        self.name = name
        self.base = base
        self.help = help
        self.wall = wall
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def as_value(self) -> dict[str, Any]:
        """Snapshot payload: ``{"type": "gauge", "value": v}``."""
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram (upper bounds given at registration).

    ``counts`` has ``len(bounds) + 1`` cells — the last is the overflow
    (``+Inf``) bucket.  Buckets are fixed so that two runs observing the
    same value stream produce identical snapshots regardless of order of
    magnitude or platform.
    """

    __slots__ = ("name", "base", "help", "wall", "bounds", "counts", "sum", "count")

    #: Snapshot/type tag ("histogram").
    kind = "histogram"

    def __init__(
        self,
        name: str,
        base: str,
        bounds: tuple[float, ...],
        help: str = "",
        *,
        wall: bool = False,
    ) -> None:
        self.name = name
        self.base = base
        self.help = help
        self.wall = wall
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= bound`` selects the bucket)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def as_value(self) -> dict[str, Any]:
        """Snapshot payload with bounds, per-bucket counts, sum and count."""
        return {
            "type": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create instrument registry with a deterministic snapshot.

    Instruments are keyed on ``name`` plus sorted labels; registering the
    same key twice returns the existing instrument (so call sites never
    need to coordinate).  Registering an existing key as a *different*
    instrument kind raises.
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, full: str, kind: type) -> Any:
        existing = self._instruments.get(full)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"instrument {full!r} already registered as "
                    f"{existing.kind}, requested {kind.kind}"  # type: ignore[attr-defined]
                )
            return existing
        return None

    def counter(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        wall: bool = False,
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        full = _full_name(name, labels)
        inst = self._get(full, Counter)
        if inst is None:
            inst = Counter(full, name, help, wall=wall)
            self._instruments[full] = inst
        return inst

    def gauge(
        self,
        name: str,
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        wall: bool = False,
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        full = _full_name(name, labels)
        inst = self._get(full, Gauge)
        if inst is None:
            inst = Gauge(full, name, help, wall=wall)
            self._instruments[full] = inst
        return inst

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...],
        help: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        wall: bool = False,
    ) -> Histogram:
        """Get or create a :class:`Histogram` with fixed ``bounds``."""
        full = _full_name(name, labels)
        inst = self._get(full, Histogram)
        if inst is None:
            inst = Histogram(full, name, bounds, help, wall=wall)
            self._instruments[full] = inst
        return inst

    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        """All registered instruments, sorted by full name."""
        for full in sorted(self._instruments):
            yield self._instruments[full]

    def snapshot(self, *, include_wall: bool = False) -> dict[str, Any]:
        """Typed, name-sorted dict of every instrument's current value.

        Wall-clock instruments are excluded unless ``include_wall`` —
        the default snapshot is the one compared bit-for-bit across
        serial/process/thread execution and traced/untraced runs.
        """
        return {
            inst.name: inst.as_value()
            for inst in self.instruments()
            if include_wall or not inst.wall
        }

    def render_prometheus(self, *, include_wall: bool = True) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        return render_prometheus(self.snapshot(include_wall=include_wall))


def _prom_parts(full: str) -> tuple[str, str]:
    """Split a full instrument name into ``(base, "{labels}" or "")``."""
    if full.endswith("}") and "{" in full:
        base, _, rest = full.partition("{")
        return base, "{" + rest
    return full, ""


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Histograms expand into cumulative ``_bucket{le=…}`` series plus
    ``_sum`` / ``_count``, per the exposition format.  ``# TYPE`` headers
    are emitted once per base metric name.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for full in sorted(snapshot):
        value = snapshot[full]
        base, labels = _prom_parts(full)
        if base not in typed:
            lines.append(f"# TYPE {base} {value['type']}")
            typed.add(base)
        if value["type"] == "histogram":
            inner = labels[1:-1] if labels else ""
            sep = "," if inner else ""
            cum = 0
            for bound, count in zip(value["bounds"], value["counts"]):
                cum += count
                lines.append(
                    f'{base}_bucket{{{inner}{sep}le="{bound:g}"}} {cum}'
                )
            cum += value["counts"][-1]
            lines.append(f'{base}_bucket{{{inner}{sep}le="+Inf"}} {cum}')
            lines.append(f"{base}_sum{labels} {value['sum']:g}")
            lines.append(f"{base}_count{labels} {value['count']}")
        else:
            lines.append(f"{full} {value['value']:g}")
    return "\n".join(lines) + "\n"


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge snapshot dicts: counters/gauges sum, histograms add cellwise.

    Used to pool per-member cluster registries into one fleet-level
    surface (the ``metrics`` wire op and the pooled
    :class:`~repro.metrics.collector.MetricsSummary` ride this).  Raises
    on kind or bucket-bound mismatches — merging is only defined across
    registries built by the same instrumentation.
    """
    merged: dict[str, Any] = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = {
                    k: (list(v) if isinstance(v, list) else v)
                    for k, v in value.items()
                }
                continue
            acc = merged[name]
            if acc["type"] != value["type"]:
                raise ValueError(f"cannot merge {name!r}: kind mismatch")
            if value["type"] == "histogram":
                if acc["bounds"] != list(value["bounds"]):
                    raise ValueError(f"cannot merge {name!r}: bucket mismatch")
                acc["counts"] = [
                    a + b for a, b in zip(acc["counts"], value["counts"])
                ]
                acc["sum"] += value["sum"]
                acc["count"] += value["count"]
            else:
                acc["value"] += value["value"]
    return {name: merged[name] for name in sorted(merged)}
