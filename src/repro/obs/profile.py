"""Hot-path profiling: capture-and-replay plus per-phase kernel timers.

Full-simulation wall clock mixes the admission engine with event-loop
overhead that is identical for every engine, which dilutes any measured
ratio.  The honest engine measurement — grown for the benchmarks and now
shared with the ``repro profile`` CLI — is *capture and replay*: record
the real ``try_admit``/probe call stream produced by a reference-engine
simulation (task, frozen waiting queue, a copy of the committed
reservation state, now), then replay that exact stream through each
engine with fresh test instances and time only the engine.  Replays
double as an identity check: every engine must return the same decision
stream bit for bit.

Per-phase timers ride the engines themselves: the fast/batch kernels
expose an opt-in ``profile`` attribute (``None`` by default — the hot
path pays a single ``is not None`` test per walk).  When a
:class:`PhaseProfile` is attached, ``time.perf_counter`` spans accumulate
into named phases (queue ordering, memoized-prefix bookkeeping, placement
kernel evaluation), and :func:`profile_admission` prints the breakdown
the ``repro profile`` subcommand reports.  Profiling is wall-clock only:
it never touches simulated state, so decisions stay bit-identical with
the profiler attached (asserted by the replay identity check).
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.algorithms import make_algorithm
from repro.core.fastpath import make_admission_test

__all__ = [
    "AdmissionTap",
    "PhaseProfile",
    "build_tests",
    "capture_calls",
    "capture_cluster_calls",
    "capture_fleet_calls",
    "profile_admission",
    "replay_calls",
]


class PhaseProfile:
    """Accumulated wall time per named kernel phase.

    Engines call :meth:`add` around their phases; ``seconds`` maps phase
    name to accumulated ``perf_counter`` time and ``counts`` to the
    number of spans.  Attach one instance to several tests (fleet
    members) to pool their phases.
    """

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` (and ``count`` spans) into ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + count

    def as_rows(self) -> list[dict[str, Any]]:
        """Per-phase rows sorted by descending time (JSON-friendly)."""
        return [
            {
                "phase": phase,
                "seconds": self.seconds[phase],
                "calls": self.counts[phase],
            }
            for phase in sorted(
                self.seconds, key=lambda p: self.seconds[p], reverse=True
            )
        ]


class AdmissionTap:
    """Wraps a schedulability test, recording every call it serves."""

    def __init__(self, inner, calls, member=0, flag=None):
        self.inner = inner
        self.calls = calls
        self.member = member
        self.flag = flag or {"probing": False}

    def try_admit(self, new_task, waiting, reservations, now):
        """Record the call, then forward it to the wrapped test."""
        self.calls.append(
            (
                self.flag["probing"],
                self.member,
                new_task,
                tuple(waiting),
                reservations.copy(),
                now,
            )
        )
        return self.inner.try_admit(new_task, waiting, reservations, now)

    def probe_completion(self, new_task, waiting, reservations, now):
        """Record a probe-phase call (the fleet's member-kernel surface).

        The fleet probe closure feature-detects this method; the
        reference engine underneath only has ``try_admit``.
        """
        self.calls.append(
            (True, self.member, new_task, tuple(waiting), reservations.copy(), now)
        )
        decision = self.inner.try_admit(new_task, waiting, reservations, now)
        if decision.accepted:
            return decision.plans[new_task.task_id].est_completion
        return None


def capture_cluster_calls(scenario, algorithm: str):
    """Run one reference simulation, recording the admission call stream.

    Returns ``(calls, output)`` — the output carries the stats (reject
    ratio, arrival count) for throughput reporting.
    """
    from repro.sim.cluster_sim import ClusterSimulation

    tasks = scenario.generate_tasks()
    instance = make_algorithm(algorithm, rng=scenario.algorithm_rng())
    sim = ClusterSimulation(
        scenario.cluster,
        instance,
        tasks,
        horizon=scenario.total_time,
        validate=False,
        admission_engine="reference",
    )
    calls: list = []
    sim.scheduler.test = AdmissionTap(sim.scheduler.test, calls)
    output = sim.run()
    return calls, output


def capture_fleet_calls(scenario, algorithm: str):
    """Fleet variant: taps every member test and tags probe-phase calls.

    Probes are distinguished by wrapping ``policy.route`` so the member
    kernel (``probe_completion``) is exercised on replay exactly where
    the live fleet uses it.  Returns ``(calls, fleet_output)``.
    """
    from repro.fleet.sim import FleetSimulation

    sim = FleetSimulation(
        scenario, algorithm, admission_engine="reference", validate=False
    )
    calls: list = []
    flag = {"probing": False}
    for i, member in enumerate(sim.sims):
        member.scheduler.test = AdmissionTap(
            member.scheduler.test, calls, member=i, flag=flag
        )
    route = sim.policy.route

    def tagged_route(task, views):
        flag["probing"] = True
        try:
            return route(task, views)
        finally:
            flag["probing"] = False

    sim.policy.route = tagged_route
    result = sim.run()
    return calls, result


def capture_calls(scenario, algorithm: str, *, fleet: bool):
    """Dispatch to the cluster or fleet capture; same ``(calls, output)``."""
    if fleet:
        return capture_fleet_calls(scenario, algorithm)
    return capture_cluster_calls(scenario, algorithm)


def build_tests(
    scenario,
    algorithm: str,
    engine: str,
    fleet: bool,
    *,
    obs=None,
    checkpoint: bool = True,
):
    """Fresh engine instances for a replay (one per fleet member).

    ``checkpoint=False`` builds the optimized engines with the
    prefix-checkpoint store disabled — the ablation axis of the
    deep-queue benchmark panel (decisions are identical either way).
    """
    if not fleet:
        instance = make_algorithm(algorithm, rng=scenario.algorithm_rng())
        return [
            make_admission_test(
                instance.policy,
                instance.partitioner,
                scenario.cluster,
                engine=engine,
                obs=obs,
                checkpoint=checkpoint,
            )
        ]
    tests = []
    for i in range(scenario.n_clusters):
        member = scenario.member_scenario(i)
        instance = make_algorithm(algorithm, rng=member.algorithm_rng())
        tests.append(
            make_admission_test(
                instance.policy,
                instance.partitioner,
                member.cluster,
                engine=engine,
                obs=obs,
                checkpoint=checkpoint,
            )
        )
    return tests


def replay_calls(
    scenario,
    algorithm: str,
    engine: str,
    calls,
    *,
    reps=2,
    fleet=False,
    obs=None,
    checkpoint=True,
):
    """Replay a captured call stream through ``engine``; best-of-``reps``.

    Probe-tagged calls go through ``probe_completion`` when the engine
    offers it (the batch member kernel), mirroring the live fleet's
    feature detection.  Returns ``(best_seconds, outcomes)`` where each
    outcome is the accepted task's est_completion or ``None`` — the
    engine-portable projection of the decision, asserted identical
    across reps (and, by callers, across engines).  ``obs`` builds the
    tests instrumented, which is how the tracing-overhead benchmark
    measures the cost of an attached registry or tracer.
    """
    best = float("inf")
    outcomes = None
    for _ in range(reps):
        tests = build_tests(
            scenario, algorithm, engine, fleet, obs=obs, checkpoint=checkpoint
        )
        probes = [getattr(t, "probe_completion", None) for t in tests]
        start = time.perf_counter()
        got = []
        for is_probe, member, task, waiting, reservations, now in calls:
            probe = probes[member]
            if is_probe and probe is not None:
                got.append(probe(task, waiting, reservations, now))
            else:
                decision = tests[member].try_admit(task, waiting, reservations, now)
                got.append(
                    decision.plans[task.task_id].est_completion
                    if decision.accepted
                    else None
                )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if outcomes is None:
            outcomes = got
        else:
            assert got == outcomes, f"{engine}: replay is not deterministic"
    return best, outcomes


def profile_admission(
    scenario,
    algorithm: str,
    *,
    engines: tuple[str, ...] = ("fast", "batch"),
    reps: int = 2,
    fleet: bool = False,
    checkpoint: bool = True,
) -> dict[str, Any]:
    """Capture one call stream and profile each engine's replay of it.

    Per engine: an *untimed-hooks* replay measures honest decisions/sec
    (best of ``reps``), then one extra replay with a
    :class:`PhaseProfile` attached breaks the time into kernel phases
    (including ``prefix_restore``, the checkpoint replay cost).
    Engines without phase hooks (``reference``) report timing only.
    All engines' outcome streams are asserted identical.
    ``checkpoint=False`` profiles the optimized engines with the
    prefix-checkpoint store ablated.
    """
    calls, _output = capture_calls(scenario, algorithm, fleet=fleet)
    report: dict[str, Any] = {
        "algorithm": algorithm,
        "fleet": fleet,
        "calls": len(calls),
        "checkpoint": checkpoint,
        "engines": {},
    }
    reference_outcomes = None
    for engine in engines:
        seconds, outcomes = replay_calls(
            scenario,
            algorithm,
            engine,
            calls,
            reps=reps,
            fleet=fleet,
            checkpoint=checkpoint,
        )
        if reference_outcomes is None:
            reference_outcomes = outcomes
        else:
            assert outcomes == reference_outcomes, (
                f"{engine}: decision stream diverged from {engines[0]}"
            )
        profile = PhaseProfile()
        tests = build_tests(
            scenario, algorithm, engine, fleet, checkpoint=checkpoint
        )
        hooked = False
        for test in tests:
            if hasattr(test, "profile"):
                test.profile = profile
                hooked = True
        if hooked:
            probes = [getattr(t, "probe_completion", None) for t in tests]
            for is_probe, member, task, waiting, reservations, now in calls:
                probe = probes[member]
                if is_probe and probe is not None:
                    probe(task, waiting, reservations, now)
                else:
                    tests[member].try_admit(task, waiting, reservations, now)
        report["engines"][engine] = {
            "seconds": seconds,
            "decisions_per_sec": len(calls) / seconds if seconds > 0 else 0.0,
            "phases": profile.as_rows() if hooked else [],
        }
    return report
