"""Lightweight span/event tracing with JSONL and Chrome trace export.

A :class:`Tracer` records *simulation-time* spans and instant events from
every layer (admission test phases, event-kernel dispatch, fleet probe
fan-out, bandit decisions, fault windows, serve request lifecycle).  The
hard rule, shared with the rest of :mod:`repro.obs`: **tracing reads the
simulation, it never perturbs it** — no RNG draws, no event-kernel
entries, and wall clocks (``time.perf_counter``) only when ``timing=True``
and only into the dedicated ``wall_us`` field.  A traced run is
bit-identical to an untraced run; the property suite asserts it across
engines, algorithms, faults and fleet routing.

Records
-------
Each record is a plain dict: ``name``, ``cat`` (category), ``ph`` (``"X"``
for spans, ``"i"`` for instant events), ``ts`` (simulation time), ``dur``
(simulation-time duration, usually 0 — sim time does not advance inside a
handler), ``depth`` (nesting level at emission), ``track`` (0 for a single
cluster; the member index in a fleet), and optional ``args`` /
``wall_us``.  Records append in *begin* order, so ``ts`` is monotone
non-decreasing within each track.

Export
------
:meth:`Tracer.write_jsonl` emits one JSON object per line (the format
``repro run-scenario --trace out.jsonl`` writes and
:func:`read_jsonl` parses back).  :meth:`Tracer.write_chrome` emits the
Chrome trace-event JSON format — open it at ``ui.perfetto.dev`` and each
fleet member appears as its own thread track.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, TextIO

__all__ = ["Span", "TrackView", "Tracer", "read_jsonl"]


class Span:
    """Context manager for one open span; created by :meth:`Tracer.span`.

    Entering pushes the span on the tracer's stack (children emitted
    inside nest one level deeper); exiting pops it and, when the tracer
    was built with ``timing=True``, stamps the wall-clock duration into
    the record's ``wall_us`` field.  Call :meth:`end_ts` before exit for
    the rare span whose simulation time advances while it is open.
    """

    __slots__ = ("_tracer", "record", "_wall0")

    def __init__(self, tracer: "Tracer", record: dict[str, Any]) -> None:
        self._tracer = tracer
        self.record = record
        self._wall0 = 0.0

    def end_ts(self, ts: float) -> None:
        """Close the span at simulation time ``ts`` (sets ``dur``)."""
        self.record["dur"] = ts - self.record["ts"]

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        if self._tracer.timing:
            self._wall0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._tracer.timing:
            self.record["wall_us"] = (perf_counter() - self._wall0) * 1e6
        self._tracer._stack.pop()


class Tracer:
    """Collects spans and events; export with ``write_jsonl``/``write_chrome``.

    Parameters
    ----------
    timing:
        When true, spans additionally record wall-clock durations via
        ``time.perf_counter`` in the ``wall_us`` field.  Off by default:
        the default trace is fully deterministic (byte-identical across
        runs of the same scenario).
    """

    __slots__ = ("records", "timing", "_stack")

    def __init__(self, *, timing: bool = False) -> None:
        self.records: list[dict[str, Any]] = []
        self.timing = timing
        self._stack: list[Span] = []

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

    def _record(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        track: int,
        args: dict[str, Any],
    ) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": ts,
            "dur": 0.0,
            "depth": len(self._stack),
            "track": track,
        }
        if args:
            record["args"] = args
        self.records.append(record)
        return record

    def span(
        self, name: str, cat: str = "default", ts: float = 0.0,
        track: int = 0, **args: Any,
    ) -> Span:
        """Open a nestable span at simulation time ``ts`` (use ``with``)."""
        return Span(self, self._record(name, cat, "X", ts, track, args))

    def event(
        self, name: str, cat: str = "default", ts: float = 0.0,
        track: int = 0, **args: Any,
    ) -> None:
        """Record an instant event at simulation time ``ts``."""
        self._record(name, cat, "i", ts, track, args)

    def track(self, track: int) -> "TrackView":
        """A view emitting onto this tracer with a fixed ``track`` index."""
        return TrackView(self, track)

    # -- export -----------------------------------------------------------
    def write_jsonl(self, fp: TextIO) -> int:
        """Write one JSON object per record; returns the record count."""
        for record in self.records:
            fp.write(json.dumps(record, separators=(",", ":")))
            fp.write("\n")
        return len(self.records)

    def write_chrome(self, fp: TextIO) -> int:
        """Write the Chrome trace-event format (Perfetto-compatible).

        Simulation time maps to the ``ts`` microsecond field unchanged
        (simulation units are dimensionless); ``track`` maps to ``tid``
        so each fleet member gets its own lane.
        """
        events = []
        for r in self.records:
            event: dict[str, Any] = {
                "name": r["name"],
                "cat": r["cat"],
                "ph": r["ph"],
                "ts": r["ts"],
                "pid": 0,
                "tid": r["track"],
            }
            if r["ph"] == "X":
                event["dur"] = r["dur"]
            if r["ph"] == "i":
                event["s"] = "t"
            args = dict(r.get("args", {}))
            if "wall_us" in r:
                args["wall_us"] = r["wall_us"]
            if args:
                event["args"] = args
            events.append(event)
        json.dump({"traceEvents": events}, fp)
        return len(events)


class TrackView:
    """A :class:`Tracer` facade bound to one track (fleet member) index.

    Exposes the same :meth:`span` / :meth:`event` surface, so member
    simulations can be handed a per-member view of the shared fleet
    tracer without threading the index through every call site.
    """

    __slots__ = ("_tracer", "_track")

    def __init__(self, tracer: Tracer, track: int) -> None:
        self._tracer = tracer
        self._track = track

    @property
    def timing(self) -> bool:
        """Whether the underlying tracer stamps wall-clock durations."""
        return self._tracer.timing

    def span(
        self, name: str, cat: str = "default", ts: float = 0.0, **args: Any
    ) -> Span:
        """Open a span on the underlying tracer, tagged with this track."""
        return self._tracer.span(name, cat, ts, track=self._track, **args)

    def event(
        self, name: str, cat: str = "default", ts: float = 0.0, **args: Any
    ) -> None:
        """Record an instant event tagged with this track."""
        self._tracer.event(name, cat, ts, track=self._track, **args)


def read_jsonl(fp: TextIO) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into its record dicts (round-trip)."""
    return [json.loads(line) for line in fp if line.strip()]
