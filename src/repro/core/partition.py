"""Task partitioning strategies (Decision #2 of the framework).

The scheduling framework of [22] (reused in Figure 2 of this paper) is
configured along three axes; this module implements the second one — how a
task's data is split across nodes — as interchangeable strategy objects:

* :class:`DltIitPartitioner` — the paper's contribution: partition via the
  heterogeneous model so every allocated node starts work **as soon as it
  becomes available** (utilizing Inserted Idle Times), node count ``ñ_min``.
* :class:`OprPartitioner` — the baseline from [22]: optimal partitioning
  rule with **simultaneous** allocation; nodes assigned to a task idle from
  their individual release until the last one frees up (the IIT waste the
  paper attacks).  Node count ``n_min`` (exact), or all ``N`` (the "-AN"
  variants).
* :class:`UserSplitPartitioner` — current practice at CMS Tier-2 sites:
  the user splits a task into ``n`` equal chunks for a self-chosen
  ``n ∈ [N_min, N]`` (random, drawn once per task).  Starts nodes as they
  free up (it *does* use IITs) but with naive equal chunks and a static
  node count.

Every strategy consumes the same inputs — a task and the per-node
availability vector ``max(Release(node_k), now)`` — and produces a
:class:`PlacementPlan` (or ``None`` for "reject"), so the schedulability
test is strategy-agnostic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core import dlt, het_model
from repro.core.cluster import ClusterProfile
from repro.core.dlt import FEASIBILITY_RTOL
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = [
    "NODE_ORDERS",
    "DltIitPartitioner",
    "OprPartitioner",
    "Partitioner",
    "PlacementPlan",
    "UserSplitPartitioner",
    "feasible_by",
    "sorted_candidates",
]

#: Valid node-ordering policies for heterogeneous placement.  Candidates
#: are always ordered by availability first; the policy chooses the
#: tie-break among simultaneously available nodes:
#:
#: ``"availability"``
#:     Node id (the paper's ordering — bit-for-bit the historical default).
#: ``"fastest-first"``
#:     Lower processing cost ``Cps_i`` first (then node id).
#: ``"bandwidth-first"``
#:     Lower link cost ``Cms_i`` first (then node id).
NODE_ORDERS: tuple[str, ...] = ("availability", "fastest-first", "bandwidth-first")


def validate_node_order(order: str) -> str:
    """Return ``order`` if it names a node-ordering policy, else raise."""
    if order not in NODE_ORDERS:
        raise InvalidParameterError(
            f"unknown node order {order!r}; valid: {', '.join(NODE_ORDERS)}"
        )
    return order


def feasible_by(completion: float, absolute_deadline: float) -> bool:
    """Deadline check with the package-wide float tolerance.

    The analysis is exact in real arithmetic; this guard only absorbs
    rounding so a mathematically feasible plan is never rejected by an ulp.
    """
    tol = FEASIBILITY_RTOL * max(1.0, abs(absolute_deadline))
    return completion <= absolute_deadline + tol


@dataclass(frozen=True, slots=True)
class ExplicitChunk:
    """One precomputed chunk window (multi-round plans).

    All times are absolute simulation times; ``position`` indexes the
    owning node within the plan's ``node_ids``.
    """

    position: int
    round_index: int
    alpha: float
    trans_start: float
    trans_end: float
    comp_end: float


@dataclass(frozen=True, slots=True)
class PlacementPlan:
    """A feasible assignment of one task to a set of nodes.

    Attributes
    ----------
    task:
        The task being placed.
    method:
        Partitioning method tag (``"dlt-iit"``, ``"opr"``, ``"user-split"``).
    node_ids:
        Chosen node identifiers, ordered ``P_1 .. P_n`` by availability
        (ties broken by node id, so plans are deterministic).
    release_times:
        ``r_i`` — the time each chosen node becomes available to this task
        (non-decreasing by construction).
    dispatch_releases:
        The per-node earliest transmission-start constraints used when the
        plan executes.  Equal to ``release_times`` for IIT-utilizing methods;
        equal to ``(r_n, ..., r_n)`` for OPR, which holds all nodes until the
        last one frees (that difference *is* the wasted IIT).
    alphas:
        Per-node *total* data fractions (sum to 1), in ``node_ids`` order.
    est_completion:
        The admission-time completion estimate ``e_i`` the real-time
        guarantee is made against (Eq. 7 / Eq. 15 / r_n + E).
    explicit_chunks:
        Optional precomputed chunk windows (multi-round extension): when
        present, the executor replays them instead of deriving the
        single-chunk-per-node recursion.
    start_time:
        First instant the plan performs any activity (head node begins the
        first chunk transmission); the scheduler locks the task then.
    """

    task: DivisibleTask
    method: str
    node_ids: tuple[int, ...]
    release_times: tuple[float, ...]
    dispatch_releases: tuple[float, ...]
    alphas: tuple[float, ...]
    est_completion: float
    explicit_chunks: tuple[ExplicitChunk, ...] | None = None

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        if n == 0:
            raise InvalidParameterError("a plan must use at least one node")
        if len(set(self.node_ids)) != n:
            raise InvalidParameterError(f"duplicate node ids in plan: {self.node_ids}")
        if len(self.release_times) != n or len(self.alphas) != n:
            raise InvalidParameterError("plan vectors must have equal length")
        if len(self.dispatch_releases) != n:
            raise InvalidParameterError("dispatch_releases must have length n")
        if self.explicit_chunks is not None:
            if not self.explicit_chunks:
                raise InvalidParameterError("explicit_chunks may not be empty")
            for c in self.explicit_chunks:
                if not 0 <= c.position < n:
                    raise InvalidParameterError(
                        f"chunk position {c.position} out of range [0, {n})"
                    )

    @property
    def n(self) -> int:
        """Number of nodes used."""
        return len(self.node_ids)

    @property
    def start_time(self) -> float:
        """When the head node first starts transmitting for this task."""
        if self.explicit_chunks is not None:
            return min(c.trans_start for c in self.explicit_chunks)
        return self.dispatch_releases[0]

    @property
    def rn(self) -> float:
        """``r_n`` — availability of the last (latest) chosen node."""
        return self.release_times[-1]


def sorted_candidates(
    avail: "NDArray[np.float64]",
    cluster: ClusterProfile | None = None,
    node_order: str = "availability",
) -> tuple["NDArray[np.intp]", "NDArray[np.float64]"]:
    """Node ids sorted by availability, ties broken per ``node_order``.

    The default reproduces the paper's ordering bit-for-bit (stable sort →
    node-id tie-break).  ``"fastest-first"`` / ``"bandwidth-first"`` break
    availability ties toward cheaper ``Cps_i`` / ``Cms_i`` nodes, which only
    matters on heterogeneous clusters where several nodes free up at the
    same instant (always the case at time 0).
    """
    if node_order == "availability" or cluster is None:
        order = np.argsort(avail, kind="stable")
        return order, avail[order]
    validate_node_order(node_order)
    tiebreak = (
        cluster.cps_array if node_order == "fastest-first" else cluster.cms_array
    )
    # lexsort: last key is primary; stable, so full ties fall back to node id.
    order = np.lexsort((tiebreak, avail))
    return order, avail[order]


class Partitioner(ABC):
    """Strategy interface: decide node count, nodes, chunks and estimate."""

    #: Human-readable method tag stamped on produced plans.
    method: str = "abstract"

    def on_task_arrival(self, task: DivisibleTask, cluster: ClusterProfile) -> None:
        """Hook called exactly once when a task first arrives.

        Lets stateful strategies (User-Split's per-task random ``n``) make
        their one-time decisions on a deterministic RNG stream regardless of
        later re-planning.  Default: no-op.
        """

    @abstractmethod
    def place(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        cluster: ClusterProfile,
        now: float,
    ) -> PlacementPlan | None:
        """Try to place ``task`` given per-node availability ``avail``.

        Parameters
        ----------
        task:
            The task to place.
        avail:
            Shape ``(N,)`` — earliest time each node (by id) can start
            serving this task, already floored at the current time.
        cluster:
            Static cluster description.
        now:
            The admission-test time ``t`` of Figure 2 (the new arrival's
            timestamp).  ``ñ_min(t)`` / ``n_min(t)`` are evaluated here.

        Returns
        -------
        PlacementPlan or None
            ``None`` means the task cannot meet its deadline under this
            strategy ⇒ the schedulability test fails ⇒ rejection.
        """


class DltIitPartitioner(Partitioner):
    """The paper's DLT-based partitioner utilizing Inserted Idle Times.

    Implements the Figure 2 branch ``n ← ñ_min(t)`` / "identify the
    earliest time t when AN(t) >= n":

    1. evaluate ``ñ_min`` (Eq. 14) **at the admission-test time** — the
       node count that would suffice if the task started right now;
    2. take the ``ñ_min`` earliest-available nodes (the earliest instant at
       which that many nodes exist);
    3. partition via the heterogeneous model (Eq. 4-5) so each node starts
       receiving data the moment it frees, and check the *exact* completion
       estimate ``r_n + Ê`` (Eq. 7) against the deadline.

    Step 3 is where utilizing IITs pays at admission time: the OPR baseline
    must satisfy ``r_n + E <= A + D`` while DLT only needs ``r_n + Ê`` with
    ``Ê <= E`` (Eq. 9), so marginal tasks that OPR rejects are accepted —
    the paper's "task execution time decreases and as a result the cluster
    can accommodate more tasks".

    Parameters
    ----------
    assign_all_nodes:
        "DLT-AN" extension: always use all ``N`` nodes (ablation).
    fixed_point_node_count:
        Ablation (non-paper): resolve the circularity between ``n`` and the
        start time by scanning ``k = 1..N`` candidate start times and
        re-evaluating ``ñ_min(avail_k)`` at each — a strictly more generous
        node-count rule that benefits DLT and OPR alike (see
        ``benchmarks/test_bench_ablations.py``).
    node_order:
        Candidate ordering among simultaneously available nodes (see
        :data:`NODE_ORDERS`); the default is the paper's node-id tie-break.
    """

    def __init__(
        self,
        *,
        assign_all_nodes: bool = False,
        fixed_point_node_count: bool = False,
        node_order: str = "availability",
    ) -> None:
        self.assign_all_nodes = assign_all_nodes
        self.fixed_point_node_count = fixed_point_node_count
        self.node_order = validate_node_order(node_order)
        self.method = "dlt-iit-an" if assign_all_nodes else "dlt-iit"

    def _plan_for(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        cluster: ClusterProfile,
    ) -> PlacementPlan | None:
        releases = sorted_avail[:n]
        if cluster.is_homogeneous:
            cms, cps = cluster.cms, cluster.cps
        else:
            # Intrinsic per-node costs of the chosen nodes, availability order.
            cms, cps = cluster.costs_for(order[:n])
        model = het_model.build_model(task.sigma, releases, cms, cps)
        if not feasible_by(model.completion, task.absolute_deadline):
            return None
        release_t = tuple(float(v) for v in releases)
        return PlacementPlan(
            task=task,
            method=self.method,
            node_ids=tuple(int(order[i]) for i in range(n)),
            release_times=release_t,
            dispatch_releases=release_t,
            alphas=model.alphas,
            est_completion=model.completion,
        )

    def place(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        cluster: ClusterProfile,
        now: float,
    ) -> PlacementPlan | None:
        avail = np.maximum(np.asarray(avail, dtype=np.float64), task.arrival)
        order, sorted_avail = sorted_candidates(avail, cluster, self.node_order)
        big_n = cluster.nodes

        if self.assign_all_nodes:
            # DLT-AN: use every node; feasibility via the exact model (the
            # ñ_min bound is conservative — Ê <= E — and would over-reject).
            return self._plan_for(task, order, sorted_avail, big_n, cluster)

        if self.fixed_point_node_count:
            for k in range(1, big_n + 1):
                n_req = het_model.ntilde_min(
                    task.sigma,
                    cluster.worst_cms,
                    cluster.worst_cps,
                    task.arrival,
                    task.deadline,
                    float(sorted_avail[k - 1]),
                    max_nodes=big_n,
                )
                if n_req is None or n_req > k:
                    continue
                plan = self._plan_for(task, order, sorted_avail, n_req, cluster)
                if plan is not None:
                    return plan
            return None

        # Paper rule: ñ_min at the admission-test time.
        t_test = max(now, task.arrival)
        n_req = het_model.ntilde_min(
            task.sigma,
            cluster.worst_cms,
            cluster.worst_cps,
            task.arrival,
            task.deadline,
            t_test,
            max_nodes=big_n,
        )
        if n_req is None:
            return None
        return self._plan_for(task, order, sorted_avail, n_req, cluster)


class OprPartitioner(Partitioner):
    """Baseline from [22]: simultaneous allocation, no IIT utilization.

    All ``n`` assigned nodes start at ``r_n`` (the moment the last of them
    frees up); chunks follow the geometric optimal partitioning rule; the
    completion estimate is ``r_n + E(sigma, n)``.  Nodes that freed earlier
    idle until ``r_n`` — the Inserted Idle Times this paper eliminates.

    Parameters
    ----------
    assign_all_nodes:
        ``False`` → "-MN" variants (minimum node count, the strong baseline
        EDF-OPR-MN / FIFO-OPR-MN); ``True`` → "-AN" variants that always
        grab the whole cluster (mentioned in Section 5 as rarely deployed).
    fixed_point_node_count:
        Same ablation switch as on :class:`DltIitPartitioner`, applied to
        the baseline so the ablation compares like with like.
    node_order:
        Candidate ordering among simultaneously available nodes (see
        :data:`NODE_ORDERS`).
    """

    def __init__(
        self,
        *,
        assign_all_nodes: bool = False,
        fixed_point_node_count: bool = False,
        node_order: str = "availability",
    ) -> None:
        self.assign_all_nodes = assign_all_nodes
        self.fixed_point_node_count = fixed_point_node_count
        self.node_order = validate_node_order(node_order)
        self.method = "opr-an" if assign_all_nodes else "opr"

    def _plan_for(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        cluster: ClusterProfile,
    ) -> PlacementPlan | None:
        releases = sorted_avail[:n]
        rn = float(releases[-1])
        if cluster.is_homogeneous:
            exec_time = dlt.execution_time(task.sigma, n, cluster.cms, cluster.cps)
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
            alphas = dlt.opr_alphas(n, cluster.cms, cluster.cps)
        else:
            # Simultaneous allocation at r_n over the chosen nodes' intrinsic
            # costs: the equal-finish recurrence replaces the geometric rule.
            cms_sel, cps_sel = cluster.costs_for(order[:n])
            alphas = dlt.het_alphas(cms_sel, cps_sel)
            exec_time = dlt.het_execution_time(
                task.sigma, cms_sel, cps_sel, alphas=alphas
            )
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
        return PlacementPlan(
            task=task,
            method=self.method,
            node_ids=tuple(int(order[i]) for i in range(n)),
            release_times=tuple(float(v) for v in releases),
            dispatch_releases=(rn,) * n,
            alphas=tuple(float(v) for v in alphas),
            est_completion=float(completion),
        )

    def place(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        cluster: ClusterProfile,
        now: float,
    ) -> PlacementPlan | None:
        avail = np.maximum(np.asarray(avail, dtype=np.float64), task.arrival)
        order, sorted_avail = sorted_candidates(avail, cluster, self.node_order)
        big_n = cluster.nodes

        if self.assign_all_nodes:
            return self._plan_for(task, order, sorted_avail, big_n, cluster)

        if self.fixed_point_node_count:
            for k in range(1, big_n + 1):
                n_req = dlt.min_nodes(
                    task.sigma,
                    cluster.worst_cms,
                    cluster.worst_cps,
                    task.arrival + task.deadline - float(sorted_avail[k - 1]),
                    max_nodes=big_n,
                )
                if n_req is None or n_req > k:
                    continue
                plan = self._plan_for(task, order, sorted_avail, n_req, cluster)
                if plan is not None:
                    return plan
            return None

        # Paper rule: n_min at the admission-test time.
        t_test = max(now, task.arrival)
        n_req = dlt.min_nodes(
            task.sigma,
            cluster.worst_cms,
            cluster.worst_cps,
            task.arrival + task.deadline - t_test,
            max_nodes=big_n,
        )
        if n_req is None:
            return None
        return self._plan_for(task, order, sorted_avail, n_req, cluster)


class UserSplitPartitioner(Partitioner):
    """Current practice: the user pre-splits a task into ``n`` equal chunks.

    ``n`` is drawn uniformly from ``[N_min, N]`` once per task at arrival
    (Section 4.1.2), where ``N_min = ceil(sigma*Cps / (D - sigma*Cms))`` is
    the minimum node count that could meet the deadline if execution began
    immediately at arrival.  The chunks being equal, node ``P_i`` finishes at
    ``s_i + sigma(Cms+Cps)/n`` with the transmission recursion
    ``s_1 = r_1``, ``s_i = max(r_i, s_{i-1} + sigma*Cms/n)`` (Eq. 15).

    The strategy *does* utilize IITs (each node starts when it frees) but
    pays for its naive equal split and static ``n``.

    Parameters
    ----------
    rng:
        Seeded :class:`numpy.random.Generator` supplying the per-task draws;
        tasks consume exactly one draw on arrival (feasible or not), so a
        run is reproducible from the seed alone.
    redraw_on_replan:
        Figure 2's pseudocode places the ``random number from [Nmin, N]``
        draw *inside* the schedulability-test loop, which re-rolls a
        waiting task's request on every re-plan.  Physically, though, the
        user split the *data* once at submission, and the sticky reading
        reproduces Figure 5a's "DLT always wins at DCRatio=2" and the
        Section 5.2 gain magnitudes better, so ``False`` is the default;
        the pseudocode-literal behaviour is benchmarked as an ablation.
    node_order:
        Candidate ordering among simultaneously available nodes (see
        :data:`NODE_ORDERS`).
    """

    method = "user-split"

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        redraw_on_replan: bool = False,
        node_order: str = "availability",
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()
        self.redraw_on_replan = redraw_on_replan
        self.node_order = validate_node_order(node_order)
        self._requested: dict[int, int | None] = {}

    @staticmethod
    def min_nodes_user(task: DivisibleTask, cluster: ClusterProfile) -> int | None:
        """``N_min = ceil(sigma*Cps / (D - sigma*Cms))`` (Section 4.1.2).

        ``None`` when no node count can work: ``D <= sigma*Cms`` (deadline
        below sequential transmission) or ``N_min > N``.
        """
        slack = task.deadline - task.sigma * cluster.worst_cms
        if slack <= 0:
            return None
        n_min = math.ceil(task.sigma * cluster.worst_cps / slack - FEASIBILITY_RTOL)
        n_min = max(n_min, 1)
        if n_min > cluster.nodes:
            return None
        return n_min

    def on_task_arrival(self, task: DivisibleTask, cluster: ClusterProfile) -> None:
        """Draw the user's node request when the task first arrives."""
        if task.task_id in self._requested:
            return
        self._requested[task.task_id] = self._draw(task, cluster)

    def requested_nodes(self, task_id: int) -> int | None:
        """The node count the 'user' asked for (``None`` = infeasible)."""
        return self._requested.get(task_id)

    def _draw(self, task: DivisibleTask, cluster: ClusterProfile) -> int | None:
        """One uniform draw from [N_min, N] (None = infeasible task)."""
        n_min = self.min_nodes_user(task, cluster)
        if n_min is None:
            # Consume one draw anyway so the RNG stream does not depend on
            # feasibility (keeps cross-experiment comparisons aligned).
            self.rng.integers(1, cluster.nodes + 1)
            return None
        return int(self.rng.integers(n_min, cluster.nodes + 1))

    def place(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        cluster: ClusterProfile,
        now: float,
    ) -> PlacementPlan | None:
        if task.task_id not in self._requested:
            self.on_task_arrival(task, cluster)
        if self.redraw_on_replan:
            # Figure 2: the draw happens inside the schedulability-test
            # loop, so every re-plan re-rolls the request (infeasible tasks
            # stay infeasible: N_min does not depend on cluster state).
            n = self._draw(task, cluster)
            self._requested[task.task_id] = n
        else:
            n = self._requested[task.task_id]
        if n is None:
            return None

        avail = np.maximum(np.asarray(avail, dtype=np.float64), task.arrival)
        order, sorted_avail = sorted_candidates(avail, cluster, self.node_order)
        releases = sorted_avail[:n]

        # Eq. 15: sequential transmission of n equal chunks.
        if cluster.is_homogeneous:
            chunk_cms = task.sigma * cluster.cms / n
            chunk_cps = task.sigma * cluster.cps / n
            s = float(releases[0])
            for i in range(1, n):
                s = max(float(releases[i]), s + chunk_cms)
            completion = s + chunk_cms + chunk_cps
        else:
            # Per-node costs: chunk i rides link Cms_i and computes at
            # Cps_i, so the slowest node — not the last — may finish last.
            cms_sel, cps_sel = cluster.costs_for(order[:n])
            chunk = task.sigma / n
            completion = -math.inf
            trans_end = -math.inf
            for i in range(n):
                start = max(float(releases[i]), trans_end)
                trans_end = start + chunk * float(cms_sel[i])
                completion = max(completion, trans_end + chunk * float(cps_sel[i]))
        if not feasible_by(completion, task.absolute_deadline):
            return None

        release_t = tuple(float(v) for v in releases)
        return PlacementPlan(
            task=task,
            method=self.method,
            node_ids=tuple(int(order[i]) for i in range(n)),
            release_times=release_t,
            dispatch_releases=release_t,
            alphas=(1.0 / n,) * n,
            est_completion=float(completion),
        )
