"""Heterogeneous model construction for different processor available times.

This module is the paper's first contribution (Section 4.1.1):

**A — model construction.**  ``n`` processors become available to a task at
times ``r_1 <= r_2 <= ... <= r_n``.  They are recast as ``n``
*heterogeneous* processors all allocated at ``r_n``; a node that was free
``r_n - r_i`` earlier is modelled as proportionally faster (Eq. 1):

.. math::  Cps_i^{eff} = \\frac{E}{E + r_n - r_i} Cps_i, \\qquad
           Cms_i^{eff} = Cms_i

where ``E`` is the no-IIT execution time of the chosen nodes — the closed
form of [22] for the paper's homogeneous cluster, or the generalized
equal-finish recurrence (:func:`repro.core.dlt.het_execution_time`) when
the nodes carry *intrinsic* per-node costs.  Availability-induced speedup
and intrinsic heterogeneity therefore compose into one model.

**B — DLT analysis on the model.**  The classic optimality principle (all
nodes finish simultaneously) yields chunk-fraction recurrences
``alpha_i = X_i alpha_{i-1}`` with ``X_i = Cps_{i-1}/(Cms_i + Cps_i)``
(Eq. 4-5) over the effective cost vectors, an execution time estimate
(Eq. 6)

.. math::  \\hat E(\\sigma, n) = \\sigma \\textstyle\\sum_i \\alpha_i Cms_i
           + \\alpha_n \\sigma Cps_n

(the last node keeps its intrinsic ``Cps_n`` since ``r_n - r_n = 0``), a
completion time ``C(n) = r_n + Ê`` (Eq. 7), and — because every
``X_i <= beta_i^{worst}`` — the safe node-count bound
``ñ_min = ceil(ln gamma / ln beta)`` (Eq. 14) evaluated at the cluster's
worst-case per-node costs.

**C — soundness.**  Theorem 4 proves the *actual* cluster execution
(sequential chunk distribution, staggered starts) finishes no later than
``r_n + Ê``.  :func:`actual_node_schedule` implements the real recursion —
now over per-node cost vectors — so the simulator can verify the theorem
run by run on homogeneous and heterogeneous clusters alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import dlt
from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = [
    "HeterogeneousModel",
    "NodeSchedule",
    "actual_node_schedule",
    "build_model",
    "ntilde_min",
]


def _as_cost_vector(
    name: str, value: "float | Sequence[float] | NDArray[np.float64]", n: int
) -> "NDArray[np.float64]":
    """Broadcast a scalar cost to ``n`` nodes; validate a given vector."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(n, float(arr))
    if arr.ndim != 1 or arr.size != n:
        raise InvalidParameterError(
            f"{name} must be a scalar or a length-{n} vector, got shape {arr.shape}"
        )
    if not (np.all(np.isfinite(arr)) and np.all(arr > 0)):
        raise InvalidParameterError(f"every {name} entry must be finite and > 0")
    return arr


def _worst_cost(value: "float | Sequence[float] | NDArray[np.float64]") -> float:
    """Scalar worst case (max cost) of a scalar-or-vector argument."""
    arr = np.asarray(value, dtype=np.float64)
    return float(arr) if arr.ndim == 0 else float(arr.max())


@dataclass(frozen=True, slots=True)
class HeterogeneousModel:
    """The constructed model plus everything DLT derives from it.

    Attributes
    ----------
    release_times:
        Sorted available times ``r_1 <= ... <= r_n`` of the chosen nodes.
    cms_vec, cps_vec:
        Intrinsic per-node costs of the chosen nodes (uniform for the
        paper's homogeneous cluster).
    cps_eff:
        Effective unit-processing costs ``Cps_i^{eff}`` of the
        heterogeneous model (Eq. 1): intrinsic cost scaled by the
        availability speedup; ends exactly at the last node's intrinsic
        ``Cps_n``.
    alphas:
        Optimal chunk fractions (Eq. 4-5); sum to 1, ``alpha_i < alpha_1``
        for i >= 2 (Assertion 1).
    exec_time:
        ``Ê(sigma, n)`` (Eq. 6), measured from ``r_n``.
    completion:
        ``C(n) = r_n + Ê`` (Eq. 7) — the estimate Theorem 4 guarantees.
    no_iit_exec_time:
        ``E(sigma, n)`` with simultaneous allocation; satisfies ``Ê <= E``
        (Eq. 9).
    """

    sigma: float
    cms_vec: tuple[float, ...]
    cps_vec: tuple[float, ...]
    release_times: tuple[float, ...]
    cps_eff: tuple[float, ...]
    alphas: tuple[float, ...]
    exec_time: float
    completion: float
    no_iit_exec_time: float

    @property
    def n(self) -> int:
        """Number of allocated nodes."""
        return len(self.release_times)

    @property
    def cms(self) -> float:
        """Uniform intrinsic link cost (homogeneous models only)."""
        first = self.cms_vec[0]
        if any(v != first for v in self.cms_vec):
            raise InvalidParameterError("model links are heterogeneous; use cms_vec")
        return first

    @property
    def cps(self) -> float:
        """Uniform intrinsic node cost (homogeneous models only)."""
        first = self.cps_vec[0]
        if any(v != first for v in self.cps_vec):
            raise InvalidParameterError("model nodes are heterogeneous; use cps_vec")
        return first

    @property
    def chunk_sizes(self) -> "NDArray[np.float64]":
        """Absolute data chunk sizes ``alpha_i * sigma`` (Eq. 4-5)."""
        return np.asarray(self.alphas) * self.sigma


def build_model(
    sigma: float,
    release_times: Sequence[float] | "NDArray[np.float64]",
    cms: "float | Sequence[float] | NDArray[np.float64]",
    cps: "float | Sequence[float] | NDArray[np.float64]",
) -> HeterogeneousModel:
    """Construct the heterogeneous model and run the DLT analysis on it.

    Parameters
    ----------
    sigma:
        Task data size (> 0).
    release_times:
        Available times of the ``n`` chosen nodes.  Must be non-decreasing
        (callers sort candidates by availability; the paper orders ``P_1``
        earliest ... ``P_n`` latest).
    cms, cps:
        Unit transmission / processing costs.  Scalars describe the paper's
        homogeneous cluster (that code path is unchanged bit-for-bit);
        per-node vectors — aligned with ``release_times`` — describe
        intrinsic heterogeneity, which composes with the availability
        speedup of Eq. 1.

    Returns
    -------
    HeterogeneousModel

    Raises
    ------
    InvalidParameterError
        On empty/unsorted release times or invalid cost parameters.
    """
    r = np.asarray(release_times, dtype=np.float64)
    if r.ndim != 1 or r.size == 0:
        raise InvalidParameterError("release_times must be a non-empty 1-D sequence")
    if np.any(np.diff(r) < 0):
        raise InvalidParameterError(
            "release_times must be non-decreasing (sort nodes by availability)"
        )
    if not np.all(np.isfinite(r)):
        raise InvalidParameterError("release_times must all be finite")

    n = int(r.size)
    rn = float(r[-1])
    iit = rn - r

    scalar_costs = np.ndim(cms) == 0 and np.ndim(cps) == 0
    if scalar_costs:
        # Homogeneous cluster: the paper's exact path (closed-form E from
        # [22], Eq. 1 speedup, Eq. 4-6 recurrence) — preserved bit-for-bit.
        cms_s, cps_s = float(cms), float(cps)
        e_no_iit = dlt.execution_time(sigma, n, cms_s, cps_s)
        cps_eff = (e_no_iit / (e_no_iit + iit)) * cps_s
        cms_vec = np.full(n, cms_s)
        cps_vec = np.full(n, cps_s)

        # Eq. 4-5 over (uniform Cms, effective Cps) — bitwise identical to
        # the historical inline recurrence (scalar+array add == array+array
        # add element-wise for equal values).
        alphas = dlt.het_alphas(cms_vec, cps_eff)

        # Eq. 6: Ê = sigma*Cms + alpha_n*sigma*Cps   (Cps_n == Cps exactly).
        exec_time = sigma * cms_s + float(alphas[-1]) * sigma * cps_s
    else:
        cms_vec = _as_cost_vector("cms", cms, n)
        cps_vec = _as_cost_vector("cps", cps, n)
        # Intrinsic no-IIT execution time of these nodes in this order.
        e_no_iit = dlt.het_execution_time(sigma, cms_vec, cps_vec)
        # Eq. 1 composed with intrinsic speed: earlier-available nodes gain
        # processing power proportional to their inserted idle time.
        cps_eff = (e_no_iit / (e_no_iit + iit)) * cps_vec
        alphas = dlt.het_alphas(cms_vec, cps_eff)
        # Eq. 6 generalized: total sequential transmission + the last
        # node's compute (its speedup factor is exactly 1).
        exec_time = float(
            sigma * (alphas * cms_vec).sum()
            + float(alphas[-1]) * sigma * float(cps_vec[-1])
        )

    completion = rn + exec_time

    return HeterogeneousModel(
        sigma=float(sigma),
        cms_vec=tuple(float(v) for v in cms_vec),
        cps_vec=tuple(float(v) for v in cps_vec),
        release_times=tuple(float(v) for v in r),
        cps_eff=tuple(float(v) for v in cps_eff),
        alphas=tuple(float(v) for v in alphas),
        exec_time=float(exec_time),
        completion=float(completion),
        no_iit_exec_time=float(e_no_iit),
    )


def ntilde_min(
    sigma: float,
    cms: "float | Sequence[float] | NDArray[np.float64]",
    cps: "float | Sequence[float] | NDArray[np.float64]",
    arrival: float,
    relative_deadline: float,
    rn: float,
    *,
    max_nodes: int | None = None,
) -> int | None:
    """``ñ_min`` — safe node count for a task started at ``r_n`` (Eq. 14).

    Solving ``C(n) <= A + D`` exactly is hard, so the paper bounds
    ``Ê <= E`` (Eq. 9) and inverts the simpler inequality, giving
    ``ñ_min = ceil(ln gamma / ln beta)`` with
    ``gamma = 1 - sigma*Cms/(A + D - r_n)``.  Allocating at least ``ñ_min``
    nodes at (or before) ``r_n`` guarantees the deadline.

    With per-node cost vectors the bound is evaluated at the *worst-case*
    costs ``Cms = max_i Cms_i`` and ``Cps = max_i Cps_i``: the equal-finish
    execution time is monotone in every per-node cost, so for any subset
    and order of ``n`` real nodes ``Ê <= E <= E_hom(n, Cms^max, Cps^max)``
    (every ``X_i <= beta_i^{worst}``), and the homogeneous inversion stays
    a safe upper bound on the node count.

    Returns ``None`` when the task must be rejected from start time ``rn``:
    either ``A + D - r_n <= 0`` (no budget at all) or ``gamma <= 0`` (budget
    cannot even cover sequential transmission) or the bound exceeds
    ``max_nodes``.
    """
    budget = arrival + relative_deadline - rn
    return dlt.min_nodes(
        sigma, _worst_cost(cms), _worst_cost(cps), budget, max_nodes=max_nodes
    )


@dataclass(frozen=True, slots=True)
class NodeSchedule:
    """Chunk-level timing of one task on the *actual* cluster.

    Produced by :func:`actual_node_schedule`; all arrays are indexed by the
    task-local node position ``i = 0..n-1`` (availability order).

    ``trans_start[i] = max(trans_end[i-1], r_i)`` — the head node sends
    chunks strictly in node order and a node cannot receive before it is
    free (no buffering of a next task's data while computing; see the
    paper's discussion of why [9, 8, 11] do not apply to plain clusters).
    """

    trans_start: "NDArray[np.float64]"
    trans_end: "NDArray[np.float64]"
    comp_end: "NDArray[np.float64]"

    @property
    def completion(self) -> float:
        """Actual task completion: last node to finish computing."""
        return float(self.comp_end.max())


def actual_node_schedule(
    sigma: float,
    alphas: Sequence[float] | "NDArray[np.float64]",
    release_times: Sequence[float] | "NDArray[np.float64]",
    cms: "float | Sequence[float] | NDArray[np.float64]",
    cps: "float | Sequence[float] | NDArray[np.float64]",
    *,
    not_before: float | None = None,
) -> NodeSchedule:
    """Simulate the real sequential dispatch of one task's chunks.

    This is the ground truth Theorem 4 speaks about: chunk ``i`` starts
    transmitting at ``max(end of chunk i-1, r_i)`` (optionally also not
    before ``not_before``, e.g. a dispatch instant), takes
    ``alpha_i*sigma*Cms_i`` on the wire and ``alpha_i*sigma*Cps_i`` to
    compute.  ``cms``/``cps`` accept scalars (homogeneous cluster) or
    per-node vectors aligned with ``alphas``.

    Returns
    -------
    NodeSchedule
        Per-node transmission windows and computation finish times.
    """
    a = np.asarray(alphas, dtype=np.float64)
    r = np.asarray(release_times, dtype=np.float64)
    if a.shape != r.shape or a.ndim != 1 or a.size == 0:
        raise InvalidParameterError("alphas and release_times must match, 1-D, non-empty")
    if np.any(a <= 0) or not math.isclose(float(a.sum()), 1.0, rel_tol=1e-9):
        raise InvalidParameterError("alphas must be positive and sum to 1")

    n = a.size
    cms_vec = _as_cost_vector("cms", cms, n)
    cps_vec = _as_cost_vector("cps", cps, n)
    trans = a * sigma * cms_vec
    comp = a * sigma * cps_vec
    trans_start = np.empty(n)
    trans_end = np.empty(n)
    floor = -math.inf if not_before is None else not_before
    prev_end = floor
    for i in range(n):
        start = max(prev_end, float(r[i]))
        trans_start[i] = start
        prev_end = start + trans[i]
        trans_end[i] = prev_end
    comp_end = trans_end + comp
    return NodeSchedule(trans_start=trans_start, trans_end=trans_end, comp_end=comp_end)
