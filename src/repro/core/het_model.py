"""Heterogeneous model construction for different processor available times.

This module is the paper's first contribution (Section 4.1.1):

**A — model construction.**  ``n`` homogeneous processors become available
to a task at times ``r_1 <= r_2 <= ... <= r_n``.  They are recast as ``n``
*heterogeneous* processors all allocated at ``r_n``; a node that was free
``r_n - r_i`` earlier is modelled as proportionally faster (Eq. 1):

.. math::  Cps_i = \\frac{E}{E + r_n - r_i} Cps, \\qquad Cms_i = Cms

where ``E = E(sigma, n)`` is the no-IIT execution time from [22].

**B — DLT analysis on the model.**  The classic optimality principle (all
nodes finish simultaneously) yields chunk-fraction recurrences
``alpha_i = X_i alpha_{i-1}`` with ``X_i = Cps_{i-1}/(Cms + Cps_i)``
(Eq. 4-5), an execution time estimate (Eq. 6)

.. math::  \\hat E(\\sigma, n) = \\sigma Cms + \\alpha_n \\sigma Cps

(the last node has ``Cps_n = Cps`` since ``r_n - r_n = 0``), a completion
time ``C(n) = r_n + Ê`` (Eq. 7), and — because ``X_i <= beta`` — the safe
node-count bound ``ñ_min = ceil(ln gamma / ln beta)`` (Eq. 14).

**C — soundness.**  Theorem 4 proves the *actual* homogeneous-cluster
execution (sequential chunk distribution, staggered starts) finishes no
later than ``r_n + Ê``.  :func:`actual_node_schedule` implements the real
recursion so the simulator can verify the theorem run by run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import dlt
from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = [
    "HeterogeneousModel",
    "NodeSchedule",
    "actual_node_schedule",
    "build_model",
    "ntilde_min",
]


@dataclass(frozen=True, slots=True)
class HeterogeneousModel:
    """The constructed model plus everything DLT derives from it.

    Attributes
    ----------
    release_times:
        Sorted available times ``r_1 <= ... <= r_n`` of the chosen nodes.
    cps_eff:
        Effective unit-processing costs ``Cps_i`` of the heterogeneous
        nodes (Eq. 1); non-decreasing, ending exactly at ``Cps``.
    alphas:
        Optimal chunk fractions (Eq. 4-5); sum to 1, ``alpha_i < alpha_1``
        for i >= 2 (Assertion 1).
    exec_time:
        ``Ê(sigma, n)`` (Eq. 6), measured from ``r_n``.
    completion:
        ``C(n) = r_n + Ê`` (Eq. 7) — the estimate Theorem 4 guarantees.
    no_iit_exec_time:
        ``E(sigma, n)`` from [22]; satisfies ``Ê <= E`` (Eq. 9).
    """

    sigma: float
    cms: float
    cps: float
    release_times: tuple[float, ...]
    cps_eff: tuple[float, ...]
    alphas: tuple[float, ...]
    exec_time: float
    completion: float
    no_iit_exec_time: float

    @property
    def n(self) -> int:
        """Number of allocated nodes."""
        return len(self.release_times)

    @property
    def chunk_sizes(self) -> "NDArray[np.float64]":
        """Absolute data chunk sizes ``alpha_i * sigma`` (Eq. 4-5)."""
        return np.asarray(self.alphas) * self.sigma


def build_model(
    sigma: float,
    release_times: Sequence[float] | "NDArray[np.float64]",
    cms: float,
    cps: float,
) -> HeterogeneousModel:
    """Construct the heterogeneous model and run the DLT analysis on it.

    Parameters
    ----------
    sigma:
        Task data size (> 0).
    release_times:
        Available times of the ``n`` chosen homogeneous nodes.  Must be
        non-decreasing (callers sort candidates by availability; the paper
        orders ``P_1`` earliest ... ``P_n`` latest).
    cms, cps:
        Unit transmission / processing costs of the homogeneous cluster.

    Returns
    -------
    HeterogeneousModel

    Raises
    ------
    InvalidParameterError
        On empty/unsorted release times or invalid scalar parameters.
    """
    r = np.asarray(release_times, dtype=np.float64)
    if r.ndim != 1 or r.size == 0:
        raise InvalidParameterError("release_times must be a non-empty 1-D sequence")
    if np.any(np.diff(r) < 0):
        raise InvalidParameterError(
            "release_times must be non-decreasing (sort nodes by availability)"
        )
    if not np.all(np.isfinite(r)):
        raise InvalidParameterError("release_times must all be finite")

    n = int(r.size)
    e_no_iit = dlt.execution_time(sigma, n, cms, cps)
    rn = float(r[-1])

    # Eq. 1: earlier-available nodes gain processing power proportional to
    # their inserted idle time r_n - r_i.
    iit = rn - r
    cps_eff = (e_no_iit / (e_no_iit + iit)) * cps

    if n == 1:
        alphas = np.ones(1)
    else:
        # Eq. 4-5 via the recurrence X_i = Cps_{i-1} / (Cms + Cps_i).
        x = cps_eff[:-1] / (cms + cps_eff[1:])
        prods = np.cumprod(x)  # prod_{j=2..i} X_j for i = 2..n
        denom = 1.0 + prods.sum()
        alphas = np.empty(n)
        alphas[0] = 1.0 / denom
        alphas[1:] = prods / denom

    # Eq. 6: Ê = sigma*Cms + alpha_n * sigma * Cps   (Cps_n == Cps exactly).
    exec_time = sigma * cms + float(alphas[-1]) * sigma * cps
    completion = rn + exec_time

    return HeterogeneousModel(
        sigma=float(sigma),
        cms=float(cms),
        cps=float(cps),
        release_times=tuple(float(v) for v in r),
        cps_eff=tuple(float(v) for v in cps_eff),
        alphas=tuple(float(v) for v in alphas),
        exec_time=float(exec_time),
        completion=float(completion),
        no_iit_exec_time=float(e_no_iit),
    )


def ntilde_min(
    sigma: float,
    cms: float,
    cps: float,
    arrival: float,
    relative_deadline: float,
    rn: float,
    *,
    max_nodes: int | None = None,
) -> int | None:
    """``ñ_min`` — safe node count for a task started at ``r_n`` (Eq. 14).

    Solving ``C(n) <= A + D`` exactly is hard, so the paper bounds
    ``Ê <= E`` (Eq. 9) and inverts the simpler inequality, giving
    ``ñ_min = ceil(ln gamma / ln beta)`` with
    ``gamma = 1 - sigma*Cms/(A + D - r_n)``.  Allocating at least ``ñ_min``
    nodes at (or before) ``r_n`` guarantees the deadline.

    Returns ``None`` when the task must be rejected from start time ``rn``:
    either ``A + D - r_n <= 0`` (no budget at all) or ``gamma <= 0`` (budget
    cannot even cover sequential transmission) or the bound exceeds
    ``max_nodes``.
    """
    budget = arrival + relative_deadline - rn
    return dlt.min_nodes(sigma, cms, cps, budget, max_nodes=max_nodes)


@dataclass(frozen=True, slots=True)
class NodeSchedule:
    """Chunk-level timing of one task on the *homogeneous* cluster.

    Produced by :func:`actual_node_schedule`; all arrays are indexed by the
    task-local node position ``i = 0..n-1`` (availability order).

    ``trans_start[i] = max(trans_end[i-1], r_i)`` — the head node sends
    chunks strictly in node order and a node cannot receive before it is
    free (no buffering of a next task's data while computing; see the
    paper's discussion of why [9, 8, 11] do not apply to plain clusters).
    """

    trans_start: "NDArray[np.float64]"
    trans_end: "NDArray[np.float64]"
    comp_end: "NDArray[np.float64]"

    @property
    def completion(self) -> float:
        """Actual task completion: last node to finish computing."""
        return float(self.comp_end.max())


def actual_node_schedule(
    sigma: float,
    alphas: Sequence[float] | "NDArray[np.float64]",
    release_times: Sequence[float] | "NDArray[np.float64]",
    cms: float,
    cps: float,
    *,
    not_before: float | None = None,
) -> NodeSchedule:
    """Simulate the real sequential dispatch of one task's chunks.

    This is the ground truth Theorem 4 speaks about: chunk ``i`` starts
    transmitting at ``max(end of chunk i-1, r_i)`` (optionally also not
    before ``not_before``, e.g. a dispatch instant), takes
    ``alpha_i*sigma*Cms`` on the wire and ``alpha_i*sigma*Cps`` to compute.

    Returns
    -------
    NodeSchedule
        Per-node transmission windows and computation finish times.
    """
    a = np.asarray(alphas, dtype=np.float64)
    r = np.asarray(release_times, dtype=np.float64)
    if a.shape != r.shape or a.ndim != 1 or a.size == 0:
        raise InvalidParameterError("alphas and release_times must match, 1-D, non-empty")
    if np.any(a <= 0) or not math.isclose(float(a.sum()), 1.0, rel_tol=1e-9):
        raise InvalidParameterError("alphas must be positive and sum to 1")

    trans = a * sigma * cms
    comp = a * sigma * cps
    n = a.size
    trans_start = np.empty(n)
    trans_end = np.empty(n)
    floor = -math.inf if not_before is None else not_before
    prev_end = floor
    for i in range(n):
        start = max(prev_end, float(r[i]))
        trans_start[i] = start
        prev_end = start + trans[i]
        trans_end[i] = prev_end
    comp_end = trans_end + comp
    return NodeSchedule(trans_start=trans_start, trans_end=trans_end, comp_end=comp_end)
