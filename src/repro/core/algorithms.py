"""Named algorithm registry: policy × partitioning × node assignment.

Section 4.2 generates algorithms by configuring the framework along three
axes.  The paper evaluates (and we reproduce):

===============  ========  ==============  =================
Name             Policy    Partitioning    Node count
===============  ========  ==============  =================
EDF-DLT          EDF       DLT-IIT         ``ñ_min``
FIFO-DLT         FIFO      DLT-IIT         ``ñ_min``
EDF-UserSplit    EDF       User-Split      user ∈ [N_min, N]
FIFO-UserSplit   FIFO      User-Split      user ∈ [N_min, N]
EDF-OPR-MN       EDF       OPR (no IIT)    ``n_min``
FIFO-OPR-MN      FIFO      OPR (no IIT)    ``n_min``
===============  ========  ==============  =================

plus the "-AN" (all nodes) variants mentioned in Section 5 and a DLT-AN
extension, included for ablations:

EDF-OPR-AN / FIFO-OPR-AN / EDF-DLT-AN / FIFO-DLT-AN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.partition import (
    DltIitPartitioner,
    OprPartitioner,
    Partitioner,
    UserSplitPartitioner,
)
from repro.core.policies import EdfPolicy, FifoPolicy, SchedulingPolicy

__all__ = ["ALGORITHMS", "AlgorithmInstance", "AlgorithmSpec", "make_algorithm"]


@dataclass(frozen=True, slots=True)
class AlgorithmSpec:
    """Static description of one named algorithm."""

    name: str
    policy_factory: Callable[[], SchedulingPolicy]
    partitioner_factory: Callable[[np.random.Generator | None, str], Partitioner]
    utilizes_iits: bool
    description: str

    @property
    def needs_rng(self) -> bool:
        """True for algorithms with stochastic decisions (User-Split)."""
        return "UserSplit" in self.name


@dataclass(frozen=True, slots=True)
class AlgorithmInstance:
    """A ready-to-run (policy, partitioner) pair."""

    spec: AlgorithmSpec
    policy: SchedulingPolicy
    partitioner: Partitioner

    @property
    def name(self) -> str:
        """The algorithm's paper name (e.g. ``"EDF-DLT"``)."""
        return self.spec.name


def _spec(
    name: str,
    policy_factory: Callable[[], SchedulingPolicy],
    partitioner_factory: Callable[[np.random.Generator | None, str], Partitioner],
    utilizes_iits: bool,
    description: str,
) -> AlgorithmSpec:
    return AlgorithmSpec(
        name=name,
        policy_factory=policy_factory,
        partitioner_factory=partitioner_factory,
        utilizes_iits=utilizes_iits,
        description=description,
    )


def _dlt(_rng: np.random.Generator | None, node_order: str) -> Partitioner:
    return DltIitPartitioner(node_order=node_order)


def _dlt_an(_rng: np.random.Generator | None, node_order: str) -> Partitioner:
    return DltIitPartitioner(assign_all_nodes=True, node_order=node_order)


def _opr_mn(_rng: np.random.Generator | None, node_order: str) -> Partitioner:
    return OprPartitioner(node_order=node_order)


def _opr_an(_rng: np.random.Generator | None, node_order: str) -> Partitioner:
    return OprPartitioner(assign_all_nodes=True, node_order=node_order)


def _user_split(rng: np.random.Generator | None, node_order: str) -> Partitioner:
    return UserSplitPartitioner(rng=rng, node_order=node_order)


#: Registry of every algorithm the harness can run, keyed by paper name.
ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "EDF-DLT",
            EdfPolicy,
            _dlt,
            True,
            "The paper's algorithm: EDF order, heterogeneous-model DLT "
            "partitioning with different processor available times, ñ_min nodes.",
        ),
        _spec(
            "FIFO-DLT",
            FifoPolicy,
            _dlt,
            True,
            "The paper's algorithm under FIFO ordering.",
        ),
        _spec(
            "EDF-UserSplit",
            EdfPolicy,
            _user_split,
            True,
            "Current practice: user splits the task into n equal chunks, "
            "n drawn uniformly from [N_min, N]; EDF order.",
        ),
        _spec(
            "FIFO-UserSplit",
            FifoPolicy,
            _user_split,
            True,
            "Current practice under FIFO ordering.",
        ),
        _spec(
            "EDF-OPR-MN",
            EdfPolicy,
            _opr_mn,
            False,
            "Baseline from [22]: optimal partitioning rule, simultaneous "
            "allocation of n_min nodes (IITs wasted); EDF order.",
        ),
        _spec(
            "FIFO-OPR-MN",
            FifoPolicy,
            _opr_mn,
            False,
            "Baseline from [22] under FIFO ordering.",
        ),
        _spec(
            "EDF-OPR-AN",
            EdfPolicy,
            _opr_an,
            False,
            "All-nodes OPR baseline (Section 5: rarely deployed in practice).",
        ),
        _spec(
            "FIFO-OPR-AN",
            FifoPolicy,
            _opr_an,
            False,
            "All-nodes OPR baseline under FIFO ordering.",
        ),
        _spec(
            "EDF-DLT-AN",
            EdfPolicy,
            _dlt_an,
            True,
            "Extension: DLT-IIT partitioning over all N nodes (ablation).",
        ),
        _spec(
            "FIFO-DLT-AN",
            FifoPolicy,
            _dlt_an,
            True,
            "Extension: all-nodes DLT-IIT under FIFO ordering (ablation).",
        ),
    )
}


def make_algorithm(
    name: str,
    *,
    rng: np.random.Generator | None = None,
    node_order: str = "availability",
) -> AlgorithmInstance:
    """Instantiate a named algorithm.

    Parameters
    ----------
    name:
        One of :data:`ALGORITHMS` (e.g. ``"EDF-DLT"``); case-sensitive,
        exactly as the paper spells it.
    rng:
        Random generator for stochastic algorithms (User-Split's per-task
        node request).  Ignored by deterministic algorithms; required
        seeding discipline is the caller's (the experiment runner derives
        it from the run seed).
    node_order:
        Tie-breaking among simultaneously available nodes (see
        :data:`repro.core.partition.NODE_ORDERS`); the default reproduces
        the paper's (availability, node id) ordering bit-for-bit.

    Raises
    ------
    KeyError
        For unknown names — the message lists the registry.
    """
    try:
        spec = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return AlgorithmInstance(
        spec=spec,
        policy=spec.policy_factory(),
        partitioner=spec.partitioner_factory(rng, node_order),
    )


def algorithm_names() -> list[str]:
    """All registered algorithm names, sorted."""
    return sorted(ALGORITHMS)
