"""Scheduling policies (Decision #1 of the framework): EDF and FIFO.

The first module of the three-module framework of [22] decides the order in
which the schedulability test considers tasks.  The paper evaluates two
policies:

* **EDF** — earliest (absolute) deadline first;
* **FIFO** — first in, first out by arrival time.

Both are implemented as stable sorts with a deterministic ``task_id``
tie-break, so replanning the same queue always yields the same order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.core.task import DivisibleTask

__all__ = ["EdfPolicy", "FifoPolicy", "SchedulingPolicy"]


class SchedulingPolicy(ABC):
    """Total order over tasks used by the schedulability test."""

    #: Short tag used in algorithm names ("EDF", "FIFO").
    name: str = "abstract"

    @abstractmethod
    def key(self, task: DivisibleTask) -> tuple[float, float, int]:
        """Sort key; lower sorts earlier.  Must be a total order."""

    def order(self, tasks: Iterable[DivisibleTask]) -> list[DivisibleTask]:
        """Return tasks sorted by :meth:`key` (stable)."""
        return sorted(tasks, key=self.key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EdfPolicy(SchedulingPolicy):
    """Earliest Deadline First: order by absolute deadline ``A + D``.

    Ties broken by arrival time then task id, making the order total and
    replay-deterministic.
    """

    name = "EDF"

    def key(self, task: DivisibleTask) -> tuple[float, float, int]:
        return (task.absolute_deadline, task.arrival, task.task_id)


class FifoPolicy(SchedulingPolicy):
    """First In First Out: order by arrival time.

    Ties broken by task id (arrival order), making the order total.
    """

    name = "FIFO"

    def key(self, task: DivisibleTask) -> tuple[float, float, int]:
        return (task.arrival, 0.0, task.task_id)


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy from its tag (``"EDF"`` or ``"FIFO"``)."""
    normalized = name.strip().upper()
    if normalized == "EDF":
        return EdfPolicy()
    if normalized == "FIFO":
        return FifoPolicy()
    raise ValueError(f"unknown scheduling policy: {name!r} (want 'EDF' or 'FIFO')")
