"""Task model: aperiodic, arbitrarily divisible real-time tasks.

Section 3 of the paper: each aperiodic task ``T_i`` is a single invocation
``(A_i, sigma_i, D_i)`` — arrival time, total data size and *relative*
deadline.  The absolute deadline is ``A_i + D_i``.  Tasks are independent
(arbitrarily divisible loads have no precedence constraints), and output
data transfer is not modelled (negligible next to input size).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.core.errors import InvalidTaskError

__all__ = ["DivisibleTask", "TaskOutcome", "TaskRecord"]


@dataclass(frozen=True, slots=True)
class DivisibleTask:
    """One arbitrarily divisible real-time task ``T = (A, sigma, D)``.

    Parameters
    ----------
    task_id:
        Unique, monotonically increasing identifier (arrival order).
    arrival:
        Arrival time ``A`` (absolute simulation time, >= 0).
    sigma:
        Total data size ``sigma`` (> 0), in workload units; processing one
        unit costs ``Cps`` time on a node and ``Cms`` time on a link.
    deadline:
        Relative deadline ``D`` (> 0).

    Notes
    -----
    The tuple is immutable: scheduling state lives in :class:`TaskRecord`
    (owned by the scheduler), never on the task itself, so a single task
    set can be replayed against many algorithms.
    """

    task_id: int
    arrival: float
    sigma: float
    deadline: float

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise InvalidTaskError(f"task_id must be >= 0, got {self.task_id}")
        if not math.isfinite(self.arrival) or self.arrival < 0:
            raise InvalidTaskError(
                f"arrival must be finite and >= 0, got {self.arrival}"
            )
        if not math.isfinite(self.sigma) or self.sigma <= 0:
            raise InvalidTaskError(f"sigma must be finite and > 0, got {self.sigma}")
        if not math.isfinite(self.deadline) or self.deadline <= 0:
            raise InvalidTaskError(
                f"deadline must be finite and > 0, got {self.deadline}"
            )

    @property
    def absolute_deadline(self) -> float:
        """Absolute deadline ``A + D``."""
        return self.arrival + self.deadline


class TaskOutcome(enum.Enum):
    """Terminal state of a task as seen by the admission controller.

    ``CANCELLED`` marks an admitted task withdrawn by its submitter before
    its data hit the wire (only possible while it is still waiting; the
    live admission service exposes this through its ``cancel`` request).
    Offline replays never produce it, so the paper's accept/reject
    accounting is untouched.

    ``DISPLACED`` marks an admitted task knocked out by a fault (its
    nodes crashed, or the post-fault re-plan could no longer fit it) that
    the re-admission pass could not place again.  It is the honest
    terminal state for fault victims: the admission guarantee was broken
    by the environment, and the record says so instead of faking a
    completion.  Fault-free runs never produce it.
    """

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    CANCELLED = "cancelled"
    DISPLACED = "displaced"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class TaskRecord:
    """Mutable per-task bookkeeping owned by the scheduler / metrics.

    ``est_completion`` is the admission-time estimate the guarantee is made
    against; ``actual_completion`` is what the discrete-event executor
    measured.  Theorem 4 guarantees ``actual_completion <= est_completion``
    for every started task.
    """

    task: DivisibleTask
    outcome: TaskOutcome
    est_completion: float | None = None
    actual_completion: float | None = None
    n_nodes: int | None = None
    node_ids: tuple[int, ...] = field(default=())
    started_at: float | None = None

    @property
    def deadline_met(self) -> bool | None:
        """Whether the executed task met its absolute deadline.

        ``None`` until the task actually completed (or for rejected tasks).
        """
        if self.actual_completion is None:
            return None
        return self.actual_completion <= self.task.absolute_deadline + 1e-9

    @property
    def completion_slack(self) -> float | None:
        """Estimate minus actual completion (>= 0 by Theorem 4)."""
        if self.actual_completion is None or self.est_completion is None:
            return None
        return self.est_completion - self.actual_completion
