"""Node reservation state: the ``Release(node_k)`` model of Figure 2.

The schedulability test reasons about each node through a single scalar —
the time the node is released by the task currently holding it.  Idle gaps
*before* a planned allocation are deliberately **not** tracked: a node
assigned to a future task is considered unavailable from its previous
release onward, which is exactly the Inserted-Idle-Time inefficiency the
paper's partitioner then exploits (and the OPR baseline suffers from).

Only *started* (dispatched) tasks hold committed reservations; tasks still
in the waiting queue are re-planned from scratch on every arrival, per the
pseudocode's ``TempTaskList ← NewTask + TaskWaitingQueue``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.errors import InvalidParameterError, ScheduleConsistencyError

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = ["NodeReservations"]


class NodeReservations:
    """Per-node next-free times for a cluster of ``N`` nodes.

    The structure is intentionally tiny — a NumPy vector plus invariant
    checks — because the schedulability test copies it once per admission
    attempt (``TempSchedule`` in Figure 2).
    """

    __slots__ = ("_release", "_owner", "_epoch")

    #: Owner value meaning "nobody holds this node".
    NO_OWNER = -1

    def __init__(self, nodes: int) -> None:
        if nodes < 1:
            raise InvalidParameterError(f"nodes must be >= 1, got {nodes}")
        self._release = np.zeros(nodes, dtype=np.float64)
        self._owner = np.full(nodes, self.NO_OWNER, dtype=np.int64)
        self._epoch = 0

    # -- construction ----------------------------------------------------
    @classmethod
    def from_times(cls, times: Iterable[float]) -> "NodeReservations":
        """Build from explicit next-free times (tests / ablations)."""
        arr = np.asarray(list(times), dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise InvalidParameterError("times must be a non-empty 1-D sequence")
        obj = cls(int(arr.size))
        obj._release[:] = arr
        return obj

    def copy(self) -> "NodeReservations":
        """Deep copy for temp planning (cheap: two small ndarrays)."""
        clone = NodeReservations(self.nodes)
        clone._release[:] = self._release
        clone._owner[:] = self._owner
        clone._epoch = self._epoch
        return clone

    # -- queries ----------------------------------------------------------
    @property
    def nodes(self) -> int:
        """Cluster size ``N``."""
        return int(self._release.size)

    @property
    def epoch(self) -> int:
        """Availability epoch: bumped by every mutation of the hold vector.

        The optimized admission engines
        (:mod:`repro.core.fastpath` / :mod:`repro.core.batchpath`) key
        their prefix checkpoints on ``(identity, epoch)``: a checkpoint
        taken against this object at epoch ``e`` is trivially valid while
        the epoch still reads ``e``, because :meth:`assign` (dispatch),
        :meth:`release_early` (eager release / actual completion) and
        :meth:`floor_release` (fault outage) each advance it.  Fault
        windows, displacement and re-admission therefore invalidate
        checkpoints through the same counter without any engine-specific
        hook.
        """
        return self._epoch

    @property
    def release_times(self) -> "NDArray[np.float64]":
        """Read-only view of raw next-free times (by node id)."""
        view = self._release.view()
        view.flags.writeable = False
        return view

    def availability(self, now: float) -> "NDArray[np.float64]":
        """``max(Release(node_k), now)`` per node — Figure 2's ``AN(t)`` basis."""
        return np.maximum(self._release, now)

    def available_count(self, t: float) -> int:
        """``AN(t)`` — number of nodes free at (or before) time ``t``."""
        return int(np.count_nonzero(self._release <= t))

    def earliest_time_for(self, n: int, now: float) -> float:
        """Earliest time ``t`` at which ``AN(t) >= n`` nodes are available."""
        if not 1 <= n <= self.nodes:
            raise InvalidParameterError(
                f"need 1 <= n <= {self.nodes} nodes, got {n}"
            )
        avail = np.sort(self.availability(now), kind="stable")
        return float(avail[n - 1])

    # -- mutation ---------------------------------------------------------
    def assign(
        self, node_ids: Iterable[int], until: float, owner: int | None = None
    ) -> None:
        """Hold ``node_ids`` until ``until`` (their new release time).

        ``owner`` (a task id) records who holds the node last; it gates
        :meth:`release_early` so a finished task can never shrink a hold
        that has since been handed to a successor.

        Raises
        ------
        ScheduleConsistencyError
            If an assignment would move a node's release time *backwards* —
            the planner only ever extends holds (completion estimates are
            beyond availability by construction), so a regression means a
            scheduling bug.
        """
        ids = np.asarray(list(node_ids), dtype=np.intp)
        if ids.size == 0:
            raise InvalidParameterError("assign() needs at least one node id")
        if np.any(ids < 0) or np.any(ids >= self.nodes):
            raise InvalidParameterError(
                f"node ids out of range [0, {self.nodes}): {ids.tolist()}"
            )
        current = self._release[ids]
        if np.any(until < current - 1e-9):
            raise ScheduleConsistencyError(
                "assignment would shrink a node hold: "
                f"until={until} < current release {current.max()}"
            )
        self._release[ids] = until
        self._owner[ids] = self.NO_OWNER if owner is None else owner
        self._epoch += 1

    def release_early(
        self,
        node_ids: Iterable[int],
        times: Iterable[float],
        owner: int | None = None,
    ) -> None:
        """Shrink holds to actual completion times (eager-release ablation).

        The default (paper) bookkeeping keeps a node reserved until the
        *estimated* completion even though Theorem 4 says the actual finish
        is earlier.  The eager-release ablation hands the node back at the
        actual finish instead; this method applies that shrink (it never
        extends a hold).

        With ``owner`` given, nodes whose hold has since been re-assigned
        to a different task are left untouched — otherwise a completing
        task would tear down its successor's reservation and let a third
        task double-book the node.
        """
        ids = np.asarray(list(node_ids), dtype=np.intp)
        t = np.asarray(list(times), dtype=np.float64)
        if ids.shape != t.shape:
            raise InvalidParameterError("node_ids and times must have equal length")
        if np.any(ids < 0) or np.any(ids >= self.nodes):
            raise InvalidParameterError(
                f"node ids out of range [0, {self.nodes}): {ids.tolist()}"
            )
        if owner is not None:
            mask = self._owner[ids] == owner
            ids, t = ids[mask], t[mask]
            if ids.size == 0:
                return
        self._release[ids] = np.minimum(self._release[ids], t)
        self._owner[ids] = self.NO_OWNER
        self._epoch += 1

    def floor_release(self, node_ids: Iterable[int], until: float) -> None:
        """Raise holds to at least ``until`` (a fault outage).

        A crashed node cannot be handed to anyone before it recovers, so
        its release time is *floored* at the recovery instant.  The floor
        is monotone (``max`` with the current hold, so overlapping
        outages compose to the latest recovery) and ownerless: it belongs
        to the environment, not to any task, and clearing the owner means
        no completing task's :meth:`release_early` can ever undercut it.
        Later assignments extend past it normally — admission plans start
        at or after availability, which now includes the floor.
        """
        ids = np.asarray(list(node_ids), dtype=np.intp)
        if ids.size == 0:
            return
        if np.any(ids < 0) or np.any(ids >= self.nodes):
            raise InvalidParameterError(
                f"node ids out of range [0, {self.nodes}): {ids.tolist()}"
            )
        self._release[ids] = np.maximum(self._release[ids], until)
        self._owner[ids] = self.NO_OWNER
        self._epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeReservations({self._release.tolist()})"
