"""The schedulability test of Figure 2.

When a task arrives, the head node checks — *before* accepting — that the
new task plus every task still in the waiting queue can all meet their
deadlines.  The test walks the tasks in policy order (EDF or FIFO),
tentatively placing each one with the configured partitioner against a
scratch copy of the node-release state; one infeasible placement fails the
whole test and the **new** task is rejected (previously admitted tasks keep
their guarantees — the committed plans are only replaced when the test
passes).

Rejection, per the paper, models the cluster RMS negotiating a new deadline
with the client; the simulator just counts it (Task Reject Ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cluster import ClusterProfile
from repro.core.partition import Partitioner, PlacementPlan
from repro.core.policies import SchedulingPolicy
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask

__all__ = ["AdmissionDecision", "SchedulabilityTest"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    ``accepted`` is ``True`` iff every task in ``NewTask + WaitingQueue``
    got a feasible plan; ``plans`` then holds the fresh ``TempSchedule``
    (task_id → plan) to commit.  On rejection ``plans`` is empty and
    ``failed_task_id`` names the first task the walk could not place (not
    necessarily the new one — under EDF an urgent newcomer can render a
    previously admitted-but-waiting task unplaceable, which also rejects
    the newcomer and leaves the committed schedule untouched).
    """

    accepted: bool
    plans: dict[int, PlacementPlan]
    failed_task_id: int | None = None


class SchedulabilityTest:
    """Boolean Schedulability-Test(NewTask) from Figure 2, parameterized.

    Decision #1 (policy) and Decision #2/#3 (partitioning + node count) are
    injected, so the same walk generates all the paper's algorithms.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        partitioner: Partitioner,
        cluster: ClusterProfile,
    ) -> None:
        self.policy = policy
        self.partitioner = partitioner
        self.cluster = cluster

    def try_admit(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> AdmissionDecision:
        """Run the test for ``new_task`` against the committed state.

        Parameters
        ----------
        new_task:
            The arriving task (its arrival time is ``now``).
        waiting:
            Tasks admitted earlier but not yet started (re-plannable).
        reservations:
            Committed next-free times from *started* tasks only.  Never
            mutated — the walk works on a copy.
        now:
            Current simulation time.
        """
        temp = reservations.copy()
        ordered = self.policy.order([*waiting, new_task])
        plans: dict[int, PlacementPlan] = {}
        for task in ordered:
            avail = temp.availability(now)
            plan = self.partitioner.place(task, avail, self.cluster, now)
            if plan is None:
                return AdmissionDecision(
                    accepted=False, plans={}, failed_task_id=task.task_id
                )
            temp.assign(plan.node_ids, plan.est_completion)
            plans[task.task_id] = plan
        return AdmissionDecision(accepted=True, plans=plans)
