"""The online dynamic scheduler running on the head node.

Pure scheduling logic, engine-agnostic: the discrete-event driver
(:mod:`repro.sim.cluster_sim`) feeds it arrival / start instants and turns
its answers into events.  Keeping the logic free of event plumbing makes
every admission path unit-testable with plain function calls.

Life cycle of a task
--------------------
1. **Arrival** — :meth:`ClusterScheduler.on_arrival` runs the
   schedulability test (Figure 2).  Rejected tasks are final.  On
   acceptance the fresh ``TempSchedule`` *replaces* the committed plans of
   every still-waiting task (the test re-plans the whole queue), and the
   plan version is bumped so start events scheduled against older plans
   become no-ops.
2. **Start** — when a committed plan's start time arrives,
   :meth:`ClusterScheduler.on_start` locks the task: it leaves the waiting
   queue, its nodes are reserved until the *estimated* completion, and the
   caller receives the plan to execute.  From this point the task is no
   longer re-planned (its data is on the wire).
3. **Completion** — :meth:`ClusterScheduler.on_complete` records the actual
   completion measured by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.admission import AdmissionDecision
from repro.core.cluster import ClusterProfile
from repro.core.errors import ScheduleConsistencyError
from repro.core.fastpath import make_admission_test
from repro.core.partition import Partitioner, PlacementPlan
from repro.core.policies import SchedulingPolicy
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord
from repro.obs import Observability
from repro.obs.metrics import DEPTH_BUCKETS

__all__ = ["ClusterScheduler", "SchedulerStats", "StartDirective"]


@dataclass(frozen=True, slots=True)
class StartDirective:
    """Instruction to the driver: fire ``on_start`` at ``start_time``.

    Carries the plan version so stale directives (superseded by a later
    re-plan) are recognised and dropped.
    """

    task_id: int
    start_time: float
    version: int


class SchedulerStats:
    """Counters the scheduler maintains as it goes.

    The last three only move when fault injection is active:
    ``displaced`` counts running tasks torn down by a fault,
    ``readmitted`` counts successful post-fault re-admissions (of both
    displaced and formerly-waiting tasks), and ``fault_missed`` counts
    tasks the post-fault re-plan could no longer place — honest losses,
    terminal outcome :attr:`~repro.core.task.TaskOutcome.DISPLACED`.

    Since the :mod:`repro.obs` migration the counts live on a
    :class:`~repro.obs.metrics.MetricsRegistry` (as
    ``scheduler_<name>_total`` counters); the attributes here are thin
    read/write views onto those instruments, so the constructor
    signature, ``getattr`` access, augmented assignment and equality all
    behave exactly as the former plain-int dataclass did (the serve wire
    protocol and the test suite rely on it).
    """

    #: Counter fields, in wire order (mirrored by the serve protocol).
    FIELDS = (
        "arrivals",
        "accepted",
        "rejected",
        "admission_tests",
        "replanned_tasks",
        "cancelled",
        "displaced",
        "readmitted",
        "fault_missed",
    )

    __slots__ = ("_counters",)

    def __init__(
        self,
        arrivals: int = 0,
        accepted: int = 0,
        rejected: int = 0,
        admission_tests: int = 0,
        replanned_tasks: int = 0,
        cancelled: int = 0,
        displaced: int = 0,
        readmitted: int = 0,
        fault_missed: int = 0,
        *,
        registry=None,
    ) -> None:
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        values = (
            arrivals,
            accepted,
            rejected,
            admission_tests,
            replanned_tasks,
            cancelled,
            displaced,
            readmitted,
            fault_missed,
        )
        self._counters = {}
        for name, value in zip(self.FIELDS, values):
            counter = registry.counter(
                f"scheduler_{name}_total", f"Scheduler {name} count."
            )
            if value:
                counter.inc(int(value))
            self._counters[name] = counter

    @property
    def reject_ratio(self) -> float:
        """Task Reject Ratio — the paper's headline metric."""
        if self.arrivals == 0:
            return 0.0
        return self.rejected / self.arrivals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchedulerStats):
            return NotImplemented
        return all(
            self._counters[f].value == other._counters[f].value
            for f in self.FIELDS
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={self._counters[f].value}" for f in self.FIELDS)
        return f"SchedulerStats({inner})"


def _stats_view(name: str) -> property:
    """A read/write property exposing one backing counter as an int."""

    def fget(self: SchedulerStats) -> int:
        return self._counters[name].value

    def fset(self: SchedulerStats, value: int) -> None:
        self._counters[name].value = int(value)

    fget.__doc__ = f"Thin view of the ``scheduler_{name}_total`` counter."
    return property(fget, fset)


for _name in SchedulerStats.FIELDS:
    setattr(SchedulerStats, _name, _stats_view(_name))
del _name


class ClusterScheduler:
    """Head-node admission control + dispatch bookkeeping.

    Parameters
    ----------
    cluster:
        Static cluster description.
    policy:
        Task ordering (EDF / FIFO).
    partitioner:
        Partitioning strategy (DLT-IIT / OPR / User-Split).
    eager_release:
        Ablation flag: hand nodes back at *actual* completion instead of
        the estimate (see DESIGN.md, S19).  Default ``False`` = paper
        bookkeeping.
    admission_engine:
        ``"fast"`` (default) runs the schedulability test through the
        optimized engine of :mod:`repro.core.fastpath`; ``"reference"``
        through the original walk.  Decisions are bit-identical either way
        (asserted by the property suite) — the switch exists for
        benchmarking and verification.
    obs:
        Observability bundle (:class:`repro.obs.Observability`).  When
        omitted a private registry-only bundle is created, so the
        counter surface (``SchedulerStats`` views, plan-cache hit rates,
        queue-depth histogram) always exists; passing one wires the
        scheduler, its admission engine and its stats onto the caller's
        registry and (optional) tracer.  Instrumentation never perturbs
        decisions — see the :mod:`repro.obs` determinism contract.
    """

    def __init__(
        self,
        cluster: ClusterProfile,
        policy: SchedulingPolicy,
        partitioner: Partitioner,
        *,
        eager_release: bool = False,
        admission_engine: str = "fast",
        obs: Observability | None = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.partitioner = partitioner
        self.eager_release = eager_release
        self.obs = obs if obs is not None else Observability()
        self.test = make_admission_test(
            policy, partitioner, cluster, engine=admission_engine, obs=self.obs
        )
        self.reservations = NodeReservations(cluster.nodes)
        self.waiting: dict[int, DivisibleTask] = {}
        self.committed_plans: dict[int, PlacementPlan] = {}
        self.running: dict[int, PlacementPlan] = {}
        self.records: dict[int, TaskRecord] = {}
        self.stats = SchedulerStats(registry=self.obs.registry)
        self._queue_depth = self.obs.registry.histogram(
            "admission_queue_depth",
            DEPTH_BUCKETS,
            "Waiting-queue depth observed at each admission test.",
        )
        self.plan_version = 0
        self._last_event_time = 0.0

    # -- event handlers ---------------------------------------------------
    def on_arrival(
        self, task: DivisibleTask, now: float
    ) -> tuple[AdmissionDecision, list[StartDirective]]:
        """Admit or reject ``task`` arriving at ``now``.

        Returns the decision plus the start directives for the *new*
        committed schedule (one per waiting task, including the newcomer
        when accepted).  The driver schedules them all; version tags void
        the directives of any previously committed plans.
        """
        self._check_time(now)
        if task.task_id in self.records:
            raise ScheduleConsistencyError(
                f"task {task.task_id} arrived twice"
            )
        self.stats.arrivals += 1
        self.stats.admission_tests += 1
        self._queue_depth.observe(float(len(self.waiting)))
        self.partitioner.on_task_arrival(task, self.cluster)

        decision = self.test.try_admit(
            task, list(self.waiting.values()), self.reservations, now
        )
        if not decision.accepted:
            self.stats.rejected += 1
            self.records[task.task_id] = TaskRecord(
                task=task, outcome=TaskOutcome.REJECTED
            )
            return decision, []

        self.stats.accepted += 1
        self.waiting[task.task_id] = task
        self.records[task.task_id] = TaskRecord(
            task=task, outcome=TaskOutcome.ACCEPTED
        )
        self.stats.replanned_tasks += max(len(self.waiting) - 1, 0)
        self.plan_version += 1
        self.committed_plans = dict(decision.plans)
        directives = [
            StartDirective(
                task_id=tid,
                start_time=plan.start_time,
                version=self.plan_version,
            )
            for tid, plan in self.committed_plans.items()
        ]
        return decision, directives

    def on_start(
        self, task_id: int, version: int, now: float
    ) -> PlacementPlan | None:
        """Lock a waiting task and hand its plan to the executor.

        Returns ``None`` when the directive is stale (the plan was replaced
        by a later admission) — the driver simply drops it.
        """
        self._check_time(now)
        if version != self.plan_version or task_id not in self.waiting:
            return None
        plan = self.committed_plans.pop(task_id)
        task = self.waiting.pop(task_id)
        if plan.start_time > now + 1e-9:
            raise ScheduleConsistencyError(
                f"task {task_id} started at {now} before its plan time "
                f"{plan.start_time}"
            )
        self.reservations.assign(plan.node_ids, plan.est_completion, owner=task_id)
        self.running[task_id] = plan
        record = self.records[task_id]
        record.started_at = now
        record.est_completion = plan.est_completion
        record.n_nodes = plan.n
        record.node_ids = plan.node_ids
        _ = task  # task object re-exposed via the record
        return plan

    def on_complete(
        self,
        task_id: int,
        actual_completion: float,
        per_node_completion: tuple[float, ...] | None = None,
    ) -> TaskRecord:
        """Record the executor-measured completion of a running task."""
        if task_id not in self.running:
            raise ScheduleConsistencyError(
                f"completion for task {task_id} which is not running"
            )
        plan = self.running.pop(task_id)
        record = self.records[task_id]
        record.actual_completion = actual_completion
        if self.eager_release:
            ends = (
                per_node_completion
                if per_node_completion is not None
                else (actual_completion,) * plan.n
            )
            self.reservations.release_early(plan.node_ids, ends, owner=task_id)
        self._last_event_time = max(self._last_event_time, actual_completion)
        return record

    def cancel(self, task_id: int) -> bool:
        """Withdraw an admitted task that has not started transmitting.

        Returns ``True`` when the task was waiting and is now cancelled:
        it leaves the waiting queue, its committed plan is dropped, and its
        record's outcome becomes :attr:`TaskOutcome.CANCELLED`.  Any start
        directive scheduled for it goes stale (``on_start`` drops
        directives whose task is no longer waiting).  The rest of the
        committed schedule is *not* re-planned — the remaining plans were
        feasible with the cancelled task still occupying its slot, so they
        stay feasible (merely conservative) without it.

        Returns ``False`` for anything else — unknown, rejected, already
        started, completed or already cancelled tasks — so callers can
        report "too late to cancel" without a pre-flight status check.
        """
        task = self.waiting.pop(task_id, None)
        if task is None:
            return False
        self.committed_plans.pop(task_id, None)
        self.records[task_id].outcome = TaskOutcome.CANCELLED
        self.stats.cancelled += 1
        return True

    # -- fault displacement ------------------------------------------------
    def displace(
        self,
        task_id: int,
        node_ids: tuple[int, ...],
        release_times: tuple[float, ...],
        now: float,
    ) -> TaskRecord:
        """Tear down a *running* task hit by a fault.

        The executor (which owns the physical chunk timeline) decides the
        honest per-node rollback times — how far each node actually got
        before the fault — and passes them here; the scheduler hands the
        nodes back at those times (owner-gated, exactly like an eager
        release) and forgets the task ever ran.  The record keeps its
        ``ACCEPTED`` outcome for the moment: the driver immediately tries
        :meth:`readmit`, which settles it either way.
        """
        self._check_time(now)
        if task_id not in self.running:
            raise ScheduleConsistencyError(
                f"displacement of task {task_id} which is not running"
            )
        self.running.pop(task_id)
        self.reservations.release_early(node_ids, release_times, owner=task_id)
        record = self.records[task_id]
        record.est_completion = None
        record.started_at = None
        record.n_nodes = None
        record.node_ids = ()
        self.stats.displaced += 1
        return record

    def clear_committed(self) -> list[DivisibleTask]:
        """Empty the waiting queue + committed plans for a fault re-plan.

        Returns the formerly waiting tasks (insertion order).  Every
        outstanding :class:`StartDirective` goes stale the moment the next
        re-admission bumps the plan version; the driver additionally
        cancels their heap entries outright.  Records and counters are
        untouched — each task's fate is settled by :meth:`readmit`.
        """
        tasks = list(self.waiting.values())
        self.waiting.clear()
        self.committed_plans.clear()
        return tasks

    def readmit(
        self, task: DivisibleTask, now: float
    ) -> list[StartDirective] | None:
        """Re-run admission for a fault-displaced (or re-queued) task.

        Same walk as :meth:`on_arrival` with three deliberate
        differences: the task keeps its original arrival and deadline (a
        late re-admission is an honest deadline miss, never a silent
        success), ``arrivals``/``accepted``/``rejected`` do not move (the
        task already arrived once), and the partitioner's per-arrival
        hook is *not* re-run — a stochastic partitioner (User-Split)
        reuses the node request it drew at first arrival, keeping the
        RNG stream unperturbed.

        Returns the new start directives on success; ``None`` when the
        post-fault schedule cannot fit the task, in which case its record
        flips to :attr:`~repro.core.task.TaskOutcome.DISPLACED` and
        ``fault_missed`` increments.
        """
        self._check_time(now)
        self.stats.admission_tests += 1
        self._queue_depth.observe(float(len(self.waiting)))
        decision = self.test.try_admit(
            task, list(self.waiting.values()), self.reservations, now
        )
        record = self.records[task.task_id]
        if not decision.accepted:
            record.outcome = TaskOutcome.DISPLACED
            self.stats.fault_missed += 1
            return None
        record.outcome = TaskOutcome.ACCEPTED
        self.waiting[task.task_id] = task
        self.stats.readmitted += 1
        self.stats.replanned_tasks += max(len(self.waiting) - 1, 0)
        self.plan_version += 1
        self.committed_plans = dict(decision.plans)
        return [
            StartDirective(
                task_id=tid,
                start_time=plan.start_time,
                version=self.plan_version,
            )
            for tid, plan in self.committed_plans.items()
        ]

    # -- introspection ----------------------------------------------------
    @property
    def waiting_count(self) -> int:
        """Number of admitted-but-not-started tasks."""
        return len(self.waiting)

    @property
    def running_count(self) -> int:
        """Number of started-but-not-completed tasks."""
        return len(self.running)

    def task_state(self, task_id: int) -> str:
        """Life-cycle state of a task id, as a stable lowercase string.

        One of ``"unknown"`` (never arrived here), ``"rejected"``,
        ``"cancelled"``, ``"displaced"`` (fault victim that could not be
        re-admitted), ``"waiting"`` (admitted, not started), ``"running"``
        (started, not completed) or ``"completed"``.
        """
        record = self.records.get(task_id)
        if record is None:
            return "unknown"
        if record.outcome is TaskOutcome.REJECTED:
            return "rejected"
        if record.outcome is TaskOutcome.CANCELLED:
            return "cancelled"
        if record.outcome is TaskOutcome.DISPLACED:
            return "displaced"
        if task_id in self.waiting:
            return "waiting"
        if task_id in self.running:
            return "running"
        return "completed"

    def _check_time(self, now: float) -> None:
        if now < self._last_event_time - 1e-9:
            raise ScheduleConsistencyError(
                f"time ran backwards: {now} < {self._last_event_time}"
            )
        self._last_event_time = max(self._last_event_time, now)
