"""Fast admission engine: the Figure-2 schedulability test, optimized.

:class:`FastSchedulabilityTest` is a drop-in replacement for
:class:`repro.core.admission.SchedulabilityTest` that produces **bit-identical**
:class:`~repro.core.admission.AdmissionDecision` streams while doing far less
work per call.  The reference implementation stays exactly where it was — the
property suite (``tests/test_fastpath_properties.py``) replays random
scenarios through both engines and asserts record-by-record equality.

Why this module exists
----------------------
Every metric in the paper flows through the schedulability test, and the test
is the system's hot path cubed: each arrival re-plans the *entire* waiting
queue, each re-plan scans candidate node counts, and the fleet's probing
routers multiply that by one full admission test per member cluster per task.
Four coordinated optimizations attack that cost without changing a single
output bit:

1. **Per-task plan memoization** — a placement depends only on the task, the
   availability vector the walk hands it, and (for the paper's ``ñ_min`` /
   ``n_min`` rules) the admission-test time through the node-count bound.
   The engine caches each task's last computed plan keyed on the raw
   availability bytes and revalidates the cheap scalar node-count bound; when
   the queue prefix ahead of a newcomer's EDF slot is undisturbed (and under
   load it almost always is), the whole prefix replays as cache hits.  The
   same mechanism makes a fleet probe followed by a routed submission cost
   one test instead of two.
2. **Specialized placement kernels** — the DLT-IIT and OPR placement paths
   are re-implemented with the *same arithmetic operations in the same
   order* as :func:`repro.core.het_model.build_model` /
   :func:`repro.core.dlt.het_alphas` (so results are bitwise equal) but
   without the per-call validation, intermediate dataclasses and redundant
   array materializations of the reference path.
3. **Monotonicity-aware candidate search** — the ``fixed_point_node_count``
   ablation's ``k = 1..N`` scan exploits that the node-count bound is
   non-decreasing in ``k``: the scan starts at the ``ñ_min`` lower bound,
   jumps over candidates that cannot satisfy ``n_req <= k``, skips repeated
   ``n_req`` values whose placement already failed, and shares one prefix
   cumprod across all heterogeneous candidate evaluations
   (:class:`_SharedPrefixAlphas`) instead of recomputing the recurrence per
   ``k``.
4. **Scratch buffers** — the walk works on two preallocated vectors instead
   of building a :class:`~repro.core.reservations.NodeReservations` copy and
   fresh availability arrays per task.

Partitioners the engine does not specialize (multi-round plans, third-party
strategies) and stochastic re-draw configurations (User-Split with
``redraw_on_replan=True``, whose RNG stream consumption must match call for
call) transparently fall back to the reference implementation, so the engine
is always safe to enable.  :func:`make_admission_test` is the factory the
scheduler uses; ``engine="reference"`` selects the original implementation.
"""

from __future__ import annotations

import math
from bisect import insort
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core import dlt
from repro.core.admission import AdmissionDecision, SchedulabilityTest
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.core.partition import (
    DltIitPartitioner,
    OprPartitioner,
    Partitioner,
    PlacementPlan,
    UserSplitPartitioner,
    feasible_by,
)
from repro.core.policies import SchedulingPolicy
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = [
    "ADMISSION_ENGINES",
    "FastSchedulabilityTest",
    "make_admission_test",
    "validate_admission_engine",
]

#: Valid admission-engine names: ``"fast"`` (this module, the default),
#: ``"batch"`` (:mod:`repro.core.batchpath`, the vectorized engine) and
#: ``"reference"`` (the original :class:`SchedulabilityTest`).  All three
#: produce bit-identical decision streams.
ADMISSION_ENGINES: tuple[str, ...] = ("fast", "batch", "reference")


def validate_admission_engine(engine: str) -> str:
    """Return ``engine`` if it names an admission engine, else raise."""
    if engine not in ADMISSION_ENGINES:
        raise InvalidParameterError(
            f"unknown admission engine {engine!r}; "
            f"valid: {', '.join(ADMISSION_ENGINES)}"
        )
    return engine


def make_admission_test(
    policy: SchedulingPolicy,
    partitioner: Partitioner,
    cluster: ClusterProfile,
    *,
    engine: str = "fast",
    obs=None,
) -> "SchedulabilityTest | FastSchedulabilityTest":
    """Build the admission test for a scheduler.

    ``engine="fast"`` (default) returns the optimized engine of this
    module; ``engine="batch"`` the batch-vectorized engine of
    :mod:`repro.core.batchpath`; ``engine="reference"`` the original
    walk.  All three produce bit-identical decisions — the choice only
    trades speed against simplicity.  ``obs`` (an
    :class:`repro.obs.Observability`) wires the optimized engines'
    plan-cache counters and admission spans onto the caller's registry
    and tracer; the reference engine carries no instrumentation (it is
    the untouched ground truth) and ignores it.
    """
    validate_admission_engine(engine)
    if engine == "reference":
        return SchedulabilityTest(policy, partitioner, cluster)
    if engine == "batch":
        from repro.core.batchpath import BatchSchedulabilityTest

        return BatchSchedulabilityTest(policy, partitioner, cluster, obs=obs)
    return FastSchedulabilityTest(policy, partitioner, cluster, obs=obs)


#: Shared ``alphas`` vector for single-node placements (``het_alphas`` on one
#: node returns ``np.ones(1)``; the value is constant, so one frozen array
#: serves every caller).
_ONES1 = np.ones(1)
_ONES1.flags.writeable = False

#: Sentinel marking "node-count token not precomputed" in placement calls.
_UNSET = object()


def _trusted_plan(
    task: DivisibleTask,
    method: str,
    node_ids: tuple[int, ...],
    release_times: tuple[float, ...],
    dispatch_releases: tuple[float, ...],
    alphas: tuple[float, ...],
    est_completion: float,
) -> PlacementPlan:
    """Build a :class:`PlacementPlan` whose invariants hold by construction.

    The kernels take node ids from an argsort prefix (unique by
    construction) and all vectors from the same prefix length, so the
    ``__post_init__`` validation pass is redundant on this path.  Field
    values are exactly what the reference constructor would store, so
    plans compare equal across engines.
    """
    plan = PlacementPlan.__new__(PlacementPlan)
    set_ = object.__setattr__
    set_(plan, "task", task)
    set_(plan, "method", method)
    set_(plan, "node_ids", node_ids)
    set_(plan, "release_times", release_times)
    set_(plan, "dispatch_releases", dispatch_releases)
    set_(plan, "alphas", alphas)
    set_(plan, "est_completion", est_completion)
    set_(plan, "explicit_chunks", None)
    return plan


def _prefix_alphas_scalar_cms(cms: float, cps_eff: "NDArray[np.float64]"):
    """Equal-finish fractions for a uniform link cost (Eq. 4-5).

    Bitwise-identical to ``dlt.het_alphas(np.full(n, cms), cps_eff)``:
    adding the scalar ``cms`` element-wise equals adding the uniform vector.
    """
    n = cps_eff.shape[0]
    if n == 1:
        return _ONES1
    x = cps_eff[:-1] / (cms + cps_eff[1:])
    prods = np.cumprod(x)
    denom = 1.0 + prods.sum()
    alphas = np.empty(n)
    alphas[0] = 1.0 / denom
    alphas[1:] = prods / denom
    return alphas


def _alphas_vec(
    cms_vec: "NDArray[np.float64]", cps_vec: "NDArray[np.float64]"
) -> "NDArray[np.float64]":
    """``dlt.het_alphas`` minus input validation (bitwise-identical ops)."""
    n = cms_vec.shape[0]
    if n == 1:
        return _ONES1
    x = cps_vec[:-1] / (cms_vec[1:] + cps_vec[1:])
    prods = np.cumprod(x)
    denom = 1.0 + prods.sum()
    alphas = np.empty(n)
    alphas[0] = 1.0 / denom
    alphas[1:] = prods / denom
    return alphas


class _SharedPrefixAlphas:
    """Equal-finish fractions for every prefix of one ordered node set.

    The heterogeneous recurrence ratios ``X_i = Cps_{i-1}/(Cms_i + Cps_i)``
    depend only on the intrinsic costs of the ordered candidates, so every
    candidate prefix of the ``fixed_point_node_count`` scan shares one ratio
    vector and one cumulative product.  A prefix of ``cumprod`` *is* the
    cumprod of the prefix (the accumulation is sequential) and NumPy's
    pairwise summation depends only on the summed values, so
    :meth:`alphas` is bitwise-identical to ``dlt.het_alphas`` on the prefix
    while computing the shared parts once.
    """

    __slots__ = ("_cms", "_cps", "_prods")

    def __init__(
        self, cms_vec: "NDArray[np.float64]", cps_vec: "NDArray[np.float64]"
    ) -> None:
        self._cms = cms_vec
        self._cps = cps_vec
        self._prods: "NDArray[np.float64] | None" = None

    def alphas(self, n: int) -> "NDArray[np.float64]":
        """Fractions for the first ``n`` candidates (``het_alphas`` bitwise)."""
        if n == 1:
            return _ONES1
        if self._prods is None:
            x = self._cps[:-1] / (self._cms[1:] + self._cps[1:])
            self._prods = np.cumprod(x)
        prods = self._prods[: n - 1]
        denom = 1.0 + prods.sum()
        alphas = np.empty(n)
        alphas[0] = 1.0 / denom
        alphas[1:] = prods / denom
        return alphas


class _MemoEntry:
    """One task's last computed placement, keyed for exact revalidation."""

    __slots__ = ("key", "n_req", "plan", "ids")

    def __init__(
        self,
        key: bytes,
        n_req: int | None,
        plan: PlacementPlan | None,
        ids: "NDArray[np.intp] | None",
    ) -> None:
        self.key = key
        self.n_req = n_req
        self.plan = plan
        self.ids = ids


class FastSchedulabilityTest:
    """Optimized, bit-identical Figure-2 schedulability test.

    Same constructor and :meth:`try_admit` contract as
    :class:`~repro.core.admission.SchedulabilityTest`; see the module
    docstring for the optimization inventory.  Unknown partitioner types
    delegate to an internal reference instance, so behaviour never diverges.

    Observability (``obs``, optional) adds per-engine plan-cache
    hit/miss counters and — when a tracer is attached — admission spans;
    the public ``profile`` attribute accepts a
    :class:`repro.obs.profile.PhaseProfile` for opt-in wall-clock phase
    timing.  All three read simulated state only: decisions are
    bit-identical with or without them (the zero-perturbation contract
    of :mod:`repro.obs`, asserted by the property suite).
    """

    #: Engine label carried into per-engine metric labels.
    engine_name = "fast"

    def __init__(
        self,
        policy: SchedulingPolicy,
        partitioner: Partitioner,
        cluster: ClusterProfile,
        *,
        obs=None,
    ) -> None:
        self.policy = policy
        self.partitioner = partitioner
        self.cluster = cluster
        #: Opt-in wall-clock phase profile (``repro profile`` attaches one).
        self.profile = None
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            labels = {"engine": self.engine_name}
            self._cache_hits = obs.registry.counter(
                "admission_plan_cache_hits_total",
                "Admission walks served from the per-task plan memo.",
                labels=labels,
            )
            self._cache_misses = obs.registry.counter(
                "admission_plan_cache_misses_total",
                "Admission placements recomputed by the kernel.",
                labels=labels,
            )
        else:
            self._cache_hits = None
            self._cache_misses = None

        self._n = cluster.nodes
        self._homog = cluster.is_homogeneous
        self._cms = cluster.cms if self._homog else 0.0
        self._cps = cluster.cps if self._homog else 0.0
        self._worst_cms = cluster.worst_cms
        self._worst_cps = cluster.worst_cps
        #: ``log(beta)`` at the worst-case costs — the only transcendental
        #: the ``ñ_min`` / ``n_min`` bounds need, hoisted out of the hot
        #: path (``math.log1p`` is deterministic, so caching is exact).
        self._log_b_worst = math.log1p(
            -self._worst_cms / (self._worst_cms + self._worst_cps)
        )
        if self._homog:
            # E(sigma, n) = [(1-b)/(1-b^n)] * sigma * (Cms+Cps): the
            # bracket depends only on n, so tabulate it once per node
            # count.  Same subexpressions, same evaluation order as
            # ``dlt.execution_time`` — bitwise-identical results.
            b = self._cps / (self._cms + self._cps)
            self._exec_coeff = tuple(
                (1.0 - b) / -math.expm1(n * self._log_b_worst)
                for n in range(1, self._n + 1)
            )
            self._cost_sum = self._cms + self._cps
        else:
            self._exec_coeff = ()
            self._cost_sum = 0.0

        self._temp = np.empty(self._n, dtype=np.float64)
        self._avail = np.empty(self._n, dtype=np.float64)
        self._floored = np.empty(self._n, dtype=np.float64)
        self._memo: dict[int, _MemoEntry] = {}
        #: Last computed queue order (policy-sorted), reused incrementally.
        self._order_cache: list[DivisibleTask] | None = None
        self._memo_enabled = True
        #: Recompute the now-dependent node-count token on memo hits
        #: (``None`` for rules whose placement does not depend on ``now``).
        self._token: Callable[[DivisibleTask, float], int | None] | None = None
        self._delegate: SchedulabilityTest | None = None
        self._fallback_test: SchedulabilityTest | None = None

        self._node_order = getattr(partitioner, "node_order", "availability")
        self._order_avail = self._node_order == "availability"
        if self._order_avail:
            self._tiebreak = None
        else:
            self._tiebreak = (
                cluster.cps_array
                if self._node_order == "fastest-first"
                else cluster.cms_array
            )

        place: Callable[..., _MemoEntry] | None = None
        #: Entry builder of the specialized kernels: DLT-IIT or OPR.
        self._entry: Callable[..., _MemoEntry | None] | None = None
        if type(partitioner) in (DltIitPartitioner, OprPartitioner):
            self._entry = (
                self._dlt_entry
                if type(partitioner) is DltIitPartitioner
                else self._opr_entry
            )
            if partitioner.assign_all_nodes:
                place = self._place_all_nodes
            elif partitioner.fixed_point_node_count:
                place = self._place_fixed_point
            else:
                place = self._place_paper_rule
                self._token = self._node_count_token
        elif type(partitioner) is UserSplitPartitioner:
            place = self._place_via_partitioner
            # Figure 2's literal reading re-rolls the user's node request on
            # every re-plan; skipping any place() call would desynchronize
            # the RNG stream, so memoization must stay off.
            self._memo_enabled = not partitioner.redraw_on_replan
        else:
            self._delegate = SchedulabilityTest(policy, partitioner, cluster)
        self._place = place

    # -- the walk ---------------------------------------------------------
    def try_admit(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> AdmissionDecision:
        """Run the test for ``new_task`` against the committed state.

        Same contract (and bit-identical result) as
        :meth:`repro.core.admission.SchedulabilityTest.try_admit`.
        """
        if self._delegate is not None:
            return self._delegate.try_admit(new_task, waiting, reservations, now)
        if reservations.nodes != self._n:
            return self._fallback().try_admit(new_task, waiting, reservations, now)
        tracer = self._tracer
        if tracer is None:
            return self._admit_walk(new_task, waiting, reservations, now)
        with tracer.span(
            "admission.try_admit",
            "admission",
            now,
            task=new_task.task_id,
            queue=len(waiting),
            engine=self.engine_name,
        ):
            decision = self._admit_walk(new_task, waiting, reservations, now)
            tracer.event(
                "admission.decision",
                "admission",
                now,
                task=new_task.task_id,
                accepted=decision.accepted,
            )
        return decision

    def _admit_walk(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> AdmissionDecision:
        """The memoized queue walk behind :meth:`try_admit`."""
        prof = self.profile
        tracer = self._tracer
        hits = self._cache_hits
        if prof is not None:
            t0 = perf_counter()
        ordered = self._ordered_queue(waiting, new_task)
        if prof is not None:
            prof.add("queue_order", perf_counter() - t0)
        memo = self._memo
        if len(memo) > 2 * len(ordered) + 32:
            keep = {t.task_id for t in ordered}
            for tid in [k for k in memo if k not in keep]:
                del memo[tid]

        temp = self._temp
        np.copyto(temp, reservations.release_times)
        avail = self._avail
        place = self._place
        assert place is not None  # delegate handled every other case
        token_fn = self._token
        memo_on = self._memo_enabled
        plans: dict[int, PlacementPlan] = {}
        n_hits = n_misses = 0
        for task in ordered:
            np.maximum(temp, now, out=avail)
            tid = task.task_id
            entry: _MemoEntry | None = None
            key = b""
            token = _UNSET
            if memo_on:
                key = avail.tobytes()
                cached = memo.get(tid)
                if cached is not None and cached.key == key:
                    if token_fn is None:
                        entry = cached
                    else:
                        token = token_fn(task, now)
                        if token == cached.n_req:
                            entry = cached
            if entry is None:
                n_misses += 1
                if prof is not None:
                    tk = perf_counter()
                entry = place(task, avail, now, token)
                if prof is not None:
                    prof.add("kernel_place", perf_counter() - tk)
                if tracer is not None:
                    tracer.event(
                        "admission.kernel",
                        "admission",
                        now,
                        task=tid,
                        n=None if entry.ids is None else len(entry.ids),
                    )
                if memo_on:
                    entry.key = key
                    memo[tid] = entry
            else:
                n_hits += 1
                if tracer is not None:
                    tracer.event(
                        "admission.plan_cache", "admission", now, task=tid
                    )
            plan = entry.plan
            if plan is None:
                if hits is not None:
                    self._flush_cache_tallies(n_hits, n_misses)
                return AdmissionDecision(
                    accepted=False, plans={}, failed_task_id=tid
                )
            temp[entry.ids] = plan.est_completion
            plans[tid] = plan
        if hits is not None:
            self._flush_cache_tallies(n_hits, n_misses)
        return AdmissionDecision(accepted=True, plans=plans)

    def _flush_cache_tallies(self, n_hits: int, n_misses: int) -> None:
        """Fold one walk's memo tallies into the registry counters.

        A memo hit costs about one dict probe, so a registry
        ``Counter.inc`` per hit would dominate the instrumented hit path
        (and show up as tracing overhead the perf gate rejects).  The
        walk tallies plain local ints and folds them in here, once per
        admission test.  Only called with a registry attached.
        """
        if n_hits:
            self._cache_hits.inc(n_hits)
        if n_misses:
            self._cache_misses.inc(n_misses)

    def _ordered_queue(
        self, waiting: Sequence[DivisibleTask], new_task: DivisibleTask
    ) -> list[DivisibleTask]:
        """Policy order of ``[*waiting, new_task]``, maintained incrementally.

        The reference walk re-sorts the whole queue on every admission test
        — O(Q log Q) key builds per arrival, the last superlinear term left
        in the hot path.  Both policies' keys are *total* orders (the
        ``task_id`` tie-break makes every comparison strict), so the sorted
        order of any task set is unique and any sorted list stays sorted
        under element removal.  That licenses an exact incremental scheme:

        * keep the previously computed order;
        * drop tasks that have since left the queue (started, or a probed
          task that was never submitted) — an O(Q) id filter;
        * bisect the newcomer into its slot — O(log Q) key evaluations.

        Whenever the current ``waiting`` set is not a subset of the cached
        order (fresh test instance, external callers driving ``try_admit``
        directly), it falls back to the reference's full sort.  Either
        path returns the exact list ``policy.order([*waiting, new_task])``
        would.
        """
        cached = self._order_cache
        n_wait = len(waiting)
        if cached is not None and len(cached) >= n_wait:
            ids = {task.task_id for task in waiting}
            kept = [task for task in cached if task.task_id in ids]
            if len(kept) == n_wait:
                insort(kept, new_task, key=self.policy.key)
                self._order_cache = kept
                return kept
        ordered = self.policy.order([*waiting, new_task])
        self._order_cache = ordered
        return ordered

    def _fallback(self) -> SchedulabilityTest:
        """Reference walk for reservation sizes the scratch buffers don't fit
        (lazy, cached separately so the fast path stays enabled)."""
        fallback = self._fallback_test
        if fallback is None:
            fallback = self._fallback_test = SchedulabilityTest(
                self.policy, self.partitioner, self.cluster
            )
        return fallback

    # -- node-count bounds -------------------------------------------------
    def _min_nodes_worst(self, sigma: float, budget: float) -> int | None:
        """``dlt.min_nodes`` at the cluster's worst-case costs, with the
        constant ``log(beta)`` precomputed (bitwise-identical results)."""
        if budget <= 0:
            return None
        g = 1.0 - (sigma * self._worst_cms) / budget
        if g <= 0.0:
            return None
        if g >= 1.0:  # pragma: no cover - unreachable with positive costs
            return 1
        n = math.ceil(math.log(g) / self._log_b_worst - dlt.FEASIBILITY_RTOL)
        if n < 1:
            n = 1
        return None if n > self._n else n

    def _node_count_token(self, task: DivisibleTask, now: float) -> int | None:
        """``ñ_min`` / ``n_min`` at the admission-test time — the paper
        rules' only dependence on ``now`` (Eq. 14 / [22])."""
        t_test = now if now > task.arrival else task.arrival
        return self._min_nodes_worst(
            task.sigma, task.arrival + task.deadline - t_test
        )

    # -- shared placement plumbing ---------------------------------------
    def _candidates(
        self, task: DivisibleTask, avail: "NDArray[np.float64]"
    ) -> tuple["NDArray[np.intp]", "NDArray[np.float64]"]:
        """Floored + ordered candidates, exactly as the reference ``place``
        (:func:`repro.core.partition.sorted_candidates`) computes them."""
        floored = self._floored
        np.maximum(avail, task.arrival, out=floored)
        if self._order_avail:
            order = floored.argsort(kind="stable")
        else:
            order = np.lexsort((self._tiebreak, floored))
        return order, floored[order]

    def _dlt_completion(
        self,
        sigma: float,
        order_n: "NDArray[np.intp]",
        releases: "NDArray[np.float64]",
        shared: _SharedPrefixAlphas | None = None,
    ) -> tuple[float, "NDArray[np.float64]"]:
        """Eq. 4-7 over the chosen nodes — ``build_model`` bitwise, minus
        validation and the intermediate :class:`HeterogeneousModel`."""
        n = releases.shape[0]
        rn = float(releases[-1])
        if self._homog:
            cms, cps = self._cms, self._cps
            e = self._exec_coeff[n - 1] * sigma * self._cost_sum
            iit = rn - releases
            cps_eff = (e / (e + iit)) * cps
            alphas = _prefix_alphas_scalar_cms(cms, cps_eff)
            exec_time = sigma * cms + float(alphas[-1]) * sigma * cps
        else:
            if shared is not None:
                cms_vec = shared._cms[:n]
                cps_vec = shared._cps[:n]
                a0 = shared.alphas(n)
            else:
                cms_vec, cps_vec = self.cluster.costs_for(order_n)
                a0 = _alphas_vec(cms_vec, cps_vec)
            e = float(
                sigma * (a0 * cms_vec).sum() + a0[-1] * sigma * cps_vec[-1]
            )
            iit = rn - releases
            cps_eff = (e / (e + iit)) * cps_vec
            alphas = _alphas_vec(cms_vec, cps_eff)
            exec_time = float(
                sigma * (alphas * cms_vec).sum()
                + float(alphas[-1]) * sigma * float(cps_vec[-1])
            )
        return rn + exec_time, alphas

    def _dlt_entry(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared: _SharedPrefixAlphas | None = None,
    ) -> _MemoEntry | None:
        """Build a DLT-IIT plan for ``n`` nodes; ``None`` if infeasible."""
        releases = sorted_avail[:n]
        completion, alphas = self._dlt_completion(
            task.sigma, order[:n], releases, shared
        )
        if not feasible_by(completion, task.absolute_deadline):
            return None
        release_t = tuple(releases.tolist())
        ids = order[:n].copy()
        plan = _trusted_plan(
            task,
            self.partitioner.method,
            tuple(ids.tolist()),
            release_t,
            release_t,
            tuple(alphas.tolist()),
            float(completion),
        )
        return _MemoEntry(b"", None, plan, ids)

    def _opr_entry(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared: _SharedPrefixAlphas | None = None,
    ) -> _MemoEntry | None:
        """Build an OPR plan for ``n`` nodes; ``None`` if infeasible."""
        sigma = task.sigma
        releases = sorted_avail[:n]
        rn = float(releases[-1])
        if self._homog:
            exec_time = self._exec_coeff[n - 1] * sigma * self._cost_sum
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
            alphas = dlt.opr_alphas(n, self._cms, self._cps)
        else:
            if shared is not None:
                cms_sel = shared._cms[:n]
                cps_sel = shared._cps[:n]
                alphas = shared.alphas(n)
            else:
                cms_sel, cps_sel = self.cluster.costs_for(order[:n])
                alphas = _alphas_vec(cms_sel, cps_sel)
            exec_time = float(
                sigma * (alphas * cms_sel).sum()
                + alphas[-1] * sigma * cps_sel[-1]
            )
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
        ids = order[:n].copy()
        plan = _trusted_plan(
            task,
            self.partitioner.method,
            tuple(ids.tolist()),
            tuple(releases.tolist()),
            (rn,) * n,
            tuple(alphas.tolist()),
            float(completion),
        )
        return _MemoEntry(b"", None, plan, ids)

    # -- placements (entry builder ``self._entry`` = DLT-IIT or OPR) ------
    def _place_paper_rule(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """Paper rule: ``ñ_min`` / ``n_min`` at the admission-test time."""
        n_req = (
            self._node_count_token(task, now) if token is _UNSET else token
        )
        if n_req is None:
            return _MemoEntry(b"", None, None, None)
        order, sorted_avail = self._candidates(task, avail)
        entry = self._entry(task, order, sorted_avail, n_req)
        if entry is None:
            return _MemoEntry(b"", n_req, None, None)
        entry.n_req = n_req
        return entry

    def _place_all_nodes(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """"-AN" variants: always the whole cluster, exact feasibility."""
        order, sorted_avail = self._candidates(task, avail)
        entry = self._entry(task, order, sorted_avail, self._n)
        return entry if entry is not None else _MemoEntry(b"", None, None, None)

    def _place_fixed_point(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """Fixed-point ablation scan, monotonicity-aware.

        The reference scans ``k = 1..N`` evaluating the node-count bound
        at each candidate start time and trying a placement whenever
        ``n_req <= k``.  Because ``sorted_avail`` is non-decreasing the
        bound is non-decreasing in ``k``, which licenses three exact
        shortcuts (the accepted plan is unchanged): start at the first
        ``k`` that can satisfy ``n_req <= k``, jump ``k`` straight to
        ``n_req`` whenever the bound exceeds it, and skip repeated
        ``n_req`` values whose placement already failed (the placement
        depends on ``n_req`` alone, not ``k``).  ``None`` from the bound
        is terminal: the budget only shrinks as ``k`` grows.
        """
        order, sorted_avail = self._candidates(task, avail)
        shared = self._shared_prefix(order)
        tracer = self._tracer
        scanned = 0
        big_n = self._n
        failed_n = 0
        k = 1
        while k <= big_n:
            n_req = self._min_nodes_worst(
                task.sigma,
                task.arrival + task.deadline - float(sorted_avail[k - 1]),
            )
            if n_req is None:
                break
            if n_req > k:
                k = n_req
                continue
            if n_req > failed_n:
                if tracer is not None:
                    scanned += 1
                entry = self._entry(task, order, sorted_avail, n_req, shared)
                if entry is not None:
                    if tracer is not None:
                        tracer.event(
                            "admission.node_scan",
                            "admission",
                            now,
                            task=task.task_id,
                            placements=scanned,
                            n=n_req,
                        )
                    return entry
                failed_n = n_req
            k += 1
        if tracer is not None:
            tracer.event(
                "admission.node_scan",
                "admission",
                now,
                task=task.task_id,
                placements=scanned,
                n=None,
            )
        return _MemoEntry(b"", None, None, None)

    def _shared_prefix(
        self, order: "NDArray[np.intp]"
    ) -> _SharedPrefixAlphas | None:
        """Shared prefix-cumprod helper for heterogeneous scans."""
        if self._homog:
            return None
        cms_vec, cps_vec = self.cluster.costs_for(order)
        return _SharedPrefixAlphas(cms_vec, cps_vec)

    # -- stochastic / generic partitioners --------------------------------
    def _place_via_partitioner(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """Defer to the partitioner's own ``place`` (User-Split)."""
        plan = self.partitioner.place(task, avail, self.cluster, now)
        if plan is None:
            return _MemoEntry(b"", None, None, None)
        return _MemoEntry(
            b"", None, plan, np.asarray(plan.node_ids, dtype=np.intp)
        )
