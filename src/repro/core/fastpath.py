"""Fast admission engine: the Figure-2 schedulability test, optimized.

:class:`FastSchedulabilityTest` is a drop-in replacement for
:class:`repro.core.admission.SchedulabilityTest` that produces **bit-identical**
:class:`~repro.core.admission.AdmissionDecision` streams while doing far less
work per call.  The reference implementation stays exactly where it was — the
property suite (``tests/test_fastpath_properties.py``) replays random
scenarios through both engines and asserts record-by-record equality.

Why this module exists
----------------------
Every metric in the paper flows through the schedulability test, and the test
is the system's hot path cubed: each arrival re-plans the *entire* waiting
queue, each re-plan scans candidate node counts, and the fleet's probing
routers multiply that by one full admission test per member cluster per task.
Four coordinated optimizations attack that cost without changing a single
output bit:

1. **Per-task plan memoization** — a placement depends only on the task, the
   availability vector the walk hands it, and (for the paper's ``ñ_min`` /
   ``n_min`` rules) the admission-test time through the node-count bound.
   The engine caches each task's last computed plan keyed on the raw
   availability bytes and revalidates the cheap scalar node-count bound; when
   the queue prefix ahead of a newcomer's EDF slot is undisturbed (and under
   load it almost always is), the whole prefix replays as cache hits.  The
   same mechanism makes a fleet probe followed by a routed submission cost
   one test instead of two.
2. **Specialized placement kernels** — the DLT-IIT and OPR placement paths
   are re-implemented with the *same arithmetic operations in the same
   order* as :func:`repro.core.het_model.build_model` /
   :func:`repro.core.dlt.het_alphas` (so results are bitwise equal) but
   without the per-call validation, intermediate dataclasses and redundant
   array materializations of the reference path.
3. **Monotonicity-aware candidate search** — the ``fixed_point_node_count``
   ablation's ``k = 1..N`` scan exploits that the node-count bound is
   non-decreasing in ``k``: the scan starts at the ``ñ_min`` lower bound,
   jumps over candidates that cannot satisfy ``n_req <= k``, skips repeated
   ``n_req`` values whose placement already failed, and shares one prefix
   cumprod across all heterogeneous candidate evaluations
   (:class:`_SharedPrefixAlphas`) instead of recomputing the recurrence per
   ``k``.
4. **Scratch buffers** — the walk works on preallocated vectors instead
   of building a :class:`~repro.core.reservations.NodeReservations` copy and
   fresh availability arrays per task.
5. **Prefix checkpoints** — consecutive admission tests usually walk the
   *same* queue prefix against the *same* committed availability: a
   newcomer perturbs the walk only from its policy-order slot onward, and
   the committed state changes only when the scheduler dispatches,
   eagerly releases, or floors a fault outage (all of which bump
   :attr:`repro.core.reservations.NodeReservations.epoch`).  The engine
   therefore keeps the last walk's per-position placements and replays the
   longest still-valid prefix with a handful of scalar writes instead of
   re-deriving it, re-validating the paper rule's ``now``-dependent
   node-count bound per position through the guard-banded threshold table
   (certain answers only; any doubt falls back to a cold walk).  Admission
   cost becomes proportional to what changed, not to queue depth.

Partitioners the engine does not specialize (multi-round plans, third-party
strategies) and stochastic re-draw configurations (User-Split with
``redraw_on_replan=True``, whose RNG stream consumption must match call for
call) transparently fall back to the reference implementation, so the engine
is always safe to enable.  :func:`make_admission_test` is the factory the
scheduler uses; ``engine="reference"`` selects the original implementation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core import dlt
from repro.core.admission import AdmissionDecision, SchedulabilityTest
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.core.partition import (
    DltIitPartitioner,
    OprPartitioner,
    Partitioner,
    PlacementPlan,
    UserSplitPartitioner,
    feasible_by,
)
from repro.core.policies import SchedulingPolicy
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = [
    "ADMISSION_ENGINES",
    "FastSchedulabilityTest",
    "make_admission_test",
    "validate_admission_engine",
]

#: Valid admission-engine names: ``"fast"`` (this module, the default),
#: ``"batch"`` (:mod:`repro.core.batchpath`, the vectorized engine) and
#: ``"reference"`` (the original :class:`SchedulabilityTest`).  All three
#: produce bit-identical decision streams.
ADMISSION_ENGINES: tuple[str, ...] = ("fast", "batch", "reference")

#: Checkpoint snapshot stride: a full copy of the scratch availability
#: vector is stored after every ``_CKPT_STRIDE``-th queue position, so a
#: prefix restore costs one vector copy plus at most ``_CKPT_STRIDE - 1``
#: per-position completion replays — O(1) in queue depth.
_CKPT_STRIDE = 16


def validate_admission_engine(engine: str) -> str:
    """Return ``engine`` if it names an admission engine, else raise."""
    if engine not in ADMISSION_ENGINES:
        raise InvalidParameterError(
            f"unknown admission engine {engine!r}; "
            f"valid: {', '.join(ADMISSION_ENGINES)}"
        )
    return engine


def make_admission_test(
    policy: SchedulingPolicy,
    partitioner: Partitioner,
    cluster: ClusterProfile,
    *,
    engine: str = "fast",
    obs=None,
    checkpoint: bool = True,
) -> "SchedulabilityTest | FastSchedulabilityTest":
    """Build the admission test for a scheduler.

    ``engine="fast"`` (default) returns the optimized engine of this
    module; ``engine="batch"`` the batch-vectorized engine of
    :mod:`repro.core.batchpath`; ``engine="reference"`` the original
    walk.  All three produce bit-identical decisions — the choice only
    trades speed against simplicity.  ``obs`` (an
    :class:`repro.obs.Observability`) wires the optimized engines'
    plan-cache counters and admission spans onto the caller's registry
    and tracer; the reference engine carries no instrumentation (it is
    the untouched ground truth) and ignores it.  ``checkpoint=False``
    disables the optimized engines' prefix-checkpoint store (the
    benchmark ablation axis); decisions are identical either way.
    """
    validate_admission_engine(engine)
    if engine == "reference":
        return SchedulabilityTest(policy, partitioner, cluster)
    if engine == "batch":
        from repro.core.batchpath import BatchSchedulabilityTest

        return BatchSchedulabilityTest(
            policy, partitioner, cluster, obs=obs, checkpoint=checkpoint
        )
    return FastSchedulabilityTest(
        policy, partitioner, cluster, obs=obs, checkpoint=checkpoint
    )


#: Shared ``alphas`` vector for single-node placements (``het_alphas`` on one
#: node returns ``np.ones(1)``; the value is constant, so one frozen array
#: serves every caller).
_ONES1 = np.ones(1)
_ONES1.flags.writeable = False

#: Sentinel marking "node-count token not precomputed" in placement calls.
_UNSET = object()


def _trusted_plan(
    task: DivisibleTask,
    method: str,
    node_ids: tuple[int, ...],
    release_times: tuple[float, ...],
    dispatch_releases: tuple[float, ...],
    alphas: tuple[float, ...],
    est_completion: float,
) -> PlacementPlan:
    """Build a :class:`PlacementPlan` whose invariants hold by construction.

    The kernels take node ids from an argsort prefix (unique by
    construction) and all vectors from the same prefix length, so the
    ``__post_init__`` validation pass is redundant on this path.  Field
    values are exactly what the reference constructor would store, so
    plans compare equal across engines.
    """
    plan = PlacementPlan.__new__(PlacementPlan)
    set_ = object.__setattr__
    set_(plan, "task", task)
    set_(plan, "method", method)
    set_(plan, "node_ids", node_ids)
    set_(plan, "release_times", release_times)
    set_(plan, "dispatch_releases", dispatch_releases)
    set_(plan, "alphas", alphas)
    set_(plan, "est_completion", est_completion)
    set_(plan, "explicit_chunks", None)
    return plan


def _prefix_alphas_scalar_cms(cms: float, cps_eff: "NDArray[np.float64]"):
    """Equal-finish fractions for a uniform link cost (Eq. 4-5).

    Bitwise-identical to ``dlt.het_alphas(np.full(n, cms), cps_eff)``:
    adding the scalar ``cms`` element-wise equals adding the uniform vector.
    """
    n = cps_eff.shape[0]
    if n == 1:
        return _ONES1
    x = cps_eff[:-1] / (cms + cps_eff[1:])
    prods = np.cumprod(x)
    denom = 1.0 + prods.sum()
    alphas = np.empty(n)
    alphas[0] = 1.0 / denom
    alphas[1:] = prods / denom
    return alphas


def _alphas_vec(
    cms_vec: "NDArray[np.float64]", cps_vec: "NDArray[np.float64]"
) -> "NDArray[np.float64]":
    """``dlt.het_alphas`` minus input validation (bitwise-identical ops)."""
    n = cms_vec.shape[0]
    if n == 1:
        return _ONES1
    x = cps_vec[:-1] / (cms_vec[1:] + cps_vec[1:])
    prods = np.cumprod(x)
    denom = 1.0 + prods.sum()
    alphas = np.empty(n)
    alphas[0] = 1.0 / denom
    alphas[1:] = prods / denom
    return alphas


class _SharedPrefixAlphas:
    """Equal-finish fractions for every prefix of one ordered node set.

    The heterogeneous recurrence ratios ``X_i = Cps_{i-1}/(Cms_i + Cps_i)``
    depend only on the intrinsic costs of the ordered candidates, so every
    candidate prefix of the ``fixed_point_node_count`` scan shares one ratio
    vector and one cumulative product.  A prefix of ``cumprod`` *is* the
    cumprod of the prefix (the accumulation is sequential) and NumPy's
    pairwise summation depends only on the summed values, so
    :meth:`alphas` is bitwise-identical to ``dlt.het_alphas`` on the prefix
    while computing the shared parts once.
    """

    __slots__ = ("_cms", "_cps", "_prods")

    def __init__(
        self, cms_vec: "NDArray[np.float64]", cps_vec: "NDArray[np.float64]"
    ) -> None:
        self._cms = cms_vec
        self._cps = cps_vec
        self._prods: "NDArray[np.float64] | None" = None

    def alphas(self, n: int) -> "NDArray[np.float64]":
        """Fractions for the first ``n`` candidates (``het_alphas`` bitwise)."""
        if n == 1:
            return _ONES1
        if self._prods is None:
            x = self._cps[:-1] / (self._cms[1:] + self._cps[1:])
            self._prods = np.cumprod(x)
        prods = self._prods[: n - 1]
        denom = 1.0 + prods.sum()
        alphas = np.empty(n)
        alphas[0] = 1.0 / denom
        alphas[1:] = prods / denom
        return alphas


class _MemoEntry:
    """One task's last computed placement, keyed for exact revalidation."""

    __slots__ = ("key", "n_req", "plan", "ids", "ckpt_win")

    def __init__(
        self,
        key: bytes,
        n_req: int | None,
        plan: PlacementPlan | None,
        ids: "NDArray[np.intp] | None",
    ) -> None:
        self.key = key
        self.n_req = n_req
        self.plan = plan
        self.ids = ids
        #: Lazily computed certain test-time window ``(t_lo, t_hi)`` of
        #: this placement's node-count token (see ``_ckpt_window``).
        self.ckpt_win: tuple[float, float] | None = None


#: Relative guard band around each node-count threshold.  Inside the band
#: the comparison-based classification abstains and the exact scalar bound
#: runs instead; outside it, libm's few-ulp errors (~1e-16 relative) cannot
#: flip the comparison, so the table's answer equals the scalar one.
_BOUND_EPS = 1e-9


class _NodeBoundTable:
    """``ñ_min`` / ``n_min`` classification via precomputed ``g`` thresholds.

    The paper bound (Eq. 14 / [22]) is ``n_req = ceil(v - rtol)`` with
    ``v = log(g)/log(beta)`` clamped to ``[1, N]`` (``None`` beyond ``N``).
    Since ``log(beta) < 0`` and ``g`` enters monotonically, ``n_req <= m``
    exactly when ``g >= B[m] = exp((m + rtol) * log(beta))``; the table
    stores ``B[N..1]`` ascending so one :func:`bisect.bisect_right`
    yields how many thresholds a ``g`` clears — and hence its ``n_req``
    — using only float comparisons, no logs.  ``g`` values inside a
    guard band (``lo``/``hi``) are the cases libm error could in
    principle decide; the engines resolve those with the exact scalar
    formula instead.  The batch engine classifies whole queues with it;
    both optimized engines also use it to certify that a checkpointed
    position's node-count token is unchanged at a new test time.
    """

    __slots__ = ("asc", "lo", "hi", "n")

    def __init__(self, n: int, log_b: float) -> None:
        self.asc = [
            math.exp((m + dlt.FEASIBILITY_RTOL) * log_b)
            for m in range(n, 0, -1)
        ]
        self.lo = [v * (1.0 + _BOUND_EPS) for v in self.asc]
        self.hi = [v * (1.0 - _BOUND_EPS) for v in self.asc]
        self.n = n


class FastSchedulabilityTest:
    """Optimized, bit-identical Figure-2 schedulability test.

    Same constructor and :meth:`try_admit` contract as
    :class:`~repro.core.admission.SchedulabilityTest`; see the module
    docstring for the optimization inventory.  Unknown partitioner types
    delegate to an internal reference instance, so behaviour never diverges.

    Observability (``obs``, optional) adds per-engine plan-cache
    hit/miss counters and — when a tracer is attached — admission spans;
    the public ``profile`` attribute accepts a
    :class:`repro.obs.profile.PhaseProfile` for opt-in wall-clock phase
    timing.  All three read simulated state only: decisions are
    bit-identical with or without them (the zero-perturbation contract
    of :mod:`repro.obs`, asserted by the property suite).
    """

    #: Engine label carried into per-engine metric labels.
    engine_name = "fast"

    def __init__(
        self,
        policy: SchedulingPolicy,
        partitioner: Partitioner,
        cluster: ClusterProfile,
        *,
        obs=None,
        checkpoint: bool = True,
    ) -> None:
        self.policy = policy
        self.partitioner = partitioner
        self.cluster = cluster
        #: Opt-in wall-clock phase profile (``repro profile`` attaches one).
        self.profile = None
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            labels = {"engine": self.engine_name}
            self._cache_hits = obs.registry.counter(
                "admission_plan_cache_hits_total",
                "Admission walks served from the per-task plan memo.",
                labels=labels,
            )
            self._cache_misses = obs.registry.counter(
                "admission_plan_cache_misses_total",
                "Admission placements recomputed by the kernel.",
                labels=labels,
            )
            self._ckpt_hits = obs.registry.counter(
                "admission_ckpt_hits_total",
                "Admission walks that restored a checkpointed queue prefix.",
                labels=labels,
            )
            self._ckpt_misses = obs.registry.counter(
                "admission_ckpt_misses_total",
                "Admission walks rebuilt cold (no valid prefix checkpoint).",
                labels=labels,
            )
            self._ckpt_tasks = obs.registry.counter(
                "admission_ckpt_tasks_total",
                "Queued placements replayed from the prefix checkpoint.",
                labels=labels,
            )
        else:
            self._cache_hits = None
            self._cache_misses = None
            self._ckpt_hits = None
            self._ckpt_misses = None
            self._ckpt_tasks = None

        self._n = cluster.nodes
        self._homog = cluster.is_homogeneous
        self._cms = cluster.cms if self._homog else 0.0
        self._cps = cluster.cps if self._homog else 0.0
        self._worst_cms = cluster.worst_cms
        self._worst_cps = cluster.worst_cps
        #: ``log(beta)`` at the worst-case costs — the only transcendental
        #: the ``ñ_min`` / ``n_min`` bounds need, hoisted out of the hot
        #: path (``math.log1p`` is deterministic, so caching is exact).
        self._log_b_worst = math.log1p(
            -self._worst_cms / (self._worst_cms + self._worst_cps)
        )
        if self._homog:
            # E(sigma, n) = [(1-b)/(1-b^n)] * sigma * (Cms+Cps): the
            # bracket depends only on n, so tabulate it once per node
            # count.  Same subexpressions, same evaluation order as
            # ``dlt.execution_time`` — bitwise-identical results.
            b = self._cps / (self._cms + self._cps)
            self._exec_coeff = tuple(
                (1.0 - b) / -math.expm1(n * self._log_b_worst)
                for n in range(1, self._n + 1)
            )
            self._cost_sum = self._cms + self._cps
        else:
            self._exec_coeff = ()
            self._cost_sum = 0.0

        self._temp = np.empty(self._n, dtype=np.float64)
        self._floored = np.empty(self._n, dtype=np.float64)
        self._memo: dict[int, _MemoEntry] = {}
        #: Last computed queue order (policy-sorted), reused incrementally.
        self._order_cache: list[DivisibleTask] | None = None
        self._memo_enabled = True
        #: Recompute the now-dependent node-count token on memo hits
        #: (``None`` for rules whose placement does not depend on ``now``).
        self._token: Callable[[DivisibleTask, float], int | None] | None = None
        self._delegate: SchedulabilityTest | None = None
        self._fallback_test: SchedulabilityTest | None = None

        self._node_order = getattr(partitioner, "node_order", "availability")
        self._order_avail = self._node_order == "availability"
        if self._order_avail:
            self._tiebreak = None
        else:
            self._tiebreak = (
                cluster.cps_array
                if self._node_order == "fastest-first"
                else cluster.cms_array
            )

        place: Callable[..., _MemoEntry] | None = None
        #: Entry builder of the specialized kernels: DLT-IIT or OPR.
        self._entry: Callable[..., _MemoEntry | None] | None = None
        if type(partitioner) in (DltIitPartitioner, OprPartitioner):
            self._entry = (
                self._dlt_entry
                if type(partitioner) is DltIitPartitioner
                else self._opr_entry
            )
            if partitioner.assign_all_nodes:
                place = self._place_all_nodes
            elif partitioner.fixed_point_node_count:
                place = self._place_fixed_point
            else:
                place = self._place_paper_rule
                self._token = self._node_count_token
        elif type(partitioner) is UserSplitPartitioner:
            place = self._place_via_partitioner
            # Figure 2's literal reading re-rolls the user's node request on
            # every re-plan; skipping any place() call would desynchronize
            # the RNG stream, so memoization must stay off.
            self._memo_enabled = not partitioner.redraw_on_replan
        else:
            self._delegate = SchedulabilityTest(policy, partitioner, cluster)
        self._place = place

        #: Guard-banded node-count threshold table (shared with the batch
        #: engine, and the checkpoint token revalidation of both engines).
        self._bound_table = _NodeBoundTable(self._n, self._log_b_worst)
        # -- prefix checkpoint state (see _ckpt_restore) -------------------
        #: Whether the prefix-checkpoint store is active.  Off when the
        #: caller ablates it, when memoization is off (stochastic re-draw
        #: partitioners must consume RNG per position) and when the
        #: partitioner delegates to the reference walk.
        self._ckpt_enabled = (
            bool(checkpoint) and self._memo_enabled and self._delegate is None
        )
        #: Per-position ``(task, entry, node_ids, completion)`` of the last
        #: walk, in policy order; also the batch walk's entry list.
        self._ckpt_items: list[tuple] = []
        #: Task ids matching ``_ckpt_items`` (prefix comparison key).
        self._ckpt_tids: list[int] = []
        self._ckpt_valid = False
        self._ckpt_res: NodeReservations | None = None
        self._ckpt_epoch = -1
        self._ckpt_now = math.nan
        #: Floored availability base the checkpointed walk started from.
        self._ckpt_base = np.empty(self._n, dtype=np.float64)
        #: Staging buffer for a cold walk's base (promoted on commit).
        self._ckpt_newbase = np.empty(self._n, dtype=np.float64)
        #: Strided scratch-vector snapshots (row ``r`` = state after
        #: position ``(r + 1) * _CKPT_STRIDE - 1``) and the running buffer
        #: :meth:`_ckpt_splice` rebuilds them with.
        self._ckpt_snap: "NDArray[np.float64] | None" = None
        self._ckpt_run = np.empty(self._n, dtype=np.float64)
        #: Newcomer's slot in the last ordered queue (see
        #: :meth:`_ordered_queue`); bounds the committed-queue prefix a
        #: rejected cold walk may re-seed the store with.
        self._insert_pos = 0
        #: ``tuple(waiting)`` of the previous call and the common prefix
        #: between this walk's order and the previous one (``-1`` =
        #: unknown, recomputed by the restore's per-position scan).
        self._order_waiting: tuple | None = None
        self._order_common = -1
        #: Agreement length between the store and ``_order_cache`` —
        #: chained through ``_order_common`` each walk so the restore's
        #: queue-prefix match is O(1), not O(prefix).
        self._ckpt_sync = -1
        # Token-constancy columns (paper rule only), grown on demand: the
        # cumulative test-time window [wlo, whi] within which every
        # position up to this one certainly keeps its stored node count.
        self._ckpt_cap = 0
        self._ckpt_wlo: "NDArray[np.float64] | None" = None
        self._ckpt_whi: "NDArray[np.float64] | None" = None

    # -- the walk ---------------------------------------------------------
    def try_admit(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> AdmissionDecision:
        """Run the test for ``new_task`` against the committed state.

        Same contract (and bit-identical result) as
        :meth:`repro.core.admission.SchedulabilityTest.try_admit`.
        """
        if self._delegate is not None:
            return self._delegate.try_admit(new_task, waiting, reservations, now)
        if reservations.nodes != self._n:
            return self._fallback().try_admit(new_task, waiting, reservations, now)
        tracer = self._tracer
        if tracer is None:
            return self._admit_walk(new_task, waiting, reservations, now)
        with tracer.span(
            "admission.try_admit",
            "admission",
            now,
            task=new_task.task_id,
            queue=len(waiting),
            engine=self.engine_name,
        ):
            decision = self._admit_walk(new_task, waiting, reservations, now)
            tracer.event(
                "admission.decision",
                "admission",
                now,
                task=new_task.task_id,
                accepted=decision.accepted,
            )
        return decision

    def _admit_walk(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> AdmissionDecision:
        """The memoized queue walk behind :meth:`try_admit`."""
        prof = self.profile
        tracer = self._tracer
        hits = self._cache_hits
        if prof is not None:
            t0 = perf_counter()
        ordered = self._ordered_queue(waiting, new_task)
        if prof is not None:
            prof.add("queue_order", perf_counter() - t0)
        memo = self._memo
        if len(memo) > 2 * len(ordered) + 32:
            keep = {t.task_id for t in ordered}
            for tid in [k for k in memo if k not in keep]:
                del memo[tid]

        temp = self._temp
        np.copyto(temp, reservations.release_times)
        # Every write below is a completion >= now, so flooring once here
        # makes the reference's per-task max(release, now) the identity —
        # and leaves each position's memo key byte-identical to what the
        # per-task floor produced.
        np.maximum(temp, now, out=temp)
        ckpt_on = self._ckpt_enabled
        start = 0
        side: list[tuple] = []
        if ckpt_on:
            if prof is not None:
                tk = perf_counter()
            start = self._ckpt_restore(ordered, temp, reservations, now)
            if prof is not None:
                prof.add("prefix_restore", perf_counter() - tk)
            if hits is not None:
                self._ckpt_tally(start)
            if start == 0:
                np.copyto(self._ckpt_newbase, temp)
        place = self._place
        assert place is not None  # delegate handled every other case
        token_fn = self._token
        memo_on = self._memo_enabled
        plans: dict[int, PlacementPlan] = {}
        if start:
            items = self._ckpt_items
            for i in range(start):
                item = items[i]
                plans[item[0].task_id] = item[1].plan
        n_hits = n_misses = 0
        for task in ordered[start:] if start else ordered:
            tid = task.task_id
            entry: _MemoEntry | None = None
            key = b""
            token = _UNSET
            if memo_on:
                key = temp.tobytes()
                cached = memo.get(tid)
                if cached is not None and cached.key == key:
                    if token_fn is None:
                        entry = cached
                    else:
                        token = token_fn(task, now)
                        if token == cached.n_req:
                            entry = cached
            if entry is None:
                n_misses += 1
                if prof is not None:
                    tk = perf_counter()
                entry = place(task, temp, now, token)
                if prof is not None:
                    prof.add("kernel_place", perf_counter() - tk)
                if tracer is not None:
                    tracer.event(
                        "admission.kernel",
                        "admission",
                        now,
                        task=tid,
                        n=None if entry.ids is None else len(entry.ids),
                    )
                if memo_on:
                    entry.key = key
                    memo[tid] = entry
            else:
                n_hits += 1
                if tracer is not None:
                    tracer.event(
                        "admission.plan_cache", "admission", now, task=tid
                    )
            plan = entry.plan
            if plan is None:
                if hits is not None:
                    self._flush_cache_tallies(n_hits, n_misses)
                if ckpt_on and start == 0:
                    # A rejection leaves the committed queue untouched, so
                    # the positions walked *before the newcomer's slot* are
                    # a valid checkpoint of it.  Re-seeding here is what
                    # lets the store survive dispatch -> rejection streaks.
                    keep = self._insert_pos
                    if len(side) < keep:
                        keep = len(side)
                    if keep:
                        self._ckpt_splice(
                            0,
                            side if keep == len(side) else side[:keep],
                            reservations,
                            now,
                        )
                return AdmissionDecision(
                    accepted=False, plans={}, failed_task_id=tid
                )
            temp[entry.ids] = plan.est_completion
            plans[tid] = plan
            if ckpt_on:
                side.append((task, entry, plan.node_ids, plan.est_completion))
        if hits is not None:
            self._flush_cache_tallies(n_hits, n_misses)
        if ckpt_on:
            self._ckpt_splice(start, side, reservations, now)
        return AdmissionDecision(accepted=True, plans=plans)

    def _flush_cache_tallies(self, n_hits: int, n_misses: int) -> None:
        """Fold one walk's memo tallies into the registry counters.

        A memo hit costs about one dict probe, so a registry
        ``Counter.inc`` per hit would dominate the instrumented hit path
        (and show up as tracing overhead the perf gate rejects).  The
        walk tallies plain local ints and folds them in here, once per
        admission test.  Only called with a registry attached.
        """
        if n_hits:
            self._cache_hits.inc(n_hits)
        if n_misses:
            self._cache_misses.inc(n_misses)

    # -- prefix checkpoints ------------------------------------------------
    def _ckpt_tally(self, start: int) -> None:
        """Fold one walk's checkpoint outcome into the registry counters
        (O(1) per walk; only called with a registry attached)."""
        if start:
            self._ckpt_hits.inc()
            self._ckpt_tasks.inc(start)
        else:
            self._ckpt_misses.inc()

    def _ckpt_restore(
        self,
        ordered: Sequence[DivisibleTask],
        temp: "NDArray[np.float64]",
        reservations: NodeReservations,
        now: float,
    ) -> int:
        """Replay the longest still-valid checkpointed prefix into ``temp``.

        A stored position is reusable exactly when the walk that placed it
        would recompute it bit-for-bit, which requires three things:

        1. **Same base** — the floored committed availability the walk
           started from is unchanged.  Cheap path: the same
           :class:`~repro.core.reservations.NodeReservations` object at
           the same :attr:`~repro.core.reservations.NodeReservations.epoch`
           and the same ``now`` (completions, eager releases, fault
           floors, displacement and re-admission all bump the epoch).
           Fallback: exact value equality against the stored base vector,
           which also covers callers handing in fresh copies per call.
        2. **Same queue prefix** — the policy-ordered task ids ahead of
           the position are unchanged (the longest common prefix of the
           new order against the stored one; a newcomer's insertion slot,
           cancellations and departures all truncate it).
        3. **Same node-count token** — for the paper rule, whose bound is
           the placement's only ``now``-dependence, the stored ``n_req``
           must be *certainly* unchanged at the new test time; positions
           whose ``g`` leaves the guard-banded certainty interval of
           their stored count (or whose deadline budget expired) end the
           prefix conservatively and re-walk.

        Returns the number of leading ``ordered`` positions restored
        (``0`` = cold walk) and writes their completions into ``temp`` —
        one strided snapshot copy plus at most ``_CKPT_STRIDE - 1``
        per-position replays, so the restore itself is O(1) in prefix
        depth.  The store is left untouched: a *rejected* walk leaves the
        committed queue exactly as it was, so the pre-walk checkpoint
        stays the best description of it — only :meth:`_ckpt_splice`
        (accepted walks, plus the committed-prefix re-seed of rejected
        cold walks) replaces it.
        """
        # Chain the queue-order delta into the store-agreement length
        # *unconditionally* — even walks that restore nothing advance the
        # order cache, and the next walk's O(1) prefix match depends on
        # every step of the chain having been applied.
        common = self._order_common
        sync = self._ckpt_sync
        if common < 0:
            sync = self._ckpt_sync = -1
        elif 0 <= sync and common < sync:
            sync = self._ckpt_sync = common
        if not self._ckpt_valid:
            return 0
        items = self._ckpt_items
        if not items or not (
            (
                reservations is self._ckpt_res
                and reservations.epoch == self._ckpt_epoch
                and now == self._ckpt_now
            )
            or np.array_equal(temp, self._ckpt_base)
        ):
            return 0
        if sync >= 0:
            k = sync
            if k > len(ordered):  # pragma: no cover - sync is capped above
                k = len(ordered)
        else:
            k = 0
            for task, tid in zip(ordered, self._ckpt_tids):
                if task.task_id != tid:
                    break
                k += 1
            self._ckpt_sync = k
        if k == 0:
            return 0
        if self._token is not None and now != self._ckpt_now:
            # O(1) certainty test: the cumulative window [wlo, whi] is the
            # (conservatively shrunk) intersection of every prefix
            # position's certain test-time interval; inside it no stored
            # node count can have drifted.  Outside, fall back to the
            # exact per-position scan.
            if not (self._ckpt_wlo[k - 1] <= now <= self._ckpt_whi[k - 1]):
                k = self._ckpt_token_prefix(k, now)
                if k == 0:
                    return 0
        full = k // _CKPT_STRIDE
        i0 = 0
        if full:
            np.copyto(temp, self._ckpt_snap[full - 1])
            i0 = full * _CKPT_STRIDE
        for i in range(i0, k):
            item = items[i]
            ids = item[2]
            completion = item[3]
            if len(ids) <= 4:
                for node in ids:
                    temp[node] = completion
            else:
                temp[item[1].ids] = completion
        return k

    def _ckpt_token_prefix(self, k: int, now: float) -> int:
        """Cap ``k`` at the first position whose node-count token is not
        *certainly* the stored one at test time ``now``.

        Rare path: only runs when the O(1) cumulative window check fails,
        to find the shorter prefix whose per-position windows all contain
        ``now``.  Any position outside its window — band-adjacent ``g``,
        expired budget, or a not-yet-arrived task whose bound pins to its
        arrival — conservatively ends the prefix and re-walks.
        """
        items = self._ckpt_items
        for i in range(k):
            entry = items[i][1]
            win = entry.ckpt_win
            if win is None:
                win = entry.ckpt_win = self._ckpt_window(
                    items[i][0], entry.n_req
                )
            if not (win[0] <= now <= win[1]):
                return i
        return k

    def _ckpt_window(
        self, task: DivisibleTask, n0: int
    ) -> tuple[float, float]:
        """The certain test-time window of a placement's node-count token.

        While ``now`` lies in ``[t_lo, t_hi]``, the paper bound's
        ``g(now) = 1 - sigma*worst_cms / (absdl - now)`` stays strictly
        inside the guard-banded interval of the stored count ``n0``
        (:class:`_NodeBoundTable`), so the bound provably returns ``n0``
        and reuse is bitwise-safe.  The bounds come from rearranging the
        band inequalities for ``now`` and shrinking by a 1e-6-relative
        margin that dwarfs the rearrangement rounding — a window pass is
        therefore strictly conservative, and a near-edge ``now`` merely
        re-walks.  The window is intrinsic to ``(task, n0)``: it never
        goes stale and is cached on the memo entry.
        """
        table = self._bound_table
        j = table.n - n0
        arr = task.arrival
        sig = task.sigma * self._worst_cms
        absdl = arr + task.deadline
        lo = table.lo[j]
        one_lo = 1.0 - lo
        if one_lo > 0.0:
            q = sig / one_lo
            t_hi = absdl - q - 1e-6 * (q + abs(absdl) + 1.0)
        else:  # pragma: no cover - lo >= 1 is never certain
            t_hi = -math.inf
        if n0 > 1:
            q = sig / (1.0 - table.hi[j + 1])
            t_lo = absdl - q + 1e-6 * (q + abs(absdl) + 1.0)
            if arr > t_lo:
                t_lo = arr
        else:
            t_lo = arr
        return (t_lo, t_hi)

    def _ckpt_splice(
        self,
        k: int,
        side: list,
        reservations: NodeReservations,
        now: float,
    ) -> None:
        """Commit a walk's result: keep prefix ``k``, append ``side``.

        Called for every accepted walk (full result) and for rejected
        *cold* walks (the committed-queue prefix ahead of the newcomer's
        slot, which the rejection cannot have changed).  The
        token-constancy columns and snapshots of kept positions never go
        stale — they depend only on the task, its stored node count and
        the base vector — so only the new suffix positions are recorded:
        strided snapshot rows are rebuilt from the running buffer exactly
        when a stride boundary falls inside the appended region, and the
        cumulative certainty window continues from the kept prefix.  The
        walk's base vector is promoted from the staging buffer on cold
        walks (``k == 0``); a warm walk validated it unchanged.
        """
        items = self._ckpt_items
        tids = self._ckpt_tids
        del items[k:]
        del tids[k:]
        total = k + len(side)
        if total > self._ckpt_cap:
            self._ckpt_grow(total)
        if k == 0:
            np.copyto(self._ckpt_base, self._ckpt_newbase)
        stride = _CKPT_STRIDE
        snap = self._ckpt_snap
        run = self._ckpt_run
        need_rows = (total // stride) > (k // stride)
        if need_rows:
            # Rebuild the running state at position ``k`` from the nearest
            # kept snapshot (byte-identical replay of at most a stride).
            full = k // stride
            np.copyto(run, snap[full - 1] if full else self._ckpt_base)
            for i in range(full * stride, k):
                item = items[i]
                ids = item[2]
                completion = item[3]
                if len(ids) <= 4:
                    for node in ids:
                        run[node] = completion
                else:
                    run[item[1].ids] = completion
        push = self._token is not None
        if push:
            if k:
                wlo = float(self._ckpt_wlo[k - 1])
                whi = float(self._ckpt_whi[k - 1])
            else:
                wlo = -math.inf
                whi = math.inf
            wlo_col = self._ckpt_wlo
            whi_col = self._ckpt_whi
        i = k
        for item in side:
            items.append(item)
            tids.append(item[0].task_id)
            if need_rows:
                ids = item[2]
                completion = item[3]
                if len(ids) <= 4:
                    for node in ids:
                        run[node] = completion
                else:
                    run[item[1].ids] = completion
            if push:
                entry = item[1]
                win = entry.ckpt_win
                if win is None:
                    win = entry.ckpt_win = self._ckpt_window(
                        item[0], entry.n_req
                    )
                if win[0] > wlo:
                    wlo = win[0]
                if win[1] < whi:
                    whi = win[1]
                wlo_col[i] = wlo
                whi_col[i] = whi
            i += 1
            if need_rows and not (i % stride):
                np.copyto(snap[i // stride - 1], run)
        self._ckpt_res = reservations
        self._ckpt_epoch = reservations.epoch
        self._ckpt_now = now
        self._ckpt_valid = True
        # The store now mirrors a prefix of the walk's own order, which is
        # exactly what the order cache holds.
        self._ckpt_sync = len(items)

    def _ckpt_grow(self, need: int) -> None:
        """Grow the checkpoint capacity (snapshot rows and, for the paper
        rule, token columns) to at least ``need`` positions, preserving
        stored values (amortized doubling)."""
        new_cap = 64 if self._ckpt_cap == 0 else self._ckpt_cap
        while new_cap < need:
            new_cap *= 2
        rows = new_cap // _CKPT_STRIDE
        snap = np.empty((rows, self._n), dtype=np.float64)
        old_snap = self._ckpt_snap
        if old_snap is not None:
            snap[: old_snap.shape[0]] = old_snap
        self._ckpt_snap = snap
        if self._token is not None:
            for name in ("_ckpt_wlo", "_ckpt_whi"):
                old = getattr(self, name)
                arr = np.empty(new_cap, dtype=np.float64)
                if old is not None:
                    arr[: old.size] = old
                setattr(self, name, arr)
        self._ckpt_cap = new_cap

    def _ordered_queue(
        self, waiting: Sequence[DivisibleTask], new_task: DivisibleTask
    ) -> list[DivisibleTask]:
        """Policy order of ``[*waiting, new_task]``, maintained incrementally.

        The reference walk re-sorts the whole queue on every admission test
        — O(Q log Q) key builds per arrival, the last superlinear term left
        in the hot path.  Both policies' keys are *total* orders (the
        ``task_id`` tie-break makes every comparison strict), so the sorted
        order of any task set is unique and any sorted list stays sorted
        under element removal.  That licenses an exact incremental scheme:

        * keep the previously computed order;
        * drop tasks that have since left the queue (started, or a probed
          task that was never submitted) — an O(Q) id filter;
        * bisect the newcomer into its slot — O(log Q) key evaluations.

        Whenever the current ``waiting`` set is not a subset of the cached
        order (fresh test instance, external callers driving ``try_admit``
        directly), it falls back to the reference's full sort.  Either
        path returns the exact list ``policy.order([*waiting, new_task])``
        would.

        Two steady-state fast paths skip even the O(Q) id filter by
        recognizing the previous call's waiting set: unchanged (the last
        newcomer was rejected — drop it from the cached order) or grown
        by exactly the last newcomer (it was accepted — the cached order
        is already the waiting order).  Both are verified element-wise
        (tuple equality short-circuits on object identity), never
        assumed.  As a byproduct every path records the exact common
        prefix between the new order and the cached one in
        ``_order_common`` (``-1`` when it rebuilt from scratch), which is
        what lets the checkpoint restore match its stored queue prefix in
        O(1) instead of comparing task ids position by position.
        """
        cached = self._order_cache
        n_wait = len(waiting)
        key = self.policy.key
        w = tuple(waiting)
        prev_w = self._order_waiting
        self._order_waiting = w
        if cached is not None:
            prev_pos = self._insert_pos
            if prev_w is not None and len(cached) == len(prev_w) + 1:
                if w == prev_w:
                    if cached[prev_pos] is new_task:
                        # Same newcomer re-tested against the same waiting
                        # set (a probe followed by its routed submit):
                        # the order is identical, agreement is total.
                        self._order_common = len(cached)
                        return cached
                    # Same waiting set: the cached order minus the
                    # rejected (or probed-only) previous newcomer.
                    kept = cached.copy()
                    del kept[prev_pos]
                    pos = bisect_right(kept, key(new_task), key=key)
                    kept.insert(pos, new_task)
                    self._order_common = prev_pos if prev_pos < pos else pos
                    self._insert_pos = pos
                    self._order_cache = kept
                    return kept
                if (
                    n_wait == len(prev_w) + 1
                    and w[n_wait - 1] is cached[prev_pos]
                    and w[: n_wait - 1] == prev_w
                ):
                    # Waiting grew by exactly the accepted previous
                    # newcomer: the cached order already orders it.
                    kept = cached.copy()
                    pos = bisect_right(kept, key(new_task), key=key)
                    kept.insert(pos, new_task)
                    self._order_common = pos
                    self._insert_pos = pos
                    self._order_cache = kept
                    return kept
            if len(cached) >= n_wait:
                ids = {task.task_id for task in waiting}
                kept = [task for task in cached if task.task_id in ids]
                if len(kept) == n_wait:
                    pos = bisect_right(kept, key(new_task), key=key)
                    kept.insert(pos, new_task)
                    if len(cached) == n_wait:
                        common = pos
                    else:
                        # First departed position in the cached order caps
                        # the agreement between old and new order.
                        common = 0
                        for task in cached:
                            if task.task_id not in ids:
                                break
                            common += 1
                        if pos < common:
                            common = pos
                    self._order_common = common
                    self._insert_pos = pos
                    self._order_cache = kept
                    return kept
        ordered = self.policy.order([*waiting, new_task])
        # The keys are a total order, so the newcomer's slot is exactly
        # where bisect says it is (needed by the checkpoint re-seed and
        # the batch engine's O(1) probe lookup).
        self._insert_pos = bisect_right(ordered, key(new_task), key=key) - 1
        self._order_common = -1
        self._order_cache = ordered
        return ordered

    def _fallback(self) -> SchedulabilityTest:
        """Reference walk for reservation sizes the scratch buffers don't fit
        (lazy, cached separately so the fast path stays enabled)."""
        fallback = self._fallback_test
        if fallback is None:
            fallback = self._fallback_test = SchedulabilityTest(
                self.policy, self.partitioner, self.cluster
            )
        return fallback

    # -- node-count bounds -------------------------------------------------
    def _min_nodes_worst(self, sigma: float, budget: float) -> int | None:
        """``dlt.min_nodes`` at the cluster's worst-case costs, with the
        constant ``log(beta)`` precomputed (bitwise-identical results)."""
        if budget <= 0:
            return None
        g = 1.0 - (sigma * self._worst_cms) / budget
        if g <= 0.0:
            return None
        if g >= 1.0:  # pragma: no cover - unreachable with positive costs
            return 1
        n = math.ceil(math.log(g) / self._log_b_worst - dlt.FEASIBILITY_RTOL)
        if n < 1:
            n = 1
        return None if n > self._n else n

    def _node_count_token(self, task: DivisibleTask, now: float) -> int | None:
        """``ñ_min`` / ``n_min`` at the admission-test time — the paper
        rules' only dependence on ``now`` (Eq. 14 / [22])."""
        t_test = now if now > task.arrival else task.arrival
        return self._min_nodes_worst(
            task.sigma, task.arrival + task.deadline - t_test
        )

    # -- shared placement plumbing ---------------------------------------
    def _candidates(
        self, task: DivisibleTask, avail: "NDArray[np.float64]"
    ) -> tuple["NDArray[np.intp]", "NDArray[np.float64]"]:
        """Floored + ordered candidates, exactly as the reference ``place``
        (:func:`repro.core.partition.sorted_candidates`) computes them."""
        floored = self._floored
        np.maximum(avail, task.arrival, out=floored)
        if self._order_avail:
            order = floored.argsort(kind="stable")
        else:
            order = np.lexsort((self._tiebreak, floored))
        return order, floored[order]

    def _dlt_completion(
        self,
        sigma: float,
        order_n: "NDArray[np.intp]",
        releases: "NDArray[np.float64]",
        shared: _SharedPrefixAlphas | None = None,
    ) -> tuple[float, "NDArray[np.float64]"]:
        """Eq. 4-7 over the chosen nodes — ``build_model`` bitwise, minus
        validation and the intermediate :class:`HeterogeneousModel`."""
        n = releases.shape[0]
        rn = float(releases[-1])
        if self._homog:
            cms, cps = self._cms, self._cps
            e = self._exec_coeff[n - 1] * sigma * self._cost_sum
            iit = rn - releases
            cps_eff = (e / (e + iit)) * cps
            alphas = _prefix_alphas_scalar_cms(cms, cps_eff)
            exec_time = sigma * cms + float(alphas[-1]) * sigma * cps
        else:
            if shared is not None:
                cms_vec = shared._cms[:n]
                cps_vec = shared._cps[:n]
                a0 = shared.alphas(n)
            else:
                cms_vec, cps_vec = self.cluster.costs_for(order_n)
                a0 = _alphas_vec(cms_vec, cps_vec)
            e = float(
                sigma * (a0 * cms_vec).sum() + a0[-1] * sigma * cps_vec[-1]
            )
            iit = rn - releases
            cps_eff = (e / (e + iit)) * cps_vec
            alphas = _alphas_vec(cms_vec, cps_eff)
            exec_time = float(
                sigma * (alphas * cms_vec).sum()
                + float(alphas[-1]) * sigma * float(cps_vec[-1])
            )
        return rn + exec_time, alphas

    def _dlt_entry(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared: _SharedPrefixAlphas | None = None,
    ) -> _MemoEntry | None:
        """Build a DLT-IIT plan for ``n`` nodes; ``None`` if infeasible."""
        releases = sorted_avail[:n]
        completion, alphas = self._dlt_completion(
            task.sigma, order[:n], releases, shared
        )
        if not feasible_by(completion, task.absolute_deadline):
            return None
        release_t = tuple(releases.tolist())
        ids = order[:n].copy()
        plan = _trusted_plan(
            task,
            self.partitioner.method,
            tuple(ids.tolist()),
            release_t,
            release_t,
            tuple(alphas.tolist()),
            float(completion),
        )
        return _MemoEntry(b"", None, plan, ids)

    def _opr_entry(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared: _SharedPrefixAlphas | None = None,
    ) -> _MemoEntry | None:
        """Build an OPR plan for ``n`` nodes; ``None`` if infeasible."""
        sigma = task.sigma
        releases = sorted_avail[:n]
        rn = float(releases[-1])
        if self._homog:
            exec_time = self._exec_coeff[n - 1] * sigma * self._cost_sum
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
            alphas = dlt.opr_alphas(n, self._cms, self._cps)
        else:
            if shared is not None:
                cms_sel = shared._cms[:n]
                cps_sel = shared._cps[:n]
                alphas = shared.alphas(n)
            else:
                cms_sel, cps_sel = self.cluster.costs_for(order[:n])
                alphas = _alphas_vec(cms_sel, cps_sel)
            exec_time = float(
                sigma * (alphas * cms_sel).sum()
                + alphas[-1] * sigma * cps_sel[-1]
            )
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
        ids = order[:n].copy()
        plan = _trusted_plan(
            task,
            self.partitioner.method,
            tuple(ids.tolist()),
            tuple(releases.tolist()),
            (rn,) * n,
            tuple(alphas.tolist()),
            float(completion),
        )
        return _MemoEntry(b"", None, plan, ids)

    # -- placements (entry builder ``self._entry`` = DLT-IIT or OPR) ------
    def _place_paper_rule(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """Paper rule: ``ñ_min`` / ``n_min`` at the admission-test time."""
        n_req = (
            self._node_count_token(task, now) if token is _UNSET else token
        )
        if n_req is None:
            return _MemoEntry(b"", None, None, None)
        order, sorted_avail = self._candidates(task, avail)
        entry = self._entry(task, order, sorted_avail, n_req)
        if entry is None:
            return _MemoEntry(b"", n_req, None, None)
        entry.n_req = n_req
        return entry

    def _place_all_nodes(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """"-AN" variants: always the whole cluster, exact feasibility."""
        order, sorted_avail = self._candidates(task, avail)
        entry = self._entry(task, order, sorted_avail, self._n)
        return entry if entry is not None else _MemoEntry(b"", None, None, None)

    def _place_fixed_point(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """Fixed-point ablation scan, monotonicity-aware.

        The reference scans ``k = 1..N`` evaluating the node-count bound
        at each candidate start time and trying a placement whenever
        ``n_req <= k``.  Because ``sorted_avail`` is non-decreasing the
        bound is non-decreasing in ``k``, which licenses three exact
        shortcuts (the accepted plan is unchanged): start at the first
        ``k`` that can satisfy ``n_req <= k``, jump ``k`` straight to
        ``n_req`` whenever the bound exceeds it, and skip repeated
        ``n_req`` values whose placement already failed (the placement
        depends on ``n_req`` alone, not ``k``).  ``None`` from the bound
        is terminal: the budget only shrinks as ``k`` grows.
        """
        order, sorted_avail = self._candidates(task, avail)
        shared = self._shared_prefix(order)
        tracer = self._tracer
        scanned = 0
        big_n = self._n
        failed_n = 0
        k = 1
        while k <= big_n:
            n_req = self._min_nodes_worst(
                task.sigma,
                task.arrival + task.deadline - float(sorted_avail[k - 1]),
            )
            if n_req is None:
                break
            if n_req > k:
                k = n_req
                continue
            if n_req > failed_n:
                if tracer is not None:
                    scanned += 1
                entry = self._entry(task, order, sorted_avail, n_req, shared)
                if entry is not None:
                    if tracer is not None:
                        tracer.event(
                            "admission.node_scan",
                            "admission",
                            now,
                            task=task.task_id,
                            placements=scanned,
                            n=n_req,
                        )
                    return entry
                failed_n = n_req
            k += 1
        if tracer is not None:
            tracer.event(
                "admission.node_scan",
                "admission",
                now,
                task=task.task_id,
                placements=scanned,
                n=None,
            )
        return _MemoEntry(b"", None, None, None)

    def _shared_prefix(
        self, order: "NDArray[np.intp]"
    ) -> _SharedPrefixAlphas | None:
        """Shared prefix-cumprod helper for heterogeneous scans."""
        if self._homog:
            return None
        cms_vec, cps_vec = self.cluster.costs_for(order)
        return _SharedPrefixAlphas(cms_vec, cps_vec)

    # -- stochastic / generic partitioners --------------------------------
    def _place_via_partitioner(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _MemoEntry:
        """Defer to the partitioner's own ``place`` (User-Split)."""
        plan = self.partitioner.place(task, avail, self.cluster, now)
        if plan is None:
            return _MemoEntry(b"", None, None, None)
        return _MemoEntry(
            b"", None, plan, np.asarray(plan.node_ids, dtype=np.intp)
        )
