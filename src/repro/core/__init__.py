"""The paper's primary contribution: DLT-based real-time scheduling with IITs.

Sub-modules
-----------
``dlt``
    Homogeneous-cluster divisible load theory closed forms from the
    predecessor paper [22] (β, E(σ,n), geometric OPR partition, exact n_min).
``het_model``
    The heterogeneous-model construction of Section 4.1.1 (Eq. 1-7, 14):
    different processor available times → equivalent simultaneous-allocation
    heterogeneous cluster, optimal partition, execution-time estimate Ê and
    the safe node-count bound ñ_min.
``partition``
    Partitioner strategy objects (DLT-IIT, OPR from [22], User-Split) that
    turn (task, node availability) into a :class:`PlacementPlan` or a
    rejection.
``policies``
    EDF / FIFO task-ordering policies.
``reservations``
    The scalar next-free-time node model behind ``Release(node_k)`` of
    Figure 2.
``admission``
    The schedulability test of Figure 2 (reference implementation).
``fastpath``
    The optimized admission engine: bit-identical decisions, a fraction of
    the cost (memoized plans, specialized kernels, monotonic scans).
``scheduler``
    The online dynamic scheduler driving admission, commitment and dispatch.
``algorithms``
    Named algorithm factory (EDF-DLT, FIFO-OPR-MN, ...).
"""

from repro.core.admission import SchedulabilityTest
from repro.core.algorithms import ALGORITHMS, AlgorithmSpec, make_algorithm
from repro.core.cluster import ClusterProfile, ClusterSpec
from repro.core.fastpath import FastSchedulabilityTest, make_admission_test
from repro.core.partition import (
    DltIitPartitioner,
    OprPartitioner,
    Partitioner,
    PlacementPlan,
    UserSplitPartitioner,
)
from repro.core.policies import EdfPolicy, FifoPolicy, SchedulingPolicy
from repro.core.reservations import NodeReservations
from repro.core.scheduler import ClusterScheduler
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "ClusterProfile",
    "ClusterScheduler",
    "ClusterSpec",
    "DivisibleTask",
    "DltIitPartitioner",
    "EdfPolicy",
    "FastSchedulabilityTest",
    "FifoPolicy",
    "NodeReservations",
    "OprPartitioner",
    "Partitioner",
    "PlacementPlan",
    "SchedulabilityTest",
    "SchedulingPolicy",
    "TaskOutcome",
    "TaskRecord",
    "UserSplitPartitioner",
    "make_admission_test",
    "make_algorithm",
]
