"""Homogeneous-cluster divisible load theory closed forms (from [22]).

These are the building blocks the paper inherits from its predecessor,
"Real-Time Divisible Load Scheduling for Cluster Computing" (Lin, Lu,
Deogun, Goddard; RTAS 2007), cited as [22]:

* the *optimal partitioning rule* (OPR) for ``n`` identical nodes allocated
  simultaneously — chunk fractions form a geometric sequence in
  ``beta = Cps/(Cms+Cps)`` so that all nodes finish at the same instant;
* the resulting execution time

  .. math::  E(\\sigma, n) = \\frac{1-\\beta}{1-\\beta^n}\\,\\sigma(Cms+Cps)

* the exact minimum node count ``n_min`` to finish within a time budget,
  obtained by inverting ``E`` (the same ``ceil(ln gamma / ln beta)`` form
  the new paper re-derives as an upper bound ``ñ_min`` in Eq. 14).

All functions are pure and side-effect free; array-friendly variants used
by the workload generator live at the bottom.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = [
    "beta",
    "execution_time",
    "execution_time_array",
    "gamma",
    "het_alphas",
    "het_execution_time",
    "min_nodes",
    "opr_alphas",
    "saturated_execution_time",
]

#: Relative tolerance used for feasibility comparisons throughout the
#: package.  The admission analysis is exact in real arithmetic; this guard
#: only absorbs float rounding so a mathematically feasible task is never
#: rejected by an ulp.
FEASIBILITY_RTOL = 1e-9


def _check_costs(cms: float, cps: float) -> None:
    if not (math.isfinite(cms) and cms > 0):
        raise InvalidParameterError(f"cms must be finite and > 0, got {cms}")
    if not (math.isfinite(cps) and cps > 0):
        raise InvalidParameterError(f"cps must be finite and > 0, got {cps}")


def beta(cms: float, cps: float) -> float:
    """``beta = Cps / (Cms + Cps)`` (Eq. 8).  Strictly inside (0, 1)."""
    _check_costs(cms, cps)
    return cps / (cms + cps)


def execution_time(sigma: float, n: int, cms: float, cps: float) -> float:
    """``E(sigma, n)`` — OPR execution time, simultaneous allocation ([22]).

    .. math:: E(\\sigma, n) = \\frac{1-\\beta}{1-\\beta^n} \\sigma (Cms + Cps)

    This is the time from the start of the first chunk transmission until
    all ``n`` nodes finish computing, when every node is available at time 0
    and chunks follow the optimal (geometric) partition.

    Raises
    ------
    InvalidParameterError
        If ``sigma <= 0``, ``n < 1`` or costs are invalid.
    """
    _check_costs(cms, cps)
    if sigma <= 0:
        raise InvalidParameterError(f"sigma must be > 0, got {sigma}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    b = beta(cms, cps)
    # (1 - b) / (1 - b**n) is numerically delicate for b -> 1 (cps >> cms):
    # use expm1/log1p so that e.g. cps=1e6, cms=1 stays accurate.
    log_b = math.log1p(-cms / (cms + cps))  # log(beta), exact for small cms
    denom = -math.expm1(n * log_b)  # 1 - beta**n
    return (1.0 - b) / denom * sigma * (cms + cps)


def saturated_execution_time(sigma: float, cms: float, cps: float) -> float:
    """``lim_{n->inf} E(sigma, n) = sigma * Cms``.

    Even with unlimited nodes the head node must push all ``sigma`` units
    through its sequential distribution, so ``sigma*Cms`` lower-bounds every
    schedule.  Feasibility of any deadline hinges on exceeding this.
    """
    _check_costs(cms, cps)
    if sigma <= 0:
        raise InvalidParameterError(f"sigma must be > 0, got {sigma}")
    return sigma * cms


def opr_alphas(n: int, cms: float, cps: float) -> "NDArray[np.float64]":
    """Optimal partition fractions for simultaneous allocation ([22]).

    ``alpha_1 = (1-beta)/(1-beta^n)`` and ``alpha_i = beta^(i-1) * alpha_1``;
    they sum to one and make all nodes finish at the same time
    ``E(sigma, n)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` vector of fractions, descending, summing to 1.
    """
    _check_costs(cms, cps)
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    b = beta(cms, cps)
    powers = np.power(b, np.arange(n, dtype=np.float64))
    alphas = powers / powers.sum()
    return alphas


def gamma(sigma: float, cms: float, budget: float) -> float:
    """``gamma = 1 - sigma*Cms / budget`` (Eq. 14).

    ``budget`` is the available wall-clock time ``A + D - r_n``.  A task is
    infeasible whenever ``gamma <= 0``: the budget would not even cover the
    sequential transmission of the data.
    """
    if budget <= 0:
        return -math.inf
    return 1.0 - (sigma * cms) / budget


def min_nodes(
    sigma: float,
    cms: float,
    cps: float,
    budget: float,
    *,
    max_nodes: int | None = None,
) -> int | None:
    """Minimum ``n`` with ``E(sigma, n) <= budget`` — ``ceil(ln g / ln b)``.

    This single closed form serves two roles in the papers:

    * for the OPR baseline of [22] it is the *exact* ``n_min`` (the
      inequality chain inverts exactly for simultaneous allocation);
    * for the new DLT-IIT algorithm it is the safe upper bound ``ñ_min`` of
      Eq. 14 evaluated with ``budget = A + D - r_n`` — allocating ``ñ_min``
      nodes guarantees the deadline because ``Ê <= E`` (Eq. 9).

    Parameters
    ----------
    budget:
        Time available for the task once started (``A + D - r_n``).
    max_nodes:
        If given, return ``None`` whenever the requirement exceeds it.

    Returns
    -------
    int or None
        Node count, or ``None`` if no finite ``n`` (or none ``<= max_nodes``)
        meets the budget.
    """
    _check_costs(cms, cps)
    if sigma <= 0:
        raise InvalidParameterError(f"sigma must be > 0, got {sigma}")
    g = gamma(sigma, cms, budget)
    if g <= 0.0:
        return None
    if g >= 1.0:  # unreachable with sigma,cms > 0; defensive
        return 1
    log_b = math.log1p(-cms / (cms + cps))
    n = math.ceil(math.log(g) / log_b - FEASIBILITY_RTOL)
    n = max(n, 1)
    if max_nodes is not None and n > max_nodes:
        return None
    return n


def _check_cost_vectors(
    cms: "Sequence[float] | NDArray[np.float64]",
    cps: "Sequence[float] | NDArray[np.float64]",
) -> tuple["NDArray[np.float64]", "NDArray[np.float64]"]:
    cms_vec = np.asarray(cms, dtype=np.float64)
    cps_vec = np.asarray(cps, dtype=np.float64)
    if cms_vec.ndim != 1 or cps_vec.ndim != 1 or cms_vec.size == 0:
        raise InvalidParameterError(
            "cost vectors must be non-empty 1-D sequences"
        )
    if cms_vec.shape != cps_vec.shape:
        raise InvalidParameterError(
            f"cms and cps vectors must match, got {cms_vec.size} != {cps_vec.size}"
        )
    if not (np.all(np.isfinite(cms_vec)) and np.all(cms_vec > 0)):
        raise InvalidParameterError("every cms entry must be finite and > 0")
    if not (np.all(np.isfinite(cps_vec)) and np.all(cps_vec > 0)):
        raise InvalidParameterError("every cps entry must be finite and > 0")
    return cms_vec, cps_vec


def het_alphas(
    cms: "Sequence[float] | NDArray[np.float64]",
    cps: "Sequence[float] | NDArray[np.float64]",
) -> "NDArray[np.float64]":
    """Optimal chunk fractions for heterogeneous nodes, simultaneous start.

    Generalizes the geometric :func:`opr_alphas` to per-node cost vectors
    ``(Cms_i, Cps_i)`` in dispatch order.  The optimality principle (all
    nodes finish computing at the same instant under sequential chunk
    distribution) yields the recurrence

    .. math:: \\alpha_i = X_i\\,\\alpha_{i-1}, \\qquad
              X_i = \\frac{Cps_{i-1}}{Cms_i + Cps_i}

    normalized so the fractions sum to 1.  With uniform vectors every
    ``X_i`` collapses to ``beta = Cps/(Cms+Cps)`` and the result is the
    classic geometric partition of [22].

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` fractions, positive, summing to 1.
    """
    cms_vec, cps_vec = _check_cost_vectors(cms, cps)
    n = int(cms_vec.size)
    if n == 1:
        return np.ones(1)
    x = cps_vec[:-1] / (cms_vec[1:] + cps_vec[1:])
    prods = np.cumprod(x)  # prod_{j=2..i} X_j for i = 2..n
    denom = 1.0 + prods.sum()
    alphas = np.empty(n)
    alphas[0] = 1.0 / denom
    alphas[1:] = prods / denom
    return alphas


def het_execution_time(
    sigma: float,
    cms: "Sequence[float] | NDArray[np.float64]",
    cps: "Sequence[float] | NDArray[np.float64]",
    *,
    alphas: "NDArray[np.float64] | None" = None,
) -> float:
    """``E(sigma)`` on heterogeneous nodes all free at time 0.

    Under the equal-finish partition of :func:`het_alphas`, node ``n``'s
    completion is the full sequential transmission plus its own compute:

    .. math:: E = \\sigma \\sum_i \\alpha_i Cms_i
                  + \\alpha_n \\sigma Cps_n

    (every node finishes at this same instant).  With uniform vectors the
    value agrees with the closed form :func:`execution_time` to float
    round-off; homogeneous callers should keep using the closed form,
    which is what :meth:`ClusterProfile.min_execution_time` dispatches to.

    ``alphas`` may be supplied to reuse an already-computed partition.
    """
    if sigma <= 0:
        raise InvalidParameterError(f"sigma must be > 0, got {sigma}")
    cms_vec, cps_vec = _check_cost_vectors(cms, cps)
    if alphas is None:
        alphas = het_alphas(cms_vec, cps_vec)
    a = np.asarray(alphas, dtype=np.float64)
    return float(sigma * (a * cms_vec).sum() + a[-1] * sigma * cps_vec[-1])


def execution_time_array(
    sigma: "NDArray[np.float64] | float",
    n: int,
    cms: float,
    cps: float,
) -> "NDArray[np.float64]":
    """Vectorized ``E(sigma, n)`` over an array of data sizes.

    Used by the workload generator, which must compute ``E(sigma_i, N)``
    for every generated task to enforce ``D_i > E(sigma_i, N)``.
    """
    _check_costs(cms, cps)
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    sig = np.asarray(sigma, dtype=np.float64)
    if np.any(sig <= 0):
        raise InvalidParameterError("all sigma values must be > 0")
    b = cps / (cms + cps)
    log_b = math.log1p(-cms / (cms + cps))
    denom = -math.expm1(n * log_b)
    return (1.0 - b) / denom * sig * (cms + cps)
