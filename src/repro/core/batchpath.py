"""Batch-vectorized admission engine: the Figure-2 test as array programs.

:class:`BatchSchedulabilityTest` is the third admission engine behind
:func:`repro.core.fastpath.make_admission_test` (``engine="batch"``): it
produces **bit-identical** :class:`~repro.core.admission.AdmissionDecision`
streams to both the reference walk and the fast engine while replacing the
remaining per-task Python work of the walk with per-*batch* numpy passes.
The property suite (``tests/test_fastpath_properties.py``) replays random
scenarios through all three engines and asserts record-by-record equality.

What is batched, and why it stays bitwise-exact
-----------------------------------------------
The fast engine made one admission test cheap; the structure left on the
table is that each test still loops Python-side over the queue, and each
queued task re-evaluates the same family of scalar expressions.  Three
kernels lift those loops into arrays:

1. **Queue-prefix replay as one array program** — the walk's scratch
   availability vector is floored at ``now`` *once* (every later write is
   a completion ``>= now``, so the reference's per-task
   ``max(release, now)`` is the identity from then on), and the
   ``ñ_min`` / ``n_min`` node-count bound of *every* queued task is
   classified in a single vectorized pass (see kernel 2).  Rejected walks
   return early without materializing a single
   :class:`~repro.core.partition.PlacementPlan`: entries carry raw arrays
   and build their (tuple-heavy) plan objects lazily, only when a walk
   accepts — under overload most walks reject, so most placements never
   pay tuple conversion at all.
2. **All-candidates bound evaluation without transcendentals** — the
   bound ``n_req = ceil(log(g)/log(beta) - rtol)`` is the hot path's only
   transcendental.  Inverting it: ``n_req <= m`` exactly when
   ``g >= B[m] = exp((m + rtol) * log(beta))`` in real arithmetic, so a
   precomputed threshold table classifies any batch of ``g`` values with
   one ``searchsorted`` — no logs.  Because ``B[m]`` and ``log(g)`` each
   carry at most a few ulp of libm error, comparisons against
   ``B[m] * (1 ± 1e-9)`` are *certain* (the guard band is ~6 orders of
   magnitude wider than any rounding effect); only ``g`` values inside a
   guard band fall back to the reference's scalar formula, which is the
   bitwise ground truth.  The same table evaluates every ``k = 1..N``
   candidate of the ``fixed_point_node_count`` scan in one ``(candidates,)``
   vector pass, with the monotone scan applied to the precomputed bounds.
3. **Fleet-arrival member kernel** — :meth:`probe_completion` runs the
   identical walk but returns only the newcomer's earliest-finish
   estimate, skipping decision/plan materialization entirely.
   :class:`~repro.fleet.sim.FleetSimulation`'s probing routers call it
   per member on one arrival (composing with the shared per-arrival probe
   cache), and the walk's memo makes the subsequent routed ``submit``
   replay the probed member's walk as cache hits.

Additionally the memo keeps **two** entries per task instead of one: a
failed walk (a rejected newcomer perturbs the availability seen by every
task after its slot) no longer evicts the committed-prefix entry, so
high-reject regimes — exactly where admission control earns its keep —
stop recomputing the same committed placements after every rejection.

Everything the fast engine does not specialize (multi-round partitioners,
``redraw_on_replan`` User-Split, mismatched reservation sizes) falls back
through the inherited paths, so the batch engine is always safe to enable.
"""

from __future__ import annotations

from bisect import bisect_right
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import dlt
from repro.core.admission import AdmissionDecision
from repro.core.fastpath import (  # noqa: F401  (_NodeBoundTable re-exported)
    _UNSET,
    FastSchedulabilityTest,
    _alphas_vec,
    _NodeBoundTable,
    _trusted_plan,
)
from repro.core.partition import PlacementPlan, feasible_by
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = ["BatchSchedulabilityTest"]


class _BatchEntry:
    """One task's placement with the plan object deferred.

    ``ids is None`` marks an infeasible placement (the walk rejects on
    it).  Feasible entries carry the raw arrays a
    :class:`~repro.core.partition.PlacementPlan` is built from;
    :meth:`BatchSchedulabilityTest._materialize` converts them exactly
    once, on the first *accepted* walk that needs the plan — rejected
    walks never pay the tuple conversions.  ``alphas is None`` on a
    homogeneous OPR entry defers even the fraction vector
    (``dlt.opr_alphas`` depends only on ``n`` and the cluster costs).
    """

    __slots__ = (
        "key",
        "n_req",
        "task",
        "ids",
        "ids_list",
        "completion",
        "releases",
        "alphas",
        "opr_rn",
        "plan",
        "ckpt_win",
    )

    def __init__(
        self,
        task: DivisibleTask,
        ids: "NDArray[np.intp] | None" = None,
        completion: float = 0.0,
        releases: "NDArray[np.float64] | None" = None,
        alphas: "NDArray[np.float64] | None" = None,
        opr_rn: float | None = None,
        n_req: int | None = None,
    ) -> None:
        self.key = b""
        self.n_req = n_req
        self.task = task
        self.ids = ids
        # Scalar writes beat a fancy-index write for the few-node plans
        # the paper rule mostly emits; computed once, reused on every hit.
        self.ids_list = ids.tolist() if ids is not None else None
        self.completion = completion
        self.releases = releases
        self.alphas = alphas
        self.opr_rn = opr_rn
        self.plan: PlacementPlan | None = None
        #: Lazily computed certain test-time window of the node-count
        #: token (see ``FastSchedulabilityTest._ckpt_window``).
        self.ckpt_win: tuple[float, float] | None = None


class BatchSchedulabilityTest(FastSchedulabilityTest):
    """Batch-vectorized, bit-identical Figure-2 schedulability test.

    Same constructor and :meth:`try_admit` contract as the reference
    :class:`~repro.core.admission.SchedulabilityTest`; see the module
    docstring for the kernel inventory.  Inherits the fast engine's
    ordered-queue maintenance, placement arithmetic, fallback rules and
    observability surface (plan-cache counters labelled
    ``engine="batch"``, admission spans, the opt-in ``profile`` phase
    timers) — all of it zero-perturbation, per the :mod:`repro.obs`
    contract.
    """

    #: Engine label carried into per-engine metric labels.
    engine_name = "batch"

    def __init__(
        self, policy, partitioner, cluster, *, obs=None, checkpoint=True
    ) -> None:
        super().__init__(
            policy, partitioner, cluster, obs=obs, checkpoint=checkpoint
        )
        if obs is not None:
            self._tier2_hits = obs.registry.counter(
                "admission_plan_cache_tier2_hits_total",
                "Placements served from the placement-input (tier-2) cache.",
                labels={"engine": self.engine_name},
            )
        else:
            self._tier2_hits = None
        #: Tier-2 hits tallied during the current walk, folded into the
        #: counter by :meth:`_flush_cache_tallies` once per test.
        self._tier2_pending = 0
        #: tid -> up to two :class:`_BatchEntry` (most recent first); the
        #: second slot preserves the committed-prefix entry across the
        #: perturbed keys a failed walk writes.
        self._memo: dict[int, list[_BatchEntry]] = {}
        #: tid -> placement-input key ``(n, ids, releases)`` -> entry: the
        #: second memo tier.  A newcomer mid-queue bumps its chosen nodes
        #: to a *late* completion, so a task behind it usually keeps the
        #: exact same ``n`` earliest nodes — the full availability vector
        #: differs (tier 1 misses) but the placement inputs do not.
        self._plan_cache: dict[int, dict[tuple, _BatchEntry]] = {}

    # -- the walk ---------------------------------------------------------
    def try_admit(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> AdmissionDecision:
        """Run the test for ``new_task`` against the committed state.

        Same contract (and bit-identical result) as
        :meth:`repro.core.admission.SchedulabilityTest.try_admit`.
        """
        if self._delegate is not None:
            return self._delegate.try_admit(new_task, waiting, reservations, now)
        if reservations.nodes != self._n:
            return self._fallback().try_admit(new_task, waiting, reservations, now)
        tracer = self._tracer
        if tracer is None:
            entries, failed = self._walk(new_task, waiting, reservations, now)
        else:
            with tracer.span(
                "admission.try_admit",
                "admission",
                now,
                task=new_task.task_id,
                queue=len(waiting),
                engine=self.engine_name,
            ):
                entries, failed = self._walk(
                    new_task, waiting, reservations, now
                )
                tracer.event(
                    "admission.decision",
                    "admission",
                    now,
                    task=new_task.task_id,
                    accepted=failed is None,
                )
        if failed is not None:
            return AdmissionDecision(accepted=False, plans={}, failed_task_id=failed)
        return AdmissionDecision(
            accepted=True,
            plans={
                item[0].task_id: self._materialize(item[1]) for item in entries
            },
        )

    def probe_completion(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> float | None:
        """The newcomer's estimated completion, or ``None`` on rejection.

        The fleet member kernel: identical walk (and identical memo
        effects — a routed ``submit`` right after replays it as cache
        hits) but no decision object and no plan materialization, which
        a probe discards anyway.
        """
        if self._delegate is not None or reservations.nodes != self._n:
            decision = self.try_admit(new_task, waiting, reservations, now)
            if not decision.accepted:
                return None
            return decision.plans[new_task.task_id].est_completion
        tracer = self._tracer
        if tracer is None:
            entries, failed = self._walk(new_task, waiting, reservations, now)
        else:
            with tracer.span(
                "admission.probe",
                "admission",
                now,
                task=new_task.task_id,
                queue=len(waiting),
                engine=self.engine_name,
            ):
                entries, failed = self._walk(
                    new_task, waiting, reservations, now
                )
        if failed is not None:
            return None
        pos = self._insert_pos
        if pos < len(entries) and entries[pos][0] is new_task:
            return entries[pos][3]
        target = new_task.task_id
        for item in entries:
            if item[0].task_id == target:
                return item[3]
        raise AssertionError("newcomer missing from its own walk")

    def _walk(
        self,
        new_task: DivisibleTask,
        waiting: Sequence[DivisibleTask],
        reservations: NodeReservations,
        now: float,
    ) -> tuple[list[tuple], int | None]:
        """Shared walk core: ``(entries, None)`` or ``([], failed_tid)``.

        ``entries`` is the checkpoint item list — per-position
        ``(task, entry, ids_list, completion)`` tuples in policy order,
        aliased by the prefix-checkpoint store and therefore only valid
        until the next walk mutates it (both callers consume it
        immediately).  When a checkpoint prefix validates
        (:meth:`~repro.core.fastpath.FastSchedulabilityTest._ckpt_restore`),
        those positions skip memo probing and placement entirely: their
        completions are replayed into the scratch vector and the walk
        starts at the first changed position.
        """
        prof = self.profile
        tracer = self._tracer
        hits = self._cache_hits
        if prof is not None:
            t0 = perf_counter()
        ordered = self._ordered_queue(waiting, new_task)
        if prof is not None:
            prof.add("queue_order", perf_counter() - t0)
        memo = self._memo
        if len(memo) > 2 * len(ordered) + 32:
            keep = {t.task_id for t in ordered}
            for tid in [k for k in memo if k not in keep]:
                del memo[tid]
            plan_cache = self._plan_cache
            for tid in [k for k in plan_cache if k not in keep]:
                del plan_cache[tid]

        temp = self._temp
        np.copyto(temp, reservations.release_times)
        # Every write below is a completion >= now, so flooring once here
        # makes the reference's per-task max(release, now) the identity.
        np.maximum(temp, now, out=temp)
        ckpt_on = self._ckpt_enabled
        start = 0
        side: list[tuple] = []
        if ckpt_on:
            if prof is not None:
                tk = perf_counter()
            start = self._ckpt_restore(ordered, temp, reservations, now)
            if prof is not None:
                prof.add("prefix_restore", perf_counter() - tk)
            if hits is not None:
                self._ckpt_tally(start)
            if start == 0:
                np.copyto(self._ckpt_newbase, temp)
        place = self._place
        assert place is not None  # delegate handled every other case
        use_tokens = self._token is not None
        bound_token = self._bound_token
        memo_on = self._memo_enabled
        token: object = _UNSET
        n_hits = n_misses = 0
        for task in ordered[start:] if start else ordered:
            tid = task.task_id
            if use_tokens:
                arr = task.arrival
                t_test = now if now > arr else arr
                token = bound_token(task.sigma, arr + task.deadline - t_test)
            entry: _BatchEntry | None = None
            key = b""
            slot: list[_BatchEntry] | None = None
            if memo_on:
                key = temp.tobytes()
                slot = memo.get(tid)
                if slot is not None:
                    cached = slot[0]
                    if cached.key == key and (
                        not use_tokens or cached.n_req == token
                    ):
                        entry = cached
                    elif len(slot) == 2:
                        cached = slot[1]
                        if cached.key == key and (
                            not use_tokens or cached.n_req == token
                        ):
                            entry = cached
                            slot[0], slot[1] = slot[1], slot[0]
            if entry is None:
                n_misses += 1
                if prof is not None:
                    tk = perf_counter()
                entry = place(task, temp, now, token)
                if prof is not None:
                    prof.add("kernel_place", perf_counter() - tk)
                if tracer is not None:
                    tracer.event(
                        "admission.kernel",
                        "admission",
                        now,
                        task=tid,
                        n=None if entry.ids_list is None else len(entry.ids_list),
                    )
                if memo_on:
                    entry.key = key
                    if slot is None:
                        memo[tid] = [entry]
                    elif slot[0] is not entry:
                        # A tier-2 hit can resurface an object already in
                        # the slot; keep the pair free of duplicates.
                        if len(slot) == 2 and slot[1] is entry:
                            slot[0], slot[1] = slot[1], slot[0]
                        else:
                            slot.insert(0, entry)
                            del slot[2:]
            else:
                n_hits += 1
                if tracer is not None:
                    tracer.event(
                        "admission.plan_cache", "admission", now, task=tid
                    )
            ids_list = entry.ids_list
            if ids_list is None:
                if hits is not None:
                    self._flush_cache_tallies(n_hits, n_misses)
                if ckpt_on and start == 0:
                    # A rejection leaves the committed queue untouched, so
                    # the positions walked *before the newcomer's slot*
                    # re-seed the store (see the fast engine's walk).
                    keep = self._insert_pos
                    if len(side) < keep:
                        keep = len(side)
                    if keep:
                        self._ckpt_splice(
                            0,
                            side if keep == len(side) else side[:keep],
                            reservations,
                            now,
                        )
                return [], tid
            completion = entry.completion
            if len(ids_list) <= 4:
                for i in ids_list:
                    temp[i] = completion
            else:
                temp[entry.ids] = completion
            side.append((task, entry, ids_list, completion))
        if hits is not None:
            self._flush_cache_tallies(n_hits, n_misses)
        if ckpt_on:
            self._ckpt_splice(start, side, reservations, now)
            return self._ckpt_items, None
        return side, None

    def _flush_cache_tallies(self, n_hits: int, n_misses: int) -> None:
        """As the fast engine's, plus the batched tier-2 hit tally."""
        if n_hits:
            self._cache_hits.inc(n_hits)
        if n_misses:
            self._cache_misses.inc(n_misses)
        if self._tier2_pending:
            self._tier2_hits.inc(self._tier2_pending)
            self._tier2_pending = 0

    # -- node-count bound via the threshold table --------------------------
    def _bound_token(self, sigma: float, budget: float) -> int | None:
        """:meth:`_min_nodes_worst`, decided by comparisons when certain.

        Same scalar ``g`` as the reference; the threshold table answers
        everything outside a guard band without a transcendental, and the
        guard-band remainder recomputes exactly.
        """
        if budget <= 0.0:
            return None
        g = 1.0 - (sigma * self._worst_cms) / budget
        table = self._bound_table
        c = bisect_right(table.asc, g)
        if c:
            if g >= table.lo[c - 1] and (c == table.n or g <= table.hi[c]):
                return table.n - c + 1
        elif g <= table.hi[0]:
            return None
        return self._min_nodes_worst(sigma, budget)

    def _fixed_point_bounds(
        self, task: DivisibleTask, sorted_avail: "NDArray[np.float64]"
    ) -> list[int | None]:
        """The bound at every candidate count ``k = 1..N`` in one pass."""
        absdl = task.arrival + task.deadline
        sigma = task.sigma
        bound_token = self._bound_token
        return [bound_token(sigma, absdl - s) for s in sorted_avail.tolist()]

    # -- candidates against the pre-floored scratch vector -----------------
    def _candidates_batch(
        self, task: DivisibleTask, temp: "NDArray[np.float64]", now: float
    ) -> tuple["NDArray[np.intp]", "NDArray[np.float64]"]:
        """As :meth:`_candidates`, but ``temp`` is already floored at
        ``now`` so the per-task arrival floor only runs when it can bite
        (``arrival > now`` — direct callers only; the drivers never do)."""
        if task.arrival > now:
            base = self._floored
            np.maximum(temp, task.arrival, out=base)
        else:
            base = temp
        if self._order_avail:
            order = base.argsort(kind="stable")
        else:
            order = np.lexsort((self._tiebreak, base))
        return order, base[order]

    # -- lazy entry builders (DLT-IIT / OPR) -------------------------------
    def _dlt_entry(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared=None,
    ) -> _BatchEntry | None:
        """DLT-IIT placement for ``n`` nodes; ``None`` if infeasible."""
        releases = sorted_avail[:n]
        completion, alphas = self._dlt_completion(
            task.sigma, order[:n], releases, shared
        )
        if not feasible_by(completion, task.absolute_deadline):
            return None
        return _BatchEntry(
            task,
            ids=order[:n].copy(),
            completion=float(completion),
            releases=releases,
            alphas=alphas,
        )

    def _opr_entry(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared=None,
    ) -> _BatchEntry | None:
        """OPR placement for ``n`` nodes; ``None`` if infeasible."""
        sigma = task.sigma
        releases = sorted_avail[:n]
        rn = float(releases[-1])
        if self._homog:
            exec_time = self._exec_coeff[n - 1] * sigma * self._cost_sum
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
            alphas = None  # deferred to _materialize (dlt.opr_alphas)
        else:
            if shared is not None:
                cms_sel = shared._cms[:n]
                cps_sel = shared._cps[:n]
                alphas = shared.alphas(n)
            else:
                cms_sel, cps_sel = self.cluster.costs_for(order[:n])
                alphas = _alphas_vec(cms_sel, cps_sel)
            exec_time = float(
                sigma * (alphas * cms_sel).sum()
                + alphas[-1] * sigma * cps_sel[-1]
            )
            completion = rn + exec_time
            if not feasible_by(completion, task.absolute_deadline):
                return None
        return _BatchEntry(
            task,
            ids=order[:n].copy(),
            completion=float(completion),
            releases=releases,
            alphas=alphas,
            opr_rn=rn,
        )

    def _entry_cached(
        self,
        task: DivisibleTask,
        order: "NDArray[np.intp]",
        sorted_avail: "NDArray[np.float64]",
        n: int,
        shared=None,
    ) -> _BatchEntry | None:
        """Tier-2 memo: placements keyed on their *actual* inputs.

        A placement depends only on ``(n, ids[:n], releases[:n])``.  A
        newcomer bumps its chosen nodes to a *late* completion, so tasks
        behind it usually keep the identical ``n``-smallest candidate
        prefix even though the full availability vector (the tier-1 key)
        changed — hitting here skips the placement arithmetic entirely.
        """
        if not self._memo_enabled:
            return self._entry(task, order, sorted_avail, n, shared)
        key = (n, order[:n].tobytes(), sorted_avail[:n].tobytes())
        cache = self._plan_cache.get(task.task_id)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                if self._tier2_hits is not None:
                    self._tier2_pending += 1
                return hit
        entry = self._entry(task, order, sorted_avail, n, shared)
        if entry is not None:
            if cache is None:
                cache = self._plan_cache[task.task_id] = {}
            elif len(cache) >= 8:
                cache.clear()
            cache[key] = entry
        return entry

    def _materialize(self, entry: _BatchEntry) -> PlacementPlan:
        """Build (once) the exact plan the fast engine would have built."""
        plan = entry.plan
        if plan is not None:
            return plan
        releases_t = tuple(entry.releases.tolist())
        alphas = entry.alphas
        if entry.opr_rn is None:
            dispatch = releases_t
        else:
            dispatch = (entry.opr_rn,) * len(releases_t)
            if alphas is None:
                alphas = dlt.opr_alphas(len(releases_t), self._cms, self._cps)
        plan = _trusted_plan(
            entry.task,
            self.partitioner.method,
            tuple(entry.ids_list),
            releases_t,
            dispatch,
            tuple(alphas.tolist()),
            entry.completion,
        )
        entry.plan = plan
        return plan

    # -- placements (entry builder ``self._entry`` = DLT-IIT or OPR) ------
    def _place_paper_rule(
        self,
        task: DivisibleTask,
        temp: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _BatchEntry:
        """Paper rule: ``ñ_min`` / ``n_min`` at the admission-test time."""
        n_req = self._node_count_token(task, now) if token is _UNSET else token
        if n_req is None:
            return _BatchEntry(task)
        order, sorted_avail = self._candidates_batch(task, temp, now)
        entry = self._entry_cached(task, order, sorted_avail, n_req)
        if entry is None:
            return _BatchEntry(task, n_req=n_req)
        entry.n_req = n_req
        return entry

    def _place_all_nodes(
        self,
        task: DivisibleTask,
        temp: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _BatchEntry:
        """"-AN" variants: always the whole cluster, exact feasibility."""
        order, sorted_avail = self._candidates_batch(task, temp, now)
        entry = self._entry_cached(task, order, sorted_avail, self._n)
        return entry if entry is not None else _BatchEntry(task)

    def _place_fixed_point(
        self,
        task: DivisibleTask,
        temp: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _BatchEntry:
        """Fixed-point ablation scan over precomputed all-``k`` bounds.

        The scan logic (start at the first satisfiable ``k``, jump to
        ``n_req``, skip failed ``n_req`` repeats, stop at ``None``) is the
        fast engine's, applied to the vectorized bound vector — same
        accepted plan, same rejection.
        """
        order, sorted_avail = self._candidates_batch(task, temp, now)
        shared = self._shared_prefix(order)
        bounds = self._fixed_point_bounds(task, sorted_avail)
        big_n = self._n
        failed_n = 0
        k = 1
        while k <= big_n:
            n_req = bounds[k - 1]
            if n_req is None:
                break
            if n_req > k:
                k = n_req
                continue
            if n_req > failed_n:
                entry = self._entry_cached(task, order, sorted_avail, n_req, shared)
                if entry is not None:
                    return entry
                failed_n = n_req
            k += 1
        return _BatchEntry(task)

    # -- stochastic / generic partitioners --------------------------------
    def _place_via_partitioner(
        self,
        task: DivisibleTask,
        temp: "NDArray[np.float64]",
        now: float,
        token: object = _UNSET,
    ) -> _BatchEntry:
        """Defer to the partitioner's own ``place`` (User-Split)."""
        plan = self.partitioner.place(task, temp, self.cluster, now)
        if plan is None:
            return _BatchEntry(task)
        entry = _BatchEntry(
            task,
            ids=np.asarray(plan.node_ids, dtype=np.intp),
            completion=plan.est_completion,
        )
        entry.plan = plan
        return entry
