"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch the package's failures with a
single ``except`` clause without swallowing genuine bugs (``TypeError``,
``ZeroDivisionError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """A model parameter is outside its valid domain (e.g. Cms <= 0)."""


class InvalidTaskError(ReproError, ValueError):
    """A task tuple (A, sigma, D) is malformed."""


class InfeasibleTaskError(ReproError):
    """A task cannot meet its deadline under any node assignment.

    Raised only by APIs documented to raise; the scheduler itself converts
    infeasibility into a *rejection* (the paper's model: the RMS negotiates a
    new deadline with the client) rather than an exception.
    """


class ScheduleConsistencyError(ReproError):
    """The committed schedule violated an internal invariant.

    This signals a bug in the scheduler (double-booked node, dispatch of an
    unknown plan, time running backwards) and is never expected in normal
    operation.
    """


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, running a finished engine.
    """


class TheoremViolationError(ReproError):
    """An executed task finished *later* than its estimated completion time.

    Theorem 4 of the paper proves this cannot happen; the validator raises
    this error if the simulation ever contradicts it (i.e. a reproduction
    bug, modulo floating-point tolerance).
    """
