"""Cluster model: a head node and N identical processing nodes behind a switch.

Section 3 of the paper: the head node ``P0`` accepts/rejects tasks, runs the
scheduling algorithm, divides the workload and ships data chunks
*sequentially* (within a task) to the processing nodes ``P1..PN``.  All
nodes have identical computational power, all switch→node links identical
bandwidth.  Linear cost model:

* computing a load ``sigma`` on one node takes ``Cp(sigma) = sigma * Cps``;
* transmitting it over one link takes ``Cm(sigma) = sigma * Cms``.

Output-data transfer is not modelled (negligible; see Section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import InvalidParameterError

__all__ = ["ClusterSpec"]


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Static description of a homogeneous cluster.

    Parameters
    ----------
    nodes:
        ``N`` — number of processing nodes (head node excluded), >= 1.
    cms:
        Cost of transmitting one unit of workload head→node (> 0).  The
        closed forms of the paper divide by ``ln(beta)`` with
        ``beta = Cps/(Cms+Cps)``; ``Cms = 0`` would make ``beta = 1`` and is
        rejected (the paper always uses ``Cms >= 1``).
    cps:
        Cost of processing one unit of workload on one node (> 0).
    """

    nodes: int
    cms: float
    cps: float

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, int) or self.nodes < 1:
            raise InvalidParameterError(f"nodes must be an int >= 1, got {self.nodes}")
        if not math.isfinite(self.cms) or self.cms <= 0:
            raise InvalidParameterError(f"cms must be finite and > 0, got {self.cms}")
        if not math.isfinite(self.cps) or self.cps <= 0:
            raise InvalidParameterError(f"cps must be finite and > 0, got {self.cps}")

    @property
    def beta(self) -> float:
        """``beta = Cps / (Cms + Cps)`` (Eq. 8), in (0, 1)."""
        return self.cps / (self.cms + self.cps)

    def transmission_time(self, sigma: float) -> float:
        """``Cm(sigma) = sigma * Cms`` — one-link transfer time."""
        return sigma * self.cms

    def computation_time(self, sigma: float) -> float:
        """``Cp(sigma) = sigma * Cps`` — single-node compute time."""
        return sigma * self.cps
