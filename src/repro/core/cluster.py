"""Cluster model: a head node and N processing nodes behind a switch.

Section 3 of the paper: the head node ``P0`` accepts/rejects tasks, runs the
scheduling algorithm, divides the workload and ships data chunks
*sequentially* (within a task) to the processing nodes ``P1..PN``.  Linear
cost model per node ``P_i``:

* computing a load ``sigma`` on node ``i`` takes ``Cp(sigma) = sigma * Cps_i``;
* transmitting it over the switch→node link takes ``Cm(sigma) = sigma * Cms_i``.

The paper studies the *homogeneous* cluster (all ``Cps_i`` equal, all
``Cms_i`` equal) and models staggered availability as artificial per-node
heterogeneity (Section 4.1.1).  :class:`ClusterProfile` makes the per-node
cost vectors first-class, so the same analysis covers genuinely
heterogeneous resource-sharing networks (cf. arXiv:1902.01898); the uniform
constructor :meth:`ClusterProfile.homogeneous` reproduces the paper's
cluster bit-for-bit.

Output-data transfer is not modelled (negligible; see Section 3).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = ["ClusterProfile", "ClusterSpec"]


def _validated_vector(name: str, values: Sequence[float]) -> tuple[float, ...]:
    vec = tuple(float(v) for v in values)
    if not vec:
        raise InvalidParameterError(f"{name} must be non-empty")
    for v in vec:
        if not math.isfinite(v) or v <= 0:
            raise InvalidParameterError(
                f"every {name} entry must be finite and > 0, got {v}"
            )
    return vec


def _uniform_value(vec: tuple[float, ...]) -> float | None:
    """The single value of a uniform vector, or ``None`` if entries differ."""
    first = vec[0]
    return first if all(v == first for v in vec) else None


@dataclass(frozen=True, slots=True)
class ClusterProfile:
    """Static description of a (possibly heterogeneous) cluster.

    Parameters
    ----------
    cms_vector:
        Per-link transmission costs ``Cms_1 .. Cms_N`` (> 0).  The closed
        forms divide by ``ln(beta_i)`` with ``beta_i = Cps_i/(Cms_i+Cps_i)``;
        ``Cms_i = 0`` would make ``beta_i = 1`` and is rejected.
    cps_vector:
        Per-node processing costs ``Cps_1 .. Cps_N`` (> 0).  Lower cost =
        faster node.

    Vectors are indexed by *node id* (0-based).  Use
    :meth:`homogeneous` for the paper's uniform cluster — it preserves the
    pre-vector behaviour bit-for-bit because every uniform profile
    dispatches to the original scalar closed forms.
    """

    cms_vector: tuple[float, ...]
    cps_vector: tuple[float, ...]
    #: Cached uniform scalars (``None`` when the vector is non-uniform).
    _cms_uniform: float | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _cps_uniform: float | None = field(
        init=False, repr=False, compare=False, default=None
    )
    #: Cached array views of the cost tuples (placement hot path).
    _cms_array: "NDArray[np.float64]" = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _cps_array: "NDArray[np.float64]" = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cms_vector", _validated_vector("cms_vector", self.cms_vector)
        )
        object.__setattr__(
            self, "cps_vector", _validated_vector("cps_vector", self.cps_vector)
        )
        if len(self.cms_vector) != len(self.cps_vector):
            raise InvalidParameterError(
                f"cms_vector and cps_vector must have equal length, got "
                f"{len(self.cms_vector)} != {len(self.cps_vector)}"
            )
        object.__setattr__(self, "_cms_uniform", _uniform_value(self.cms_vector))
        object.__setattr__(self, "_cps_uniform", _uniform_value(self.cps_vector))
        object.__setattr__(
            self, "_cms_array", np.asarray(self.cms_vector, dtype=np.float64)
        )
        object.__setattr__(
            self, "_cps_array", np.asarray(self.cps_vector, dtype=np.float64)
        )

    # -- constructors ------------------------------------------------------
    @classmethod
    def homogeneous(cls, nodes: int, cms: float, cps: float) -> "ClusterProfile":
        """The paper's uniform cluster: ``N`` identical nodes and links."""
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            raise InvalidParameterError(f"nodes must be an int >= 1, got {nodes}")
        if not isinstance(cms, (int, float)) or not math.isfinite(cms) or cms <= 0:
            raise InvalidParameterError(f"cms must be finite and > 0, got {cms}")
        if not isinstance(cps, (int, float)) or not math.isfinite(cps) or cps <= 0:
            raise InvalidParameterError(f"cps must be finite and > 0, got {cps}")
        return cls(
            cms_vector=(float(cms),) * nodes,
            cps_vector=(float(cps),) * nodes,
        )

    @classmethod
    def from_vectors(
        cls,
        *,
        cps: Sequence[float],
        cms: Sequence[float] | float = 1.0,
    ) -> "ClusterProfile":
        """Build from explicit per-node costs; scalar ``cms`` broadcasts."""
        cps_vec = _validated_vector("cps_vector", cps)
        if isinstance(cms, (int, float)):
            cms_vec: Sequence[float] = (float(cms),) * len(cps_vec)
        else:
            cms_vec = cms
        return cls(cms_vector=tuple(cms_vec), cps_vector=cps_vec)

    @classmethod
    def with_spread(
        cls,
        nodes: int,
        cms: float,
        cps: float,
        *,
        speed_spread: float = 0.0,
        bandwidth_spread: float = 0.0,
    ) -> "ClusterProfile":
        """Deterministic linear heterogeneity around nominal costs.

        ``speed_spread = s`` places node ``i``'s processing cost linearly in
        ``[cps·(1 - s/2), cps·(1 + s/2)]`` (node 0 fastest), keeping the
        mean cost at ``cps``; ``bandwidth_spread`` does the same for the
        link costs.  ``s = 0`` returns exactly :meth:`homogeneous` — the
        natural sweep axis from the paper's cluster into genuinely
        heterogeneous ones.  Both spreads must lie in ``[0, 2)`` so every
        cost stays positive.
        """
        for name, s in (
            ("speed_spread", speed_spread),
            ("bandwidth_spread", bandwidth_spread),
        ):
            if not math.isfinite(s) or not 0.0 <= s < 2.0:
                raise InvalidParameterError(f"{name} must be in [0, 2), got {s}")
        if speed_spread == 0.0 and bandwidth_spread == 0.0:
            return cls.homogeneous(nodes, cms, cps)
        if not isinstance(nodes, int) or nodes < 1:
            raise InvalidParameterError(f"nodes must be an int >= 1, got {nodes}")

        def spread_vec(nominal: float, s: float) -> tuple[float, ...]:
            if s == 0.0 or nodes == 1:
                return (float(nominal),) * nodes
            lo = nominal * (1.0 - s / 2.0)
            return tuple(
                lo + nominal * s * i / (nodes - 1) for i in range(nodes)
            )

        return cls(
            cms_vector=spread_vec(cms, bandwidth_spread),
            cps_vector=spread_vec(cps, speed_spread),
        )

    # -- shape -------------------------------------------------------------
    @property
    def nodes(self) -> int:
        """``N`` — number of processing nodes (head node excluded)."""
        return len(self.cps_vector)

    @property
    def is_homogeneous(self) -> bool:
        """True when every node and every link has identical costs."""
        return self._cms_uniform is not None and self._cps_uniform is not None

    # -- scalar views (homogeneous clusters only) --------------------------
    @property
    def cms(self) -> float:
        """The uniform link cost; raises on heterogeneous links."""
        if self._cms_uniform is None:
            raise InvalidParameterError(
                "cluster links are heterogeneous; use cms_vector"
            )
        return self._cms_uniform

    @property
    def cps(self) -> float:
        """The uniform node cost; raises on heterogeneous nodes."""
        if self._cps_uniform is None:
            raise InvalidParameterError(
                "cluster nodes are heterogeneous; use cps_vector"
            )
        return self._cps_uniform

    @property
    def beta(self) -> float:
        """``beta = Cps / (Cms + Cps)`` (Eq. 8), in (0, 1); uniform clusters."""
        return self.cps / (self.cms + self.cps)

    # -- worst-case views (safe bounds on any node subset) -----------------
    @property
    def worst_cms(self) -> float:
        """Largest link cost — safe scalar bound for any node subset."""
        return self._cms_uniform if self._cms_uniform is not None else max(
            self.cms_vector
        )

    @property
    def worst_cps(self) -> float:
        """Largest node cost — safe scalar bound for any node subset."""
        return self._cps_uniform if self._cps_uniform is not None else max(
            self.cps_vector
        )

    # -- per-node access ---------------------------------------------------
    @property
    def cms_array(self) -> "NDArray[np.float64]":
        """Read-only per-link cost vector as an ndarray (by node id)."""
        view = self._cms_array.view()
        view.flags.writeable = False
        return view

    @property
    def cps_array(self) -> "NDArray[np.float64]":
        """Read-only per-node cost vector as an ndarray (by node id)."""
        view = self._cps_array.view()
        view.flags.writeable = False
        return view

    def costs_for(
        self, node_ids: Sequence[int] | "NDArray[np.intp]"
    ) -> tuple["NDArray[np.float64]", "NDArray[np.float64]"]:
        """``(Cms_i, Cps_i)`` arrays for the given node ids, in id order given."""
        ids = np.asarray(node_ids, dtype=np.intp)
        return self._cms_array[ids], self._cps_array[ids]

    def transmission_time(self, sigma: float, node: int = 0) -> float:
        """``Cm(sigma) = sigma * Cms_i`` — one-link transfer time."""
        return sigma * self.cms_vector[node]

    def computation_time(self, sigma: float, node: int = 0) -> float:
        """``Cp(sigma) = sigma * Cps_i`` — single-node compute time."""
        return sigma * self.cps_vector[node]

    # -- analysis façade ---------------------------------------------------
    def min_execution_time(self, sigma: float) -> float:
        """``E(sigma, N)`` with all ``N`` nodes free at time 0.

        Homogeneous clusters dispatch to the exact closed form of [22]
        (bit-identical to the pre-vector code path); heterogeneous clusters
        use the generalized equal-finish recurrence over the id-ordered
        cost vectors.
        """
        from repro.core import dlt

        if self.is_homogeneous:
            return dlt.execution_time(sigma, self.nodes, self.cms, self.cps)
        return dlt.het_execution_time(sigma, self.cms_vector, self.cps_vector)

    def min_execution_time_array(
        self, sigmas: "NDArray[np.float64] | float"
    ) -> "NDArray[np.float64]":
        """Vectorized :meth:`min_execution_time` over data sizes.

        ``E`` is linear in ``sigma`` for a fixed node set, so the
        heterogeneous branch scales one unit-load solve.
        """
        from repro.core import dlt

        if self.is_homogeneous:
            return dlt.execution_time_array(sigmas, self.nodes, self.cms, self.cps)
        sig = np.asarray(sigmas, dtype=np.float64)
        if np.any(sig <= 0):
            raise InvalidParameterError("all sigma values must be > 0")
        unit = dlt.het_execution_time(1.0, self.cms_vector, self.cps_vector)
        return unit * sig

    # -- exports -----------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Flat, JSON/CSV-friendly summary of the cluster.

        Uniform costs export as scalars (byte-compatible with the
        homogeneous-era exports); non-uniform vectors join into a
        comma-separated string so every value stays flat.
        """

        def flat(uniform: float | None, vec: tuple[float, ...]) -> float | str:
            return uniform if uniform is not None else ",".join(
                f"{v:g}" for v in vec
            )

        return {
            "nodes": self.nodes,
            "cms": flat(self._cms_uniform, self.cms_vector),
            "cps": flat(self._cps_uniform, self.cps_vector),
            "heterogeneous": int(not self.is_homogeneous),
        }


def ClusterSpec(nodes: int, cms: float, cps: float) -> ClusterProfile:  # noqa: N802
    """Deprecated constructor for the paper's homogeneous cluster.

    .. deprecated::
        ``ClusterSpec`` described only uniform clusters; per-node cost
        vectors are now first-class in :class:`ClusterProfile`.  This thin
        wrapper keeps old call sites working — it returns
        ``ClusterProfile.homogeneous(nodes, cms, cps)`` and will be removed
        in a future release.
    """
    warnings.warn(
        "ClusterSpec is deprecated; use ClusterProfile.homogeneous(nodes, cms, cps) "
        "or a ClusterProfile with per-node cost vectors",
        DeprecationWarning,
        stacklevel=2,
    )
    return ClusterProfile.homogeneous(nodes, cms, cps)
