"""Event kinds and deterministic same-timestamp ordering.

When several events share a timestamp the kernel processes them in
``EventKind`` order, then insertion order.  The ordering is chosen so that
the world is consistent at every instant:

1. ``COMPLETION`` — a running task finishes; metrics and (in the
   eager-release ablation) node hand-backs happen before anything else
   observes time ``t``.  A task completing exactly when a fault strikes
   has already finished — it is never displaced.
2. ``FAULT`` — the environment changes (node slowdown/crash, link
   degradation, member blackout, or the matching recovery): per-node
   costs and availability mutate, in-flight work on affected nodes is
   displaced and re-admitted.  Faults land *before* starts and arrivals
   so everything deciding at time ``t`` sees the post-fault world.
3. ``START`` — a committed plan begins transmitting; a task whose start
   coincides with a new arrival is *running* (locked, non-replannable) by
   the time the arrival's admission test executes.  A start whose plan
   was invalidated by a same-instant fault re-plan carries a stale
   version and is dropped.
4. ``ARRIVAL`` — a new task reaches the head node and triggers the
   schedulability test (against post-fault availability).
5. ``GENERIC`` — anything else (horizon markers, user callbacks).
"""

from __future__ import annotations

import enum

__all__ = ["EventKind"]


class EventKind(enum.IntEnum):
    """Priority classes; lower value = processed first at equal time."""

    COMPLETION = 0
    FAULT = 1
    START = 2
    ARRIVAL = 3
    GENERIC = 4
