"""Event kinds and deterministic same-timestamp ordering.

When several events share a timestamp the kernel processes them in
``EventKind`` order, then insertion order.  The ordering is chosen so that
the world is consistent at every instant:

1. ``COMPLETION`` — a running task finishes; metrics and (in the
   eager-release ablation) node hand-backs happen before anything else
   observes time ``t``.
2. ``START`` — a committed plan begins transmitting; a task whose start
   coincides with a new arrival is *running* (locked, non-replannable) by
   the time the arrival's admission test executes.
3. ``ARRIVAL`` — a new task reaches the head node and triggers the
   schedulability test.
4. ``GENERIC`` — anything else (horizon markers, user callbacks).
"""

from __future__ import annotations

import enum

__all__ = ["EventKind"]


class EventKind(enum.IntEnum):
    """Priority classes; lower value = processed first at equal time."""

    COMPLETION = 0
    START = 1
    ARRIVAL = 2
    GENERIC = 3
