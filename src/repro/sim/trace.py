"""Chunk-level execution traces.

Optional (off by default for speed): when enabled, the executor records,
for every started task, the transmission window and computation window of
each chunk on each node.  Traces power the validator's overlap checks, the
example scripts' Gantt rendering and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["ChunkTrace", "TaskTrace", "render_gantt"]


@dataclass(frozen=True, slots=True)
class ChunkTrace:
    """One chunk of one task on one node."""

    task_id: int
    node_id: int
    position: int  # task-local index i = 0..n-1 (availability order)
    alpha: float
    release: float  # r_i — node available to this task
    trans_start: float
    trans_end: float
    comp_end: float

    @property
    def pre_transmission_idle(self) -> float:
        """Idle gap between node release and transmission start.

        For IIT-utilizing methods this is the residual wait for the head
        node to reach position ``i`` in the send order; for OPR it also
        contains the full inserted idle time ``r_n - r_i``.
        """
        return self.trans_start - self.release

    @property
    def busy_time(self) -> float:
        """Link + CPU time actually consumed on the node."""
        return self.comp_end - self.trans_start


@dataclass(frozen=True, slots=True)
class TaskTrace:
    """All chunks of one executed task."""

    task_id: int
    method: str
    chunks: tuple[ChunkTrace, ...]

    @property
    def completion(self) -> float:
        """Actual task completion (last computation end)."""
        return max(c.comp_end for c in self.chunks)

    @property
    def start(self) -> float:
        """First transmission start."""
        return min(c.trans_start for c in self.chunks)

    def __iter__(self) -> Iterator[ChunkTrace]:
        return iter(self.chunks)


def render_gantt(
    traces: Iterable[TaskTrace],
    *,
    nodes: int,
    width: int = 78,
    t_start: float | None = None,
    t_end: float | None = None,
) -> str:
    """ASCII Gantt chart of node occupancy (for examples / debugging).

    Each node gets one text row; ``-`` marks transmission, ``#`` marks
    computation, digits mark the task id (mod 10) at the chunk start.
    """
    all_chunks = [c for tr in traces for c in tr.chunks]
    if not all_chunks:
        return "(no executed chunks)"
    lo = min(c.trans_start for c in all_chunks) if t_start is None else t_start
    hi = max(c.comp_end for c in all_chunks) if t_end is None else t_end
    if hi <= lo:
        hi = lo + 1.0
    scale = (width - 1) / (hi - lo)

    rows = [[" "] * width for _ in range(nodes)]

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - lo) * scale)))

    for c in all_chunks:
        if c.node_id >= nodes:
            continue
        row = rows[c.node_id]
        for x in range(col(c.trans_start), col(c.trans_end) + 1):
            row[x] = "-"
        for x in range(col(c.trans_end), col(c.comp_end) + 1):
            row[x] = "#"
        row[col(c.trans_start)] = str(c.task_id % 10)

    lines = [f"t ∈ [{lo:.1f}, {hi:.1f}]  ('-' transmit, '#' compute, digit = task id % 10)"]
    for node_id, row in enumerate(rows):
        lines.append(f"P{node_id + 1:<3d}|{''.join(row)}|")
    return "\n".join(lines)
