"""A minimal deterministic discrete-event simulation kernel.

Design goals, in order: **determinism** (identical runs from identical
inputs — heap ties broken by ``(time, kind, seq)``), **simplicity** (a
binary heap of callbacks; no coroutines, no channels) and **speed** (the
hot loop is a ``heappop`` and a function call).

The kernel knows nothing about clusters or tasks; it executes
``callback(engine, now)`` thunks in timestamp order.  Cancellation uses
the standard lazy-invalidations idiom — :meth:`EventHandle.cancel` marks
the entry, the pop loop discards dead entries — with two refinements for
workloads that cancel heavily (admission re-planning voids every
previously scheduled start directive):

* the engine keeps a live count of cancelled-but-queued entries, making
  :attr:`SimulationEngine.pending_events` O(1) instead of a heap scan;
* when more than half the heap is dead weight (:data:`COMPACT_RATIO`,
  past a small floor of :data:`COMPACT_MIN_EVENTS` entries), the heap is
  compacted in one O(n) filter + heapify pass, so long runs never drag
  an ever-growing tail of cancelled events through every push and pop.

Compaction only removes entries that would have been skipped anyway, so
execution order — and therefore every simulation result — is unchanged.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import SimulationError
from repro.sim.events import EventKind

__all__ = ["COMPACT_MIN_EVENTS", "COMPACT_RATIO", "EventHandle", "SimulationEngine"]

Callback = Callable[["SimulationEngine", float], None]

#: Compact the heap when cancelled entries exceed this fraction of it.
COMPACT_RATIO = 0.5

#: ... but never bother below this heap size (compaction is O(n); tiny
#: heaps are cheaper to drain lazily than to rebuild).
COMPACT_MIN_EVENTS = 64


@dataclass(slots=True)
class EventHandle:
    """Opaque handle returned by :meth:`SimulationEngine.schedule`."""

    time: float
    kind: EventKind
    seq: int
    callback: Callback | None
    cancelled: bool = field(default=False)
    engine: "SimulationEngine | None" = field(default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips (or compacts) it.

        Idempotent, and a no-op for events that already executed.  The
        owning engine is notified so its live-event counter stays exact
        and heavy cancellation triggers heap compaction.
        """
        if self.cancelled or self.callback is None:
            self.cancelled = True  # executed handles stay inert
            return
        self.cancelled = True
        self.callback = None  # free references early
        if self.engine is not None:
            self.engine._note_cancelled()


class SimulationEngine:
    """Event-driven clock + heap.

    Examples
    --------
    >>> eng = SimulationEngine()
    >>> seen = []
    >>> _ = eng.schedule(2.0, EventKind.GENERIC, lambda e, t: seen.append(t))
    >>> _ = eng.schedule(1.0, EventKind.GENERIC, lambda e, t: seen.append(t))
    >>> eng.run()
    >>> seen
    [1.0, 2.0]
    """

    def __init__(self, *, start_time: float = 0.0, tracer=None) -> None:
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time}")
        self._now = start_time
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._processed = 0
        self._running = False
        self._cancelled_in_heap = 0
        #: Optional span tracer (:class:`repro.obs.trace.Tracer` or a
        #: track view).  Dispatch is wrapped in an ``engine.dispatch``
        #: span when set; tracing reads event metadata only, so runs are
        #: bit-identical with or without it.
        self._tracer = tracer

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued — O(1) via a live
        counter maintained by :meth:`EventHandle.cancel` and the pop loop."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """One queued event died; count it and compact the heap when
        cancelled entries outnumber live ones (see module docstring)."""
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) >= COMPACT_MIN_EVENTS
            and self._cancelled_in_heap > COMPACT_RATIO * len(heap)
        ):
            self._heap = [e for e in heap if not e[3].cancelled]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0

    # -- scheduling -------------------------------------------------------
    def schedule(
        self, time: float, kind: EventKind, callback: Callback
    ) -> EventHandle:
        """Enqueue ``callback(engine, time)`` for execution at ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past (strictly before ``now``) or is
            not finite.  Scheduling *at* the current time is allowed — the
            event runs after the current callback returns, in kind order.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        handle = EventHandle(
            time=float(time), kind=kind, seq=self._seq, callback=callback,
            engine=self,
        )
        heapq.heappush(self._heap, (handle.time, int(kind), handle.seq, handle))
        self._seq += 1
        return handle

    # -- execution ----------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event.  Returns False when queue is empty."""
        while self._heap:
            time, _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled or handle.callback is None:
                self._cancelled_in_heap -= 1
                continue
            self._now = time
            callback = handle.callback
            handle.callback = None  # break cycles
            self._processed += 1
            tracer = self._tracer
            if tracer is None:
                callback(self, time)
            else:
                with tracer.span(
                    "engine.dispatch",
                    "engine",
                    time,
                    kind=handle.kind.name,
                    seq=handle.seq,
                ):
                    callback(self, time)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events in order until the queue empties (or past ``until``).

        With ``until`` given, events with timestamps strictly greater than
        ``until`` remain queued and the clock is advanced to ``until``
        (standard horizon semantics).
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        self._running = True
        try:
            if until is None:
                while self.step():
                    pass
                return
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until} which is before now={self._now}"
                )
            while self._heap:
                time, _, _, handle = self._heap[0]
                if handle.cancelled or handle.callback is None:
                    heapq.heappop(self._heap)
                    self._cancelled_in_heap -= 1
                    continue
                if time > until:
                    break
                self.step()
            self._now = max(self._now, until)
        finally:
            self._running = False
