"""Runtime invariant validation.

The paper's guarantees are theorems; the simulator *checks* them on every
run instead of trusting the implementation:

* **Theorem 4** — every executed task's actual completion is no later than
  its admission-time estimate (within float tolerance).
* **Deadline guarantee** — every *accepted* task completes by its absolute
  deadline (follows from Theorem 4 + the schedulability test, but checked
  independently).
* **Node exclusivity** — no two chunks ever overlap on one node (requires
  traces; checked in trace mode).

A violation raises :class:`~repro.core.errors.TheoremViolationError` in
``strict`` mode (default for tests) or is recorded in the report otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import TheoremViolationError
from repro.core.task import TaskRecord
from repro.sim.trace import TaskTrace

__all__ = ["ExecutionValidator", "ValidationReport"]

#: Absolute slack granted to float comparisons of simulation timestamps.
_TOL = 1e-6


@dataclass(slots=True)
class ValidationReport:
    """Aggregated validation outcome of one simulation run."""

    checked_tasks: int = 0
    theorem4_violations: list[str] = field(default_factory=list)
    deadline_violations: list[str] = field(default_factory=list)
    overlap_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not (
            self.theorem4_violations
            or self.deadline_violations
            or self.overlap_violations
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return f"all invariants held over {self.checked_tasks} executed tasks"
        return (
            f"{len(self.theorem4_violations)} Theorem-4, "
            f"{len(self.deadline_violations)} deadline, "
            f"{len(self.overlap_violations)} overlap violations "
            f"over {self.checked_tasks} executed tasks"
        )


class ExecutionValidator:
    """Streaming validator fed by the executor as tasks finish."""

    def __init__(self, *, strict: bool = True) -> None:
        self.strict = strict
        self.report = ValidationReport()

    def check_completion(self, record: TaskRecord) -> None:
        """Validate one finished task (Theorem 4 + deadline)."""
        self.report.checked_tasks += 1
        assert record.actual_completion is not None
        assert record.est_completion is not None

        tol = _TOL * max(1.0, abs(record.est_completion))
        if record.actual_completion > record.est_completion + tol:
            msg = (
                f"task {record.task.task_id}: actual completion "
                f"{record.actual_completion:.9g} exceeds estimate "
                f"{record.est_completion:.9g} (Theorem 4)"
            )
            self.report.theorem4_violations.append(msg)
            if self.strict:
                raise TheoremViolationError(msg)

        deadline = record.task.absolute_deadline
        if record.actual_completion > deadline + _TOL * max(1.0, abs(deadline)):
            msg = (
                f"task {record.task.task_id}: completed "
                f"{record.actual_completion:.9g} after absolute deadline "
                f"{deadline:.9g} despite admission"
            )
            self.report.deadline_violations.append(msg)
            if self.strict:
                raise TheoremViolationError(msg)

    def check_traces(self, traces: list[TaskTrace], nodes: int) -> None:
        """Verify chunk windows never overlap on any node."""
        per_node: dict[int, list[tuple[float, float, int]]] = {
            n: [] for n in range(nodes)
        }
        for tr in traces:
            for c in tr.chunks:
                per_node[c.node_id].append((c.trans_start, c.comp_end, c.task_id))
        for node_id, spans in per_node.items():
            spans.sort()
            for (s1, e1, t1), (s2, e2, t2) in zip(spans, spans[1:]):
                if s2 < e1 - _TOL * max(1.0, abs(e1)):
                    msg = (
                        f"node {node_id}: task {t2} chunk starts {s2:.9g} "
                        f"before task {t1} chunk ends {e1:.9g}"
                    )
                    self.report.overlap_violations.append(msg)
                    if self.strict:
                        raise TheoremViolationError(msg)
