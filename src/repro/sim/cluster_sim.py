"""Cluster executor: run an admitted workload on the simulated cluster.

This is the "discrete simulator" of Section 5.  It owns:

* the event engine (:mod:`repro.sim.engine`),
* the head-node scheduler (:mod:`repro.core.scheduler`),
* the physical model — per-chunk transmission and computation windows on
  the actual homogeneous nodes, with the head node sending a task's chunks
  strictly in node order.

Two modelling switches (both default to the paper's reading, see
DESIGN.md):

``shared_head_link``
    ``False`` (default): the cluster is switched; transmissions of
    *different* tasks to different nodes may overlap, only chunks of the
    same task are serialized (this matches the paper's per-task analysis).
    ``True``: every byte leaves through one head-node link, so chunk
    transmissions serialize globally (ablation S19) — estimates may then be
    exceeded, which the ablation measures.
``eager_release`` (forwarded to the scheduler)
    Hand nodes back at actual rather than estimated completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.algorithms import AlgorithmInstance
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.core.partition import PlacementPlan
from repro.core.scheduler import ClusterScheduler, SchedulerStats
from repro.core.task import DivisibleTask, TaskRecord
from repro.faults.model import FaultEvent, FaultPlan
from repro.obs import Observability
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.sim.trace import ChunkTrace, TaskTrace
from repro.sim.validate import ExecutionValidator, ValidationReport

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = ["ClusterSimulation", "SimulationOutput"]


@dataclass(slots=True)
class SimulationOutput:
    """Everything one simulation run produced.

    ``records`` covers *all* arrivals (accepted and rejected);
    ``validation`` reports invariant checks over executed tasks;
    ``node_busy_time`` is actual link+CPU occupancy per node;
    ``node_allocated_time`` is reservation occupancy (busy + idle-inside-
    allocation, i.e. the IITs); their gap quantifies how much allocated
    capacity each algorithm wastes.
    ``obs_snapshot`` is the run's deterministic metrics snapshot (see
    :mod:`repro.obs`) — wall-clock instruments excluded, so it is
    bit-identical across backends and with or without tracing.
    """

    algorithm: str
    records: dict[int, TaskRecord]
    stats: SchedulerStats
    validation: ValidationReport
    node_busy_time: "NDArray[np.float64]"
    node_allocated_time: "NDArray[np.float64]"
    horizon: float
    traces: list[TaskTrace] = field(default_factory=list)
    obs_snapshot: dict | None = None

    @property
    def reject_ratio(self) -> float:
        """Task Reject Ratio of the run."""
        return self.stats.reject_ratio

    @property
    def executed_tasks(self) -> int:
        """Number of tasks that ran to completion."""
        return self.validation.checked_tasks


class ClusterSimulation:
    """One simulation run: a task trace replayed under one algorithm.

    Parameters
    ----------
    cluster:
        Static cluster description.
    algorithm:
        A configured (policy, partitioner) pair from
        :func:`repro.core.algorithms.make_algorithm`.
    tasks:
        Arrival-ordered task list (the workload generator's output).
    horizon:
        The nominal TotalSimulationTime used for utilization
        normalization.  All queued work is drained past the horizon (the
        paper's reject ratio counts arrivals; completions just need to
        happen).
    validate:
        Check Theorem 4 + deadline guarantees on every executed task.
        Automatically non-strict when ``shared_head_link=True`` (the
        estimates are not sound under global link contention — measuring
        that unsoundness is the point of the ablation).
    trace:
        Record chunk-level traces (slower, more memory).
    admission_engine:
        Admission-test engine (``"fast"`` default / ``"reference"``);
        forwarded to the scheduler.  Outputs are bit-identical either way.
    faults:
        Optional :class:`~repro.faults.model.FaultPlan` (already filtered
        to this cluster).  ``None`` or an *empty* plan is the fault-free
        fast path — bit-identical to a build without the fault layer.
        With faults, validation turns non-strict: a slowed node makes
        actual completions exceed their estimates, which the validator
        then records as honest violations instead of raising.
    obs:
        Optional :class:`repro.obs.Observability` bundle.  Its registry
        backs the scheduler counters and queue-depth histogram; its
        tracer (if any) wraps event dispatch and admission phases in
        spans.  Instrumentation never draws randomness or schedules
        events, so the run is bit-identical with or without it.
    """

    def __init__(
        self,
        cluster: ClusterProfile,
        algorithm: AlgorithmInstance,
        tasks: Sequence[DivisibleTask] = (),
        *,
        horizon: float,
        validate: bool = True,
        trace: bool = False,
        eager_release: bool = False,
        shared_head_link: bool = False,
        admission_engine: str = "fast",
        faults: FaultPlan | None = None,
        obs: Observability | None = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be > 0, got {horizon}")
        if faults is not None and not isinstance(faults, FaultPlan):
            raise InvalidParameterError(
                "faults must be a FaultPlan (materialize a FaultProcess "
                f"first), got {faults!r}"
            )
        self.cluster = cluster
        self.algorithm = algorithm
        self.tasks = list(tasks)
        self.horizon = float(horizon)
        self.trace_enabled = trace
        self.shared_head_link = shared_head_link
        self._check_task_order()
        self._last_arrival = -np.inf
        self._submitted_ids: set[int] = set()
        #: The active fault plan; an empty plan collapses to ``None`` so
        #: every fault-free code path below is the pre-fault-layer one.
        self.faults = faults if faults else None
        self.obs = obs if obs is not None else Observability()

        self.engine = SimulationEngine(tracer=self.obs.tracer)
        self.scheduler = ClusterScheduler(
            cluster,
            algorithm.policy,
            algorithm.partitioner,
            eager_release=eager_release,
            admission_engine=admission_engine,
            obs=self.obs,
        )
        strict = validate and not shared_head_link and self.faults is None
        self.validator = ExecutionValidator(strict=strict)
        self.validate_enabled = validate

        n = cluster.nodes
        # Per-node cost vectors, indexed by node id (uniform for the paper's
        # homogeneous cluster — the arithmetic is then bit-identical to the
        # scalar-cost code this generalizes).
        self._cms_by_node = np.asarray(cluster.cms_vector, dtype=np.float64)
        self._cps_by_node = np.asarray(cluster.cps_vector, dtype=np.float64)
        self._node_free = np.zeros(n)  # actual per-node free times
        self._head_free = 0.0  # only consulted in shared-link mode
        self._busy = np.zeros(n)
        self._allocated = np.zeros(n)
        self._traces: list[TaskTrace] = []
        #: Start events of the currently committed schedule.  Every
        #: accepted arrival bumps the plan version, voiding all previous
        #: directives — cancelling their events (instead of letting them
        #: pop as no-ops) keeps the heap free of dead weight and lets the
        #: engine compact after heavy re-planning.
        self._start_events: list = []
        self._done = False

        #: Structured log of applied faults (one entry per window open),
        #: kept for tests and post-mortems; empty in fault-free runs.
        self.fault_log: list[dict] = []
        if self.faults is not None:
            # Fault bookkeeping, allocated only when a plan is active so
            # the fault-free hot path carries zero extra state or work.
            self._cps_nominal = self._cps_by_node.copy()
            self._cms_nominal = self._cms_by_node.copy()
            self._cps_factors: dict[int, list[float]] = {}
            self._cms_factors: dict[int, list[float]] = {}
            self._down_until = np.zeros(n)
            self._completion_events: dict[int, object] = {}
            self._exec_windows: dict[int, list[tuple[int, float, float]]] = {}
            for event in self.faults.events:
                if event.node is not None and event.node >= n:
                    raise InvalidParameterError(
                        f"fault event targets node {event.node} of a "
                        f"{n}-node cluster: {event!r}"
                    )
                self.engine.schedule(
                    event.time,
                    EventKind.FAULT,
                    lambda eng, t, e=event: self._handle_fault_begin(e),
                )

    @property
    def busy_time(self) -> float:
        """Total actual link+CPU occupancy accrued so far (node-time units)."""
        return float(self._busy.sum())

    def _check_task_order(self) -> None:
        last = -np.inf
        seen: set[int] = set()
        for t in self.tasks:
            if t.arrival < last:
                raise InvalidParameterError(
                    "tasks must be sorted by arrival time "
                    f"(task {t.task_id} at {t.arrival} after {last})"
                )
            if t.task_id in seen:
                raise InvalidParameterError(f"duplicate task id {t.task_id}")
            seen.add(t.task_id)
            last = t.arrival

    # -- event handlers -----------------------------------------------------
    def _handle_arrival(self, task: DivisibleTask) -> None:
        now = self.engine.now
        _, directives = self.scheduler.on_arrival(task, now)
        if not directives:  # rejected: the committed schedule stands
            return
        for handle in self._start_events:
            handle.cancel()
        self._start_events = [
            self.engine.schedule(
                d.start_time,
                EventKind.START,
                lambda eng, t, d=d: self._handle_start(d.task_id, d.version),
            )
            for d in directives
        ]

    def _handle_start(self, task_id: int, version: int) -> None:
        now = self.engine.now
        plan = self.scheduler.on_start(task_id, version, now)
        if plan is None:  # superseded by a later re-plan
            return
        comp_ends = self._execute_plan(plan)
        completion = float(comp_ends.max())
        ends = tuple(float(v) for v in comp_ends)
        handle = self.engine.schedule(
            completion,
            EventKind.COMPLETION,
            lambda eng, t, task_id=task_id, ends=ends: (
                self._handle_completion(task_id, ends)
            ),
        )
        if self.faults is not None:
            self._completion_events[task_id] = handle

    def _execute_plan(self, plan: PlacementPlan) -> "NDArray[np.float64]":
        """Physically execute a plan's chunk sequence; return comp ends."""
        if plan.explicit_chunks is not None:
            return self._replay_explicit(plan)
        sigma = plan.task.sigma
        alphas = np.asarray(plan.alphas)
        node_ids = np.asarray(plan.node_ids, dtype=np.intp)
        trans = alphas * sigma * self._cms_by_node[node_ids]
        comp = alphas * sigma * self._cps_by_node[node_ids]
        releases = np.asarray(plan.dispatch_releases)

        n = len(node_ids)
        comp_ends = np.empty(n)
        chunks: list[ChunkTrace] = []
        windows: list[tuple[int, float, float]] = []
        prev_end = -np.inf
        for i in range(n):
            node = int(node_ids[i])
            start = max(prev_end, float(releases[i]), float(self._node_free[node]))
            if self.shared_head_link:
                start = max(start, self._head_free)
            t_end = start + trans[i]
            if self.shared_head_link:
                self._head_free = t_end
            c_end = t_end + comp[i]
            prev_end = t_end
            comp_ends[i] = c_end
            self._node_free[node] = c_end
            self._busy[node] += trans[i] + comp[i]
            self._allocated[node] += plan.est_completion - plan.release_times[i]
            if self.faults is not None:
                windows.append((node, start, float(c_end)))
            if self.trace_enabled:
                chunks.append(
                    ChunkTrace(
                        task_id=plan.task.task_id,
                        node_id=node,
                        position=i,
                        alpha=float(alphas[i]),
                        release=plan.release_times[i],
                        trans_start=start,
                        trans_end=t_end,
                        comp_end=c_end,
                    )
                )
        if self.faults is not None:
            self._exec_windows[plan.task.task_id] = windows
        if self.trace_enabled:
            self._traces.append(
                TaskTrace(
                    task_id=plan.task.task_id,
                    method=plan.method,
                    chunks=tuple(chunks),
                )
            )
        return comp_ends

    def _replay_explicit(self, plan: PlacementPlan) -> "NDArray[np.float64]":
        """Replay a precomputed (multi-round) chunk schedule verbatim.

        The planner built the windows against conservative node releases,
        so in the default switched model they are consistent by
        construction; the shared-link ablation cannot shift them and is
        rejected for such plans.
        """
        if self.shared_head_link:
            raise InvalidParameterError(
                "shared_head_link is not supported for multi-round "
                "(explicit-chunk) plans"
            )
        assert plan.explicit_chunks is not None
        n = plan.n
        comp_ends = np.zeros(n)
        chunks: list[ChunkTrace] = []
        windows: list[tuple[int, float, float]] = []
        for c in sorted(plan.explicit_chunks, key=lambda c: (c.trans_start, c.position)):
            node = int(plan.node_ids[c.position])
            comp_ends[c.position] = max(comp_ends[c.position], c.comp_end)
            self._node_free[node] = max(self._node_free[node], c.comp_end)
            self._busy[node] += (c.trans_end - c.trans_start) + (
                c.comp_end - c.trans_end
            )
            if self.faults is not None:
                windows.append((node, c.trans_start, c.comp_end))
            if self.trace_enabled:
                chunks.append(
                    ChunkTrace(
                        task_id=plan.task.task_id,
                        node_id=node,
                        position=c.position,
                        alpha=c.alpha,
                        release=plan.release_times[c.position],
                        trans_start=c.trans_start,
                        trans_end=c.trans_end,
                        comp_end=c.comp_end,
                    )
                )
        for i in range(n):
            self._allocated[int(plan.node_ids[i])] += (
                plan.est_completion - plan.release_times[i]
            )
        if self.faults is not None:
            self._exec_windows[plan.task.task_id] = windows
        if self.trace_enabled:
            self._traces.append(
                TaskTrace(
                    task_id=plan.task.task_id,
                    method=plan.method,
                    chunks=tuple(chunks),
                )
            )
        return comp_ends

    def _handle_completion(self, task_id: int, ends: tuple[float, ...]) -> None:
        actual = max(ends)
        if self.faults is not None:
            self._completion_events.pop(task_id, None)
            self._exec_windows.pop(task_id, None)
        record: TaskRecord = self.scheduler.on_complete(task_id, actual, ends)
        if self.validate_enabled:
            self.validator.check_completion(record)

    # -- fault injection ----------------------------------------------------
    def _handle_fault_begin(self, event: FaultEvent) -> None:
        """Open one fault window (FAULT events land after completions,
        before starts/arrivals, so everything deciding at this instant
        sees the post-fault world)."""
        now = self.engine.now
        tracer = self.obs.tracer
        if tracer is not None:
            tracer.event(
                "fault.window_open",
                "faults",
                now,
                kind=event.kind,
                node=event.node,
                until=event.end,
            )
        self.engine.schedule(
            event.end,
            EventKind.FAULT,
            lambda eng, t, e=event: self._handle_fault_end(e),
        )
        if event.kind in ("slowdown", "degrade"):
            factors = (
                self._cps_factors if event.kind == "slowdown" else self._cms_factors
            )
            factors.setdefault(event.node, []).append(event.factor)
            self._apply_cost_factors(event.node)
            self.fault_log.append(
                {
                    "time": now,
                    "kind": event.kind,
                    "node": event.node,
                    "factor": event.factor,
                    "until": event.end,
                }
            )
            return
        affected = (
            (event.node,)
            if event.kind == "node_down"
            else tuple(range(self.cluster.nodes))
        )
        self._apply_outage(affected, event)

    def _handle_fault_end(self, event: FaultEvent) -> None:
        """Close one fault window.

        Cost factors restore *exactly* (the nominal vector is kept and the
        product recomputed from the remaining active windows, so no float
        drift survives the last window).  Outage recovery needs no work
        here: it was encoded as availability floors when the window
        opened.
        """
        if self.obs.tracer is not None:
            self.obs.tracer.event(
                "fault.window_close",
                "faults",
                self.engine.now,
                kind=event.kind,
                node=event.node,
            )
        if event.kind in ("slowdown", "degrade"):
            factors = (
                self._cps_factors if event.kind == "slowdown" else self._cms_factors
            )
            active = factors.get(event.node)
            if active:
                active.remove(event.factor)
            self._apply_cost_factors(event.node)

    def _apply_cost_factors(self, node: int) -> None:
        """Recompute one node's effective costs from its active windows."""
        cps = float(self._cps_nominal[node])
        for f in self._cps_factors.get(node, ()):
            cps *= f
        self._cps_by_node[node] = cps
        cms = float(self._cms_nominal[node])
        for f in self._cms_factors.get(node, ()):
            cms *= f
        self._cms_by_node[node] = cms

    def _apply_outage(self, affected: tuple[int, ...], event: FaultEvent) -> None:
        """Crash ``affected`` nodes until ``event.end``.

        Every running task with a chunk on an affected node is displaced:
        its completion event is cancelled, its physical occupancy rolled
        back to what honestly happened before the fault, its reservations
        handed back, and it re-enters admission with its original arrival
        and deadline.  The whole committed (waiting) schedule is re-planned
        the same way, because its feasibility proof assumed the crashed
        capacity.  Re-admissions that no longer fit end as ``DISPLACED`` —
        an honest loss, never a silent success.
        """
        now = self.engine.now
        recover = event.end
        scheduler = self.scheduler
        affected_set = frozenset(affected)
        victims = sorted(
            tid
            for tid, plan in scheduler.running.items()
            if affected_set.intersection(plan.node_ids)
        )
        displaced: list[DivisibleTask] = []
        touched: set[int] = set(affected)
        for tid in victims:
            plan = scheduler.running[tid]
            handle = self._completion_events.pop(tid, None)
            if handle is not None:
                handle.cancel()
            for node, start, c_end in self._exec_windows.pop(tid, ()):
                # The chunk honestly occupied [start, min(max(now, start),
                # c_end)) — nothing if it had not begun, everything if it
                # had finished (only possible for non-final chunks).
                honest_end = min(max(now, start), c_end)
                self._busy[node] -= c_end - honest_end
                touched.add(node)
            est = plan.est_completion
            for i, node in enumerate(plan.node_ids):
                release = plan.release_times[i]
                honest_alloc = min(max(now, release), est)
                self._allocated[node] -= est - honest_alloc
            scheduler.displace(tid, plan.node_ids, (now,) * plan.n, now)
            displaced.append(scheduler.records[tid].task)
        if victims:
            self._recompute_node_free(touched, now)
        ids = list(affected)
        self._node_free[ids] = np.maximum(self._node_free[ids], recover)
        self._down_until[ids] = np.maximum(self._down_until[ids], recover)
        scheduler.reservations.floor_release(affected, recover)

        # Re-plan the world: displaced + formerly waiting tasks re-enter
        # admission in (arrival, task_id) order.  Each success replaces
        # the committed schedule wholesale, so all previously scheduled
        # start events are cancelled — under a blackout this is the mass
        # cancellation that exercises the engine's heap compaction.
        requeued = scheduler.clear_committed()
        for handle in self._start_events:
            handle.cancel()
        self._start_events = []
        pool = sorted(displaced + requeued, key=lambda t: (t.arrival, t.task_id))
        readmitted: list[int] = []
        missed: list[int] = []
        for task in pool:
            directives = scheduler.readmit(task, now)
            if directives is None:
                missed.append(task.task_id)
                continue
            readmitted.append(task.task_id)
            for handle in self._start_events:
                handle.cancel()
            self._start_events = [
                self.engine.schedule(
                    d.start_time,
                    EventKind.START,
                    lambda eng, t, d=d: self._handle_start(d.task_id, d.version),
                )
                for d in directives
            ]
        self.fault_log.append(
            {
                "time": now,
                "kind": event.kind,
                "node": event.node,
                "until": recover,
                "displaced": [t.task_id for t in displaced],
                "requeued": [t.task_id for t in requeued],
                "readmitted": readmitted,
                "missed": missed,
            }
        )
        if self.obs.tracer is not None:
            self.obs.tracer.event(
                "fault.outage_applied",
                "faults",
                now,
                kind=event.kind,
                node=event.node,
                displaced=len(displaced),
                readmitted=len(readmitted),
                missed=len(missed),
            )

    def _recompute_node_free(self, nodes: set[int], now: float) -> None:
        """Rebuild physical free times after windows were rolled back.

        A displaced task's windows cannot simply be subtracted from
        ``_node_free`` — a surviving task may still hold a later window on
        the same node — so the free time of every touched node is
        recomputed as the max over the windows of tasks *still running*,
        floored at ``now`` for capacity that was honestly consumed up to
        the fault (completed work never exceeds ``now``).
        """
        free = {node: min(float(self._node_free[node]), now) for node in nodes}
        for windows in self._exec_windows.values():
            for node, _start, c_end in windows:
                if node in nodes and c_end > free[node]:
                    free[node] = c_end
        for node, value in free.items():
            self._node_free[node] = value

    # -- incremental driver -------------------------------------------------
    # The three methods below let an external coordinator (the fleet layer)
    # interleave several ClusterSimulation instances over one shared arrival
    # stream: submit each routed task as it arrives, advance every cluster's
    # clock in lockstep, finalize when the stream ends.  ``run()`` is the
    # one-shot composition of the same primitives, so both paths execute the
    # identical event sequence.

    def submit(self, task: DivisibleTask) -> None:
        """Feed one arrival into the simulation.

        Tasks must be submitted in arrival order with unique ids; the
        arrival event fires when the clock reaches ``task.arrival``
        (through :meth:`advance_to`, :meth:`finalize` or :meth:`run`).
        """
        if self._done:
            raise InvalidParameterError(
                "cannot submit tasks to a finalized simulation"
            )
        if task.arrival < self._last_arrival:
            raise InvalidParameterError(
                "tasks must be submitted in arrival order "
                f"(task {task.task_id} at {task.arrival} after "
                f"{self._last_arrival})"
            )
        if task.task_id in self._submitted_ids:
            raise InvalidParameterError(f"duplicate task id {task.task_id}")
        self._submitted_ids.add(task.task_id)
        self._last_arrival = task.arrival
        self.tasks.append(task)
        self.engine.schedule(
            task.arrival,
            EventKind.ARRIVAL,
            lambda eng, t, task=task: self._handle_arrival(task),
        )

    def advance_to(self, time: float) -> None:
        """Process every event up to ``time`` and advance the clock there."""
        self.engine.run(until=time)

    # -- live introspection (the admission service's status/cancel hooks) --
    def cancel(self, task_id: int) -> bool:
        """Withdraw an admitted task that has not started transmitting.

        Thin driver-level wrapper over
        :meth:`~repro.core.scheduler.ClusterScheduler.cancel`: the
        scheduler drops the task from the waiting queue and the task's
        pending start event goes stale on its own (``on_start`` ignores
        directives whose task is no longer waiting).  Returns ``True``
        only when the task was actually waiting.
        """
        if self._done:
            raise InvalidParameterError(
                "cannot cancel tasks in a finalized simulation"
            )
        return self.scheduler.cancel(task_id)

    def task_status(self, task_id: int) -> dict:
        """One task's live status as a JSON-friendly dict.

        Keys: ``task_id``, ``state`` (see
        :meth:`~repro.core.scheduler.ClusterScheduler.task_state`),
        ``est_completion`` / ``actual_completion`` / ``started_at``
        (``None`` until known) and ``deadline_met`` (``None`` until the
        task completed).
        """
        record = self.scheduler.records.get(task_id)
        return {
            "task_id": task_id,
            "state": self.scheduler.task_state(task_id),
            "est_completion": record.est_completion if record else None,
            "actual_completion": record.actual_completion if record else None,
            "started_at": record.started_at if record else None,
            "deadline_met": record.deadline_met if record else None,
        }

    def snapshot(self) -> dict:
        """Aggregate live state as a JSON-friendly dict.

        Reports the simulation clock, the scheduler's cumulative counters
        (arrivals / accepted / rejected / cancelled), the current queue
        occupancy (waiting / running), how many accepted tasks have
        completed, and the actual busy node-time accrued so far.  When a
        fault plan is active a ``"faults"`` sub-dict is added (and *only*
        then, keeping fault-free snapshots bit-identical to pre-fault
        builds): cumulative displaced / readmitted / fault_missed
        counters, the number of currently-down nodes, and how many fault
        windows have opened so far.
        """
        stats = self.scheduler.stats
        completed = sum(
            1
            for r in self.scheduler.records.values()
            if r.actual_completion is not None
        )
        snap = {
            "clock": self.engine.now,
            "arrivals": stats.arrivals,
            "accepted": stats.accepted,
            "rejected": stats.rejected,
            "cancelled": stats.cancelled,
            "waiting": self.scheduler.waiting_count,
            "running": self.scheduler.running_count,
            "completed": completed,
            "busy_time": self.busy_time,
            "finalized": self._done,
        }
        if self.faults is not None:
            snap["faults"] = {
                "displaced": stats.displaced,
                "readmitted": stats.readmitted,
                "fault_missed": stats.fault_missed,
                "down_nodes": int(
                    np.count_nonzero(self._down_until > self.engine.now)
                ),
                "applied": len(self.fault_log),
            }
        return snap

    def finalize(self) -> SimulationOutput:
        """Drain all remaining events and assemble the run's output.

        A simulation finalizes exactly once; no tasks may be submitted
        afterwards.
        """
        if self._done:
            raise InvalidParameterError("a ClusterSimulation instance runs once")
        self._done = True
        self.engine.run()  # drain: all accepted tasks complete

        if self.validate_enabled and self.trace_enabled:
            self.validator.check_traces(self._traces, self.cluster.nodes)

        return SimulationOutput(
            algorithm=self.algorithm.name,
            records=self.scheduler.records,
            stats=self.scheduler.stats,
            validation=self.validator.report,
            node_busy_time=self._busy,
            node_allocated_time=self._allocated,
            horizon=self.horizon,
            traces=self._traces,
            obs_snapshot=self.obs.registry.snapshot(),
        )

    def run(self) -> SimulationOutput:
        """Execute the whole workload and return the run's output."""
        if self._done:
            raise InvalidParameterError("a ClusterSimulation instance runs once")
        pending, self.tasks = self.tasks, []
        for task in pending:
            self.submit(task)
        return self.finalize()
