"""Discrete-event simulation substrate.

The paper evaluates with "a discrete simulator" (Section 5); this package
is that simulator, built from scratch:

``engine``
    A minimal, deterministic discrete-event kernel (binary-heap event
    queue, strict priority tie-breaking).
``events``
    Event kinds and their same-timestamp ordering.
``cluster_sim``
    The cluster executor: wires workload arrivals, the head-node scheduler
    and chunk-level execution together and measures *actual* timings.
``trace``
    Optional chunk-level execution traces (Gantt-style records).
``validate``
    Runtime invariant checks: Theorem 4, deadline guarantees, reservation
    consistency.
"""

from repro.sim.cluster_sim import ClusterSimulation, SimulationOutput
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.sim.trace import ChunkTrace, TaskTrace
from repro.sim.validate import ExecutionValidator, ValidationReport

__all__ = [
    "ChunkTrace",
    "ClusterSimulation",
    "EventKind",
    "ExecutionValidator",
    "SimulationEngine",
    "SimulationOutput",
    "TaskTrace",
    "ValidationReport",
]
