"""Command-line interface.

Examples
--------
List every figure panel::

    python -m repro list-figures

Regenerate one panel at bench scale and print the series table::

    python -m repro run-figure fig3a --replications 3 --total-time 200000

Run a single point and dump all metrics::

    python -m repro run-point --algorithm EDF-DLT --load 0.5 --seed 42
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.algorithms import ALGORITHMS, algorithm_names
from repro.experiments.figures import DEFAULT_LOADS, FIGURES
from repro.experiments.report import panel_to_csv, render_chart, render_panel
from repro.experiments.runner import simulate
from repro.experiments.sweep import run_panel
from repro.workload.spec import SimulationConfig

__all__ = ["main"]


def _add_scale_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--total-time",
        type=float,
        default=200_000.0,
        help="TotalSimulationTime per run (paper: 10,000,000)",
    )
    p.add_argument(
        "--replications",
        type=int,
        default=3,
        help="independent runs per point (paper: 10)",
    )
    p.add_argument("--seed", type=int, default=2007, help="base seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dls",
        description=(
            "Real-time divisible load scheduling with different processor "
            "available times — reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-figures", help="list all reproducible figure panels")
    sub.add_parser("list-algorithms", help="list all registered algorithms")

    p_fig = sub.add_parser("run-figure", help="regenerate one figure panel")
    p_fig.add_argument("panel", choices=sorted(FIGURES), metavar="PANEL")
    _add_scale_args(p_fig)
    p_fig.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="SystemLoad grid (default: 0.1..1.0)",
    )
    p_fig.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    p_fig.add_argument(
        "--chart", action="store_true", help="also draw an ASCII chart of the panel"
    )

    p_pt = sub.add_parser("run-point", help="run a single simulation")
    p_pt.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="EDF-DLT")
    p_pt.add_argument("--nodes", type=int, default=16)
    p_pt.add_argument("--cms", type=float, default=1.0)
    p_pt.add_argument("--cps", type=float, default=100.0)
    p_pt.add_argument("--load", type=float, default=0.5)
    p_pt.add_argument("--avg-sigma", type=float, default=200.0)
    p_pt.add_argument("--dc-ratio", type=float, default=2.0)
    p_pt.add_argument("--total-time", type=float, default=200_000.0)
    p_pt.add_argument("--seed", type=int, default=2007)

    return parser


def _cmd_list_figures() -> int:
    for panel_id, spec in FIGURES.items():
        print(f"{panel_id:<8s} {spec.title}")
    return 0


def _cmd_list_algorithms() -> int:
    for name in algorithm_names():
        print(f"{name:<16s} {ALGORITHMS[name].description}")
    return 0


def _cmd_run_figure(args: argparse.Namespace) -> int:
    spec = FIGURES[args.panel]
    result = run_panel(
        spec,
        loads=tuple(args.loads) if args.loads else DEFAULT_LOADS,
        replications=args.replications,
        total_time=args.total_time,
        seed=args.seed,
    )
    print(panel_to_csv(result) if args.csv else render_panel(result))
    if args.chart and not args.csv:
        print()
        print(render_chart(result))
    return 0


def _cmd_run_point(args: argparse.Namespace) -> int:
    cfg = SimulationConfig(
        nodes=args.nodes,
        cms=args.cms,
        cps=args.cps,
        system_load=args.load,
        avg_sigma=args.avg_sigma,
        dc_ratio=args.dc_ratio,
        total_time=args.total_time,
        seed=args.seed,
    )
    result = simulate(cfg, args.algorithm)
    m = result.metrics
    print(f"algorithm            : {m.algorithm}")
    print(f"arrivals             : {m.arrivals}")
    print(f"accepted / rejected  : {m.accepted} / {m.rejected}")
    print(f"task reject ratio    : {m.reject_ratio:.4f}")
    print(f"executed tasks       : {m.executed}")
    print(f"deadline misses      : {m.deadline_misses}")
    print(f"node utilization     : {m.utilization:.4f}")
    print(f"allocated fraction   : {m.allocated_fraction:.4f}")
    print(f"IIT inside allocs    : {m.iit_inside_allocations:.1f} node-time units")
    print(f"mean nodes per task  : {m.mean_nodes_per_task:.2f}")
    print(f"mean estimate slack  : {m.mean_slack:.3f}")
    print(f"validation           : {result.output.validation.summary()}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-figures":
        return _cmd_list_figures()
    if args.command == "list-algorithms":
        return _cmd_list_algorithms()
    if args.command == "run-figure":
        return _cmd_run_figure(args)
    if args.command == "run-point":
        return _cmd_run_point(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
