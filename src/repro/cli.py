"""Command-line interface.

Examples
--------
List every figure panel::

    python -m repro list-figures

Regenerate one panel at bench scale and print the series table::

    python -m repro run-figure fig3a --replications 3 --total-time 200000

Run a single point and dump all metrics::

    python -m repro run-point --algorithm EDF-DLT --load 0.5 --seed 42 --json

Run a composed scenario — bursty arrivals, heavy-tailed sizes — with four
replications fanned out over two worker processes::

    python -m repro run-scenario --arrivals bursty --sizes pareto \\
        --load 0.6 --replications 4 --workers 2 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.algorithms import ALGORITHMS, algorithm_names
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError, ReproError
from repro.core.fastpath import ADMISSION_ENGINES
from repro.core.partition import NODE_ORDERS
from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.figures import DEFAULT_LOADS, FIGURES
from repro.experiments.report import panel_to_csv, render_chart, render_panel
from repro.experiments.runner import replication_seed, simulate
from repro.experiments.sweep import run_node_order_sweep, run_panel, run_spread_sweep
from repro.faults import FaultPlan, FaultProcess
from repro.fleet.routing import routing_policy_names, static_routing_policy_names
from repro.fleet.scenario import FleetScenario
from repro.learn import LEARN_MODES, LearnConfig, reward_model_names
from repro.metrics.collector import metric_names, validate_metric
from repro.workload.trace_report import summarize_trace
from repro.workload.models import (
    MMPPProcess,
    ParetoSizes,
    PoissonProcess,
    ProportionalDeadlines,
    TraceArrivals,
    TruncatedNormalSizes,
    UniformDeadlines,
    UniformSizes,
)
from repro.workload.scenario import Scenario, WorkloadModel

__all__ = ["main"]


def _add_scale_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--total-time",
        type=float,
        default=200_000.0,
        help="TotalSimulationTime per run (paper: 10,000,000)",
    )
    p.add_argument(
        "--replications",
        type=int,
        default=3,
        help="independent runs per point (paper: 10)",
    )
    p.add_argument("--seed", type=int, default=2007, help="base seed")


#: Node count used when neither --nodes nor a cost vector is given.
_DEFAULT_NODES = 16


def _add_cluster_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--nodes",
        type=int,
        default=None,
        help=f"cluster size (default {_DEFAULT_NODES}; must match any "
        "--cps-vector/--cms-vector length)",
    )
    p.add_argument("--cms", type=float, default=1.0)
    p.add_argument("--cps", type=float, default=100.0)
    p.add_argument(
        "--cps-vector",
        type=float,
        nargs="+",
        default=None,
        metavar="CPS_I",
        help="per-node processing costs (heterogeneous cluster; "
        "overrides --nodes/--cps)",
    )
    p.add_argument(
        "--cms-vector",
        type=float,
        nargs="+",
        default=None,
        metavar="CMS_I",
        help="per-link transmission costs (requires/implies the same "
        "node count as --cps-vector or --nodes)",
    )
    p.add_argument(
        "--speed-spread",
        type=float,
        default=0.0,
        help="deterministic linear heterogeneity: node cps spans "
        "[cps(1-s/2), cps(1+s/2)] (0 = homogeneous, < 2)",
    )


def _cluster_from_args(args: argparse.Namespace) -> ClusterProfile:
    """Build the ClusterProfile a CLI invocation describes."""
    if args.cps_vector is not None or args.cms_vector is not None:
        if args.speed_spread:
            raise InvalidParameterError(
                "--speed-spread cannot be combined with explicit cost vectors"
            )
        if args.cps_vector is not None:
            cps: list[float] | float = list(args.cps_vector)
            nodes = len(args.cps_vector)
        else:
            cps = [args.cps] * len(args.cms_vector)
            nodes = len(args.cms_vector)
        cms: list[float] | float = (
            list(args.cms_vector) if args.cms_vector is not None else args.cms
        )
        if isinstance(cms, list) and len(cms) != nodes:
            raise InvalidParameterError(
                f"--cms-vector length {len(cms)} != --cps-vector length {nodes}"
            )
        if args.nodes is not None and args.nodes != nodes:
            raise InvalidParameterError(
                f"--nodes {args.nodes} contradicts the cost vector length {nodes}"
            )
        return ClusterProfile.from_vectors(cps=cps, cms=cms)
    nodes = args.nodes if args.nodes is not None else _DEFAULT_NODES
    return ClusterProfile.with_spread(
        nodes, args.cms, args.cps, speed_spread=args.speed_spread
    )


def _add_sim_flag_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--eager-release",
        action="store_true",
        help="hand nodes back at actual rather than estimated completion",
    )
    p.add_argument(
        "--shared-head-link",
        action="store_true",
        help="serialize all chunk transmissions through one head-node link "
        "(ablation; estimates may be exceeded)",
    )
    p.add_argument(
        "--node-order",
        choices=NODE_ORDERS,
        default="availability",
        help="tie-break among simultaneously available nodes "
        "(default: the paper's node-id order)",
    )
    _add_engine_arg(p)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    """Fault-injection flags (run-scenario / fleet / serve / replay)."""
    g = p.add_mutually_exclusive_group()
    g.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="explicit JSON fault plan (see examples/sample_faults.json)",
    )
    g.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="seeded random faults at RATE events per time unit, "
        "materialized from the scenario seed's dedicated fault stream",
    )


def _faults_from_args(
    args: argparse.Namespace,
) -> FaultPlan | FaultProcess | None:
    """The faults field a CLI invocation describes (``None`` = fault-free)."""
    if getattr(args, "fault_plan", None):
        return FaultPlan.from_json(args.fault_plan)
    rate = getattr(args, "fault_rate", None)
    if rate is not None:
        return FaultProcess(rate=rate)
    return None


def _add_engine_arg(p: argparse.ArgumentParser, default: str = "fast") -> None:
    p.add_argument(
        "--admission-engine",
        choices=ADMISSION_ENGINES,
        default=default,
        help="schedulability-test engine (bit-identical outputs; "
        "see docs/performance.md)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dls",
        description=(
            "Real-time divisible load scheduling with different processor "
            "available times — reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-figures", help="list all reproducible figure panels")
    sub.add_parser("list-algorithms", help="list all registered algorithms")

    p_fig = sub.add_parser("run-figure", help="regenerate one figure panel")
    p_fig.add_argument("panel", choices=sorted(FIGURES), metavar="PANEL")
    _add_scale_args(p_fig)
    p_fig.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="SystemLoad grid (default: 0.1..1.0)",
    )
    p_fig.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial)",
    )
    p_fig.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    p_fig.add_argument(
        "--chart", action="store_true", help="also draw an ASCII chart of the panel"
    )

    p_pt = sub.add_parser("run-point", help="run a single simulation")
    p_pt.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="EDF-DLT")
    _add_cluster_args(p_pt)
    p_pt.add_argument("--load", type=float, default=0.5)
    p_pt.add_argument("--avg-sigma", type=float, default=200.0)
    p_pt.add_argument("--dc-ratio", type=float, default=2.0)
    p_pt.add_argument("--total-time", type=float, default=200_000.0)
    p_pt.add_argument("--seed", type=int, default=2007)
    p_pt.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON metrics dump",
    )
    _add_sim_flag_args(p_pt)

    p_sc = sub.add_parser(
        "run-scenario",
        help="run a composed scenario (pluggable arrival/size/deadline models)",
    )
    p_sc.add_argument(
        "--algorithm",
        dest="algorithms",
        choices=sorted(ALGORITHMS),
        action="append",
        default=None,
        metavar="ALGO",
        help="algorithm to run (repeatable; default: EDF-DLT)",
    )
    p_sc.add_argument("--name", default="cli-scenario", help="scenario label")
    _add_cluster_args(p_sc)
    p_sc.add_argument(
        "--arrivals",
        choices=("poisson", "bursty", "trace"),
        default="poisson",
        help="arrival process (default: the paper's Poisson)",
    )
    p_sc.add_argument(
        "--load",
        type=float,
        default=0.5,
        help="SystemLoad calibrating the long-run arrival rate",
    )
    p_sc.add_argument(
        "--mean-interarrival",
        type=float,
        default=None,
        help="override the calibrated mean inter-arrival time",
    )
    p_sc.add_argument(
        "--burst-factor",
        type=float,
        default=4.0,
        help="bursty arrivals: burst-to-calm rate ratio (> 1)",
    )
    p_sc.add_argument(
        "--trace-file",
        default=None,
        help="trace arrivals: file with one arrival time per line, a "
        ".csv trace (first/'arrival_time' column), or a .parquet trace "
        "(same column rules; needs pyarrow)",
    )
    p_sc.add_argument(
        "--sizes",
        choices=("normal", "uniform", "pareto"),
        default="normal",
        help="data-size model (default: the paper's truncated normal)",
    )
    p_sc.add_argument("--avg-sigma", type=float, default=200.0)
    p_sc.add_argument(
        "--size-range",
        type=float,
        nargs=2,
        default=None,
        metavar=("LO", "HI"),
        help="uniform sizes: bounds (default: [Avgσ/2, 3Avgσ/2])",
    )
    p_sc.add_argument(
        "--pareto-alpha",
        type=float,
        default=2.5,
        help="pareto sizes: tail index alpha > 1",
    )
    p_sc.add_argument(
        "--deadlines",
        choices=("uniform", "proportional"),
        default="uniform",
        help="deadline model (default: the paper's uniform window)",
    )
    p_sc.add_argument("--dc-ratio", type=float, default=2.0)
    p_sc.add_argument(
        "--deadline-factor",
        type=float,
        default=None,
        help="proportional deadlines: D_i = factor × E(σ_i, N) "
        "(default: --dc-ratio)",
    )
    _add_scale_args(p_sc)
    p_sc.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the batch (default: serial)",
    )
    p_sc.add_argument(
        "--workers-mode",
        choices=("process", "thread"),
        default="process",
        help="parallel executor kind (thread = fork-free environments)",
    )
    p_sc.add_argument(
        "--metric",
        default="reject_ratio",
        help="metric to aggregate (see repro.metrics.metric_names())",
    )
    _add_sim_flag_args(p_sc)
    _add_fault_args(p_sc)
    p_sc.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also run the first algorithm's replication 0 with tracing on "
        "and write the span stream to FILE (.json = Chrome trace-event "
        "format for Perfetto, anything else = JSON-lines); the traced "
        "rerun is bit-identical to the untraced one",
    )
    fmt = p_sc.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="emit all records as JSON")
    fmt.add_argument("--csv", action="store_true", help="emit all records as CSV")

    p_sw = sub.add_parser(
        "sweep",
        help="sweep a scenario axis (currently: cluster heterogeneity spread)",
    )
    p_sw.add_argument(
        "--axis",
        choices=("speed-spread", "node-order"),
        default="speed-spread",
        help="the swept series: algorithms across speed spreads "
        "(speed-spread) or node-ordering policies across speed spreads "
        "(node-order; single algorithm)",
    )
    p_sw.add_argument(
        "--values",
        type=float,
        nargs="+",
        default=(0.0, 0.25, 0.5, 0.75, 1.0),
        metavar="V",
        help="axis grid (speed-spread values in [0, 2))",
    )
    p_sw.add_argument(
        "--algorithm",
        dest="algorithms",
        choices=sorted(ALGORITHMS),
        action="append",
        default=None,
        metavar="ALGO",
        help="algorithm to sweep (repeatable; default: EDF-DLT vs "
        "EDF-OPR-MN — with --axis node-order only the first is used)",
    )
    p_sw.add_argument("--nodes", type=int, default=16)
    p_sw.add_argument("--cms", type=float, default=1.0)
    p_sw.add_argument("--cps", type=float, default=100.0)
    p_sw.add_argument("--load", type=float, default=0.6)
    p_sw.add_argument("--avg-sigma", type=float, default=200.0)
    p_sw.add_argument("--dc-ratio", type=float, default=2.0)
    _add_scale_args(p_sw)
    p_sw.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial)",
    )
    p_sw.add_argument(
        "--workers-mode",
        choices=("process", "thread"),
        default="process",
        help="parallel executor kind (thread = fork-free environments)",
    )
    p_sw.add_argument(
        "--metric",
        default="reject_ratio",
        help="metric to aggregate (see repro.metrics.metric_names())",
    )
    p_sw.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    _add_engine_arg(p_sw)

    p_fl = sub.add_parser(
        "fleet",
        help="shard one workload stream across several simulated clusters",
    )
    p_fl.add_argument(
        "--clusters",
        type=int,
        default=4,
        help="number of member clusters (default: 4)",
    )
    p_fl.add_argument(
        "--policy",
        dest="policies",
        choices=routing_policy_names(),
        action="append",
        default=None,
        metavar="POLICY",
        help="routing policy (repeatable; default: all policies)",
    )
    p_fl.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="EDF-DLT"
    )
    p_fl.add_argument("--nodes", type=int, default=16, help="nodes per cluster")
    p_fl.add_argument("--cms", type=float, default=1.0)
    p_fl.add_argument("--cps", type=float, default=100.0)
    p_fl.add_argument(
        "--load",
        type=float,
        default=0.6,
        help="per-cluster SystemLoad (the shared stream runs at "
        "clusters x this rate)",
    )
    p_fl.add_argument("--avg-sigma", type=float, default=200.0)
    p_fl.add_argument("--dc-ratio", type=float, default=2.0)
    p_fl.add_argument(
        "--speed-spread",
        type=float,
        default=0.0,
        help="per-node heterogeneity within each cluster (see run-point)",
    )
    p_fl.add_argument(
        "--cluster-spread",
        type=float,
        default=0.0,
        help="heterogeneity across clusters: member j's nominal cps spans "
        "[cps(1-s/2), cps(1+s/2)] (0 = identical clusters, < 2)",
    )
    _add_scale_args(p_fl)
    p_fl.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the batch (default: serial)",
    )
    p_fl.add_argument(
        "--workers-mode",
        choices=("process", "thread"),
        default="process",
        help="parallel executor kind (thread = fork-free environments)",
    )
    p_fl.add_argument(
        "--metric",
        default="reject_ratio",
        help="metric to aggregate (see repro.metrics.metric_names())",
    )
    p_fl.add_argument(
        "--per-cluster",
        action="store_true",
        help="also print a per-cluster breakdown of the first replication "
        "(and per-arm learning statistics for bandit policies)",
    )
    learn_defaults = LearnConfig()
    p_fl.add_argument(
        "--learn-arms",
        nargs="+",
        choices=static_routing_policy_names(),
        default=None,
        metavar="ARM",
        help="bandit policies: static policy arms to select among "
        "(default: all static policies)",
    )
    p_fl.add_argument(
        "--learn-mode",
        choices=LEARN_MODES,
        default=learn_defaults.mode,
        help="bandit policies: arms are static routers (policies) or the "
        "member clusters directly (clusters)",
    )
    p_fl.add_argument(
        "--learn-reward",
        choices=reward_model_names(),
        default=learn_defaults.reward,
        help="bandit policies: reward model turning task outcomes into "
        "learning signal",
    )
    p_fl.add_argument(
        "--learn-epsilon",
        type=float,
        default=learn_defaults.epsilon,
        help="epsilon-greedy: exploration probability in [0, 1]",
    )
    p_fl.add_argument(
        "--learn-ucb-c",
        type=float,
        default=learn_defaults.ucb_c,
        help="ucb1: exploration-bonus scale (> 0; 1 = classic UCB1)",
    )
    _add_fault_args(p_fl)
    fmt_fl = p_fl.add_mutually_exclusive_group()
    fmt_fl.add_argument("--json", action="store_true", help="emit all records as JSON")
    fmt_fl.add_argument("--csv", action="store_true", help="emit all records as CSV")

    p_ts = sub.add_parser(
        "trace-summary",
        help="rate/burstiness/size/deadline marginals of an arrival trace "
        "(CSV or Parquet)",
    )
    p_ts.add_argument(
        "trace_file",
        help="trace CSV or .parquet file (see run-scenario --trace-file; "
        "parquet needs the optional pyarrow)",
    )
    p_ts.add_argument(
        "--column",
        default="arrival_time",
        help="arrival-time column of a headered CSV (default: arrival_time)",
    )
    p_ts.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as machine-readable JSON",
    )

    p_srv = sub.add_parser(
        "serve",
        help="run a live admission-control server over a simulated cluster "
        "or fleet (protocol: docs/serving.md)",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 = ephemeral; the chosen port is printed on "
        "the 'listening on' line)",
    )
    p_srv.add_argument(
        "--once",
        action="store_true",
        help="exit after the first successful finalize (replay harness mode)",
    )
    p_srv.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose a Prometheus text-format /metrics endpoint on "
        "this port (0 = ephemeral; printed on the 'metrics on' line)",
    )
    _add_serve_shared_args(p_srv)

    p_rp = sub.add_parser(
        "replay",
        help="stream a scenario's task set against a live admission server "
        "and optionally diff the result against the offline simulation",
    )
    p_rp.add_argument(
        "--server",
        required=True,
        metavar="HOST:PORT",
        help="address of a running 'repro serve' instance",
    )
    p_rp.add_argument(
        "--check-offline",
        action="store_true",
        help="also run the identical simulation offline and require the "
        "server records to be bit-identical (exit 1 on any diff)",
    )
    p_rp.add_argument(
        "--window",
        type=int,
        default=64,
        help="max submissions kept in flight (pipelining depth)",
    )
    p_rp.add_argument(
        "--codec",
        choices=("json", "msgpack"),
        default="json",
        help="wire codec (msgpack needs the optional dependency on both "
        "ends; frames are self-describing either way)",
    )
    p_rp.add_argument(
        "--json",
        action="store_true",
        help="emit the replay summary as machine-readable JSON",
    )
    p_rp.add_argument(
        "--metrics",
        action="store_true",
        help="also fetch the server's repro.obs metrics snapshot (the "
        "'metrics' op) before finalize and report a digest of it",
    )
    _add_serve_shared_args(p_rp)

    p_pr = sub.add_parser(
        "profile",
        help="capture one admission call stream and profile each engine's "
        "replay of it (decisions/sec + per-phase kernel breakdown)",
    )
    p_pr.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="EDF-DLT")
    p_pr.add_argument(
        "--engines",
        nargs="+",
        choices=ADMISSION_ENGINES,
        default=("fast", "batch"),
        metavar="ENGINE",
        help="engines to replay (default: fast batch; all engines' "
        "decision streams are asserted identical)",
    )
    p_pr.add_argument(
        "--clusters",
        type=int,
        default=1,
        help="member clusters (>1 profiles the fleet member kernel, "
        "probe fan-out included)",
    )
    p_pr.add_argument("--nodes", type=int, default=16, help="nodes per cluster")
    p_pr.add_argument("--cms", type=float, default=1.0)
    p_pr.add_argument("--cps", type=float, default=100.0)
    p_pr.add_argument("--load", type=float, default=0.5)
    p_pr.add_argument("--avg-sigma", type=float, default=200.0)
    p_pr.add_argument("--dc-ratio", type=float, default=2.0)
    p_pr.add_argument(
        "--cluster-spread",
        type=float,
        default=0.0,
        help="heterogeneity across clusters (fleet profiling only)",
    )
    p_pr.add_argument("--total-time", type=float, default=50_000.0)
    p_pr.add_argument("--seed", type=int, default=2007)
    p_pr.add_argument(
        "--reps",
        type=int,
        default=2,
        help="timed replays per engine (best-of; default 2)",
    )
    p_pr.add_argument(
        "--deep-queue",
        action="store_true",
        help="preset: the deep-queue benchmark panel's shape (FIFO-DLT, "
        "load 10.0, dc-ratio 120 — an overloaded stream whose waiting "
        "queue stays ~100 deep, where the prefix-checkpoint store pays); "
        "overrides --algorithm, --load and --dc-ratio",
    )
    p_pr.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="ablate the prefix-checkpoint store (decisions identical; "
        "the prefix_restore phase row disappears and cold walks return)",
    )
    p_pr.add_argument(
        "--json",
        action="store_true",
        help="emit the profile report as machine-readable JSON",
    )

    return parser


def _add_serve_shared_args(p: argparse.ArgumentParser) -> None:
    """Flags shared by ``serve`` and ``replay``.

    Both sides must describe the *same* scenario: the server builds its
    backend from these flags, the replayer generates the task stream —
    and the offline reference run — from them.  The ``hello`` handshake
    cross-checks the two descriptions and refuses a mismatch.
    """
    p.add_argument(
        "--clusters",
        type=int,
        default=1,
        help="member clusters (1 = single-cluster backend, no routing)",
    )
    p.add_argument(
        "--policy",
        choices=routing_policy_names(),
        default="round-robin",
        help="routing policy for a multi-cluster backend (bandits use "
        "their default LearnConfig)",
    )
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="EDF-DLT")
    p.add_argument("--nodes", type=int, default=16, help="nodes per cluster")
    p.add_argument("--cms", type=float, default=1.0)
    p.add_argument("--cps", type=float, default=100.0)
    p.add_argument(
        "--speed-spread",
        type=float,
        default=0.0,
        help="per-node heterogeneity within each cluster (see run-point)",
    )
    p.add_argument(
        "--cluster-spread",
        type=float,
        default=0.0,
        help="heterogeneity across clusters (see fleet)",
    )
    p.add_argument(
        "--load",
        type=float,
        default=0.5,
        help="per-cluster SystemLoad calibrating the Poisson stream",
    )
    p.add_argument("--avg-sigma", type=float, default=200.0)
    p.add_argument("--dc-ratio", type=float, default=2.0)
    p.add_argument(
        "--arrivals",
        choices=("poisson", "trace"),
        default="poisson",
        help="arrival process of the replayed stream",
    )
    p.add_argument(
        "--trace-file",
        default=None,
        help="trace arrivals: .csv, .parquet or bare one-per-line file "
        "(sizes/deadlines still come from the seeded models)",
    )
    p.add_argument("--total-time", type=float, default=200_000.0)
    p.add_argument("--seed", type=int, default=2007)
    _add_engine_arg(p, default="batch")
    p.add_argument(
        "--node-order",
        choices=NODE_ORDERS,
        default="availability",
        help="tie-break among simultaneously available nodes",
    )
    p.add_argument(
        "--eager-release",
        action="store_true",
        help="hand nodes back at actual rather than estimated completion",
    )
    _add_fault_args(p)


def _serve_fleet_scenario(args: argparse.Namespace) -> FleetScenario:
    """The FleetScenario a ``serve`` / ``replay`` invocation describes."""
    from repro.fleet.routing import ROUTING_POLICIES

    learn = (
        LearnConfig()
        if getattr(ROUTING_POLICIES[args.policy], "learns", False)
        else None
    )
    base = FleetScenario.uniform(
        n_clusters=args.clusters,
        system_load=args.load,
        total_time=args.total_time,
        seed=args.seed,
        policy=args.policy,
        nodes=args.nodes,
        cms=args.cms,
        cps=args.cps,
        avg_sigma=args.avg_sigma,
        dc_ratio=args.dc_ratio,
        speed_spread=args.speed_spread,
        cluster_spread=args.cluster_spread,
        name="serve",
        learn=learn,
    )
    faults = _faults_from_args(args)
    if faults is not None:
        base = base.with_faults(faults)
    if args.arrivals == "trace":
        from dataclasses import replace

        arrivals = _trace_arrivals(args.trace_file)
        base = replace(base, workload=replace(base.workload, arrivals=arrivals))
    return base


def _serve_backend_kwargs(args: argparse.Namespace) -> dict:
    """Backend options shared by the server and the offline reference."""
    return dict(
        node_order=args.node_order,
        admission_engine=args.admission_engine,
        eager_release=args.eager_release,
    )


def _cmd_list_figures() -> int:
    for panel_id, spec in FIGURES.items():
        print(f"{panel_id:<8s} {spec.title}")
    return 0


def _cmd_list_algorithms() -> int:
    for name in algorithm_names():
        print(f"{name:<16s} {ALGORITHMS[name].description}")
    return 0


def _cmd_run_figure(args: argparse.Namespace) -> int:
    spec = FIGURES[args.panel]
    result = run_panel(
        spec,
        loads=tuple(args.loads) if args.loads else DEFAULT_LOADS,
        replications=args.replications,
        total_time=args.total_time,
        seed=args.seed,
        workers=args.workers,
    )
    print(panel_to_csv(result) if args.csv else render_panel(result))
    if args.chart and not args.csv:
        print()
        print(render_chart(result))
    return 0


def _cmd_run_point(args: argparse.Namespace) -> int:
    cluster = _cluster_from_args(args)
    scenario = Scenario(
        cluster=cluster,
        workload=WorkloadModel.paper(
            system_load=args.load,
            avg_sigma=args.avg_sigma,
            dc_ratio=args.dc_ratio,
            cluster=cluster,
        ),
        total_time=args.total_time,
        seed=args.seed,
        name="cli-point",
    )
    result = simulate(
        scenario,
        args.algorithm,
        eager_release=args.eager_release,
        shared_head_link=args.shared_head_link,
        node_order=args.node_order,
        admission_engine=args.admission_engine,
    )
    m = result.metrics
    if args.json:
        payload = m.as_dict()
        payload["validation"] = result.output.validation.summary()
        print(json.dumps(payload, indent=2))
        return 0
    print(f"algorithm            : {m.algorithm}")
    print(f"arrivals             : {m.arrivals}")
    print(f"accepted / rejected  : {m.accepted} / {m.rejected}")
    print(f"task reject ratio    : {m.reject_ratio:.4f}")
    print(f"executed tasks       : {m.executed}")
    print(f"deadline misses      : {m.deadline_misses}")
    print(f"node utilization     : {m.utilization:.4f}")
    print(f"allocated fraction   : {m.allocated_fraction:.4f}")
    print(f"IIT inside allocs    : {m.iit_inside_allocations:.1f} node-time units")
    print(f"mean nodes per task  : {m.mean_nodes_per_task:.2f}")
    print(f"mean estimate slack  : {m.mean_slack:.3f}")
    print(f"validation           : {result.output.validation.summary()}")
    return 0


def _trace_arrivals(trace_file: str | None) -> TraceArrivals:
    """Load a trace-arrivals file: .csv, .parquet, or bare one-per-line."""
    if trace_file is None:
        raise ReproError("--arrivals trace requires --trace-file")
    if trace_file.endswith(".csv"):
        return TraceArrivals.from_csv(trace_file)
    if trace_file.endswith(".parquet"):
        return TraceArrivals.from_parquet(trace_file)
    with open(trace_file, encoding="utf-8") as fh:
        times = [float(line) for line in fh if line.strip()]
    return TraceArrivals.from_sequence(times)


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """Compose the Scenario a ``run-scenario`` invocation describes."""
    cluster = _cluster_from_args(args)
    if args.mean_interarrival is not None:
        mean_gap = args.mean_interarrival
    else:
        if args.load <= 0:
            raise InvalidParameterError(f"--load must be > 0, got {args.load}")
        mean_exec = cluster.min_execution_time(args.avg_sigma)
        mean_gap = mean_exec / args.load

    if args.arrivals == "poisson":
        arrivals = PoissonProcess(mean_interarrival=mean_gap)
    elif args.arrivals == "bursty":
        arrivals = MMPPProcess.balanced(mean_gap, burst_factor=args.burst_factor)
    else:  # trace
        arrivals = _trace_arrivals(args.trace_file)

    if args.sizes == "normal":
        sizes = TruncatedNormalSizes(mean=args.avg_sigma)
    elif args.sizes == "uniform":
        lo, hi = (
            tuple(args.size_range)
            if args.size_range is not None
            else (args.avg_sigma / 2.0, 1.5 * args.avg_sigma)
        )
        sizes = UniformSizes(low=lo, high=hi)
    else:  # pareto
        sizes = ParetoSizes(mean=args.avg_sigma, alpha=args.pareto_alpha)

    if args.deadlines == "uniform":
        deadlines = UniformDeadlines.from_dc_ratio(
            args.dc_ratio, args.avg_sigma, cluster
        )
    else:  # proportional
        factor = (
            args.deadline_factor if args.deadline_factor is not None else args.dc_ratio
        )
        deadlines = ProportionalDeadlines(factor=factor)

    return Scenario(
        cluster=cluster,
        workload=WorkloadModel(arrivals=arrivals, sizes=sizes, deadlines=deadlines),
        total_time=args.total_time,
        seed=args.seed,
        name=args.name,
        faults=_faults_from_args(args),
    )


def _cmd_run_scenario(args: argparse.Namespace) -> int:
    validate_metric(args.metric)
    if args.replications < 1:
        raise InvalidParameterError(
            f"--replications must be >= 1, got {args.replications}"
        )
    scenario = _scenario_from_args(args)
    algorithms = args.algorithms or ["EDF-DLT"]

    specs = [
        RunSpec(
            scenario=scenario.with_seed(replication_seed(scenario.seed, rep)),
            algorithm=algorithm,
            labels={"replication": rep},
            eager_release=args.eager_release,
            shared_head_link=args.shared_head_link,
            node_order=args.node_order,
            admission_engine=args.admission_engine,
        )
        for algorithm in algorithms
        for rep in range(args.replications)
    ]
    results = BatchRunner(workers=args.workers, workers_mode=args.workers_mode).run(
        specs
    )

    trace_note: str | None = None
    if args.trace:
        trace_note = _write_scenario_trace(
            args,
            scenario.with_seed(replication_seed(scenario.seed, 0)),
            algorithms[0],
        )

    if args.json:
        print(results.to_json())
        if trace_note:
            print(trace_note, file=sys.stderr)
        return 0
    if args.csv:
        print(results.to_csv(), end="")
        if trace_note:
            print(trace_note, file=sys.stderr)
        return 0

    d = scenario.describe()
    print(
        f"scenario {scenario.name!r}: N={d['nodes']}, Cms={_fmt_cost(d['cms'])}, "
        f"Cps={_fmt_cost(d['cps'])}, arrivals={d['arrivals']}, "
        f"sizes={d['sizes']}, deadlines={d['deadlines']}"
    )
    print(
        f"horizon={scenario.total_time:g}, replications={args.replications}, "
        f"base seed={scenario.seed}, metric={args.metric}"
    )
    print()
    width = max(len(a) for a in algorithms)
    for algorithm in algorithms:
        sub = results.filter(algorithm=algorithm)
        ci = sub.aggregate(args.metric)
        mean_arrivals = sum(r.metrics.arrivals for r in sub) / len(sub)
        print(
            f"{algorithm:<{width}s}  {args.metric} = {ci.mean:.4f} "
            f"± {ci.half_width:.4f}  (n={ci.n}, mean arrivals/run "
            f"{mean_arrivals:.0f})"
        )
    if trace_note:
        print()
        print(trace_note)
    return 0


def _write_scenario_trace(
    args: argparse.Namespace, scenario: Scenario, algorithm: str
) -> str:
    """Traced rerun of one replication; write the span stream to a file.

    The rerun is bit-identical to the untraced batch run of the same
    replication (the repro.obs determinism contract), so the trace
    describes exactly the run whose metrics were just reported.  A
    ``.json`` filename selects the Chrome trace-event format (load it in
    Perfetto / chrome://tracing); anything else gets JSON-lines.
    """
    from repro.obs import Observability

    obs = Observability(trace=True)
    simulate(
        scenario,
        algorithm,
        eager_release=args.eager_release,
        shared_head_link=args.shared_head_link,
        node_order=args.node_order,
        admission_engine=args.admission_engine,
        obs=obs,
    )
    tracer = obs.tracer
    assert tracer is not None  # Observability(trace=True) always builds one
    with open(args.trace, "w", encoding="utf-8") as fp:
        if args.trace.endswith(".json"):
            tracer.write_chrome(fp)
            kind = "chrome trace-event"
        else:
            tracer.write_jsonl(fp)
            kind = "JSON-lines"
    return (
        f"trace: {len(tracer.records)} records ({kind}, {algorithm} "
        f"replication 0) -> {args.trace}"
    )


def _fmt_cost(value: float | int | str) -> str:
    """Render a describe() cost: scalar → %g, vector string → as-is."""
    return f"{value:g}" if isinstance(value, (int, float)) else str(value)


def _cmd_fleet(args: argparse.Namespace) -> int:
    validate_metric(args.metric)
    if args.replications < 1:
        raise InvalidParameterError(
            f"--replications must be >= 1, got {args.replications}"
        )
    policies = tuple(args.policies) if args.policies else routing_policy_names()
    from repro.fleet.routing import ROUTING_POLICIES

    learn = None
    if any(getattr(ROUTING_POLICIES[p], "learns", False) for p in policies):
        learn = LearnConfig(
            arms=tuple(args.learn_arms) if args.learn_arms else (),
            mode=args.learn_mode,
            reward=args.learn_reward,
            epsilon=args.learn_epsilon,
            ucb_c=args.learn_ucb_c,
        )
    base = FleetScenario.uniform(
        n_clusters=args.clusters,
        system_load=args.load,
        total_time=args.total_time,
        seed=args.seed,
        nodes=args.nodes,
        cms=args.cms,
        cps=args.cps,
        avg_sigma=args.avg_sigma,
        dc_ratio=args.dc_ratio,
        speed_spread=args.speed_spread,
        cluster_spread=args.cluster_spread,
        name=f"cli-fleet-{args.clusters}x{args.nodes}",
        learn=learn,
    )
    faults = _faults_from_args(args)
    if faults is not None:
        base = base.with_faults(faults)

    specs = [
        RunSpec(
            scenario=base.with_policy(policy).with_seed(
                replication_seed(base.seed, rep)
            ),
            algorithm=args.algorithm,
            labels={"policy": policy, "replication": rep},
            # --per-cluster prints the rep-0 breakdown from these outputs
            # instead of re-simulating.
            keep_output=args.per_cluster and rep == 0,
        )
        for policy in policies
        for rep in range(args.replications)
    ]
    results = BatchRunner(workers=args.workers, workers_mode=args.workers_mode).run(
        specs
    )

    if args.json:
        print(results.to_json())
        return 0
    if args.csv:
        print(results.to_csv(), end="")
        return 0

    d = base.describe()
    print(
        f"fleet {base.name!r}: {d['clusters']} clusters x {args.nodes} nodes, "
        f"policy x {len(policies)}, algorithm={args.algorithm}"
    )
    print(
        f"per-cluster load={args.load:g}, cluster_spread={args.cluster_spread:g}, "
        f"horizon={base.total_time:g}, replications={args.replications}, "
        f"base seed={base.seed}, metric={args.metric}"
    )
    print()
    width = max(len(p) for p in policies)
    for policy in policies:
        sub = results.filter(policy=policy)
        ci = sub.aggregate(args.metric)
        mean_arrivals = sum(r.metrics.arrivals for r in sub) / len(sub)
        print(
            f"{policy:<{width}s}  {args.metric} = {ci.mean:.4f} "
            f"± {ci.half_width:.4f}  (n={ci.n}, mean arrivals/run "
            f"{mean_arrivals:.0f})"
        )
    if args.per_cluster:
        print()
        for policy in policies:
            [record] = results.filter(policy=policy, replication=0)
            out = record.output
            assert out is not None  # keep_output was set on rep-0 specs
            cells = "  ".join(
                f"[{i}] rr={m.reject_ratio:.3f} util={m.utilization:.3f} "
                f"n={count}"
                for i, (m, count) in enumerate(
                    zip(out.per_cluster, out.routed_counts)
                )
            )
            print(f"{policy:<{width}s}  {cells}")
            if out.learning is not None:
                rep = out.learning
                arms = "  ".join(
                    f"{a.name}: {a.pulls} pulls, mean {a.mean_reward:.3f}"
                    for a in rep.arms
                )
                print(
                    f"{'':<{width}s}  learned[{rep.reward_model}] "
                    f"best={rep.best_arm} "
                    f"regret={rep.cumulative_regret:.1f}  {arms}"
                )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    validate_metric(args.metric)
    shared = dict(
        spreads=args.values,
        system_load=args.load,
        nodes=args.nodes,
        cms=args.cms,
        cps=args.cps,
        avg_sigma=args.avg_sigma,
        dc_ratio=args.dc_ratio,
        replications=args.replications,
        total_time=args.total_time,
        seed=args.seed,
        metric=args.metric,
        workers=args.workers,
        workers_mode=args.workers_mode,
        admission_engine=args.admission_engine,
    )
    if args.axis == "node-order":
        algorithm = (args.algorithms or ["EDF-DLT"])[0]
        result = run_node_order_sweep(algorithm=algorithm, **shared)
        label = f"algorithm={algorithm}"
    else:
        algorithms = tuple(args.algorithms or ("EDF-DLT", "EDF-OPR-MN"))
        result = run_spread_sweep(algorithms=algorithms, **shared)
        label = f"algorithms={','.join(algorithms)}"
    series_keys = tuple(result.series)
    if args.csv:
        print(f"speed_spread,{','.join(series_keys)}")
        for i, spread in enumerate(result.spreads):
            cells = ",".join(
                f"{result.series[k][i].mean:.6f}" for k in series_keys
            )
            print(f"{spread:g},{cells}")
        return 0
    print(
        f"axis={args.axis}, {label}, load={args.load:g}, N={args.nodes}, "
        f"metric={args.metric}, replications={args.replications}, "
        f"horizon={args.total_time:g}"
    )
    print()
    width = max(len(k) for k in series_keys)
    header = "spread".rjust(8) + "  " + "  ".join(k.rjust(width) for k in series_keys)
    print(header)
    for i, spread in enumerate(result.spreads):
        cells = "  ".join(
            f"{result.series[k][i].mean:.4f}".rjust(width) for k in series_keys
        )
        print(f"{spread:8g}  {cells}")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    summary = summarize_trace(args.trace_file, column=args.column)
    if args.json:
        print(json.dumps(summary.as_dict(), indent=2))
        return 0
    print(f"trace                : {summary.path}")
    print(f"arrivals             : {summary.count}")
    print(f"span                 : {summary.span:g} time units")
    rate = f"{summary.rate:g}" if summary.count > 1 else "n/a"
    print(f"rate                 : {rate} arrivals/time unit")
    print(
        f"inter-arrival gap    : mean {summary.mean_gap:g}, "
        f"min {summary.min_gap:g}, max {summary.max_gap:g}"
    )
    print(
        f"burstiness (CV^2)    : {summary.gap_cv2:.3f} ({summary.burstiness}; "
        "Poisson = 1)"
    )
    for col in (summary.sigma, summary.deadline):
        if col is not None:
            print(
                f"{col.name:<21s}: mean {col.mean:g} ± {col.std:g} "
                f"[{col.minimum:g}, {col.maximum:g}]"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.backend import make_backend
    from repro.serve.server import AdmissionServer

    scenario = _serve_fleet_scenario(args)
    backend = make_backend(scenario, args.algorithm, **_serve_backend_kwargs(args))

    async def _main() -> None:
        server = AdmissionServer(
            backend,
            host=args.host,
            port=args.port,
            once=args.once,
            metrics_port=args.metrics_port,
        )
        await server.start()
        host, port = server.address
        print(f"listening on {host}:{port}", flush=True)
        if server.metrics_address is not None:
            m_host, m_port = server.metrics_address
            print(f"metrics on http://{m_host}:{m_port}/metrics", flush=True)
        await server.wait_closed()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.serve.client import AdmissionClient
    from repro.serve.replay import loopback_diff, replay_tasks

    host, sep, port_text = args.server.rpartition(":")
    if not sep or not port_text.isdigit():
        raise InvalidParameterError(
            f"--server must be HOST:PORT, got {args.server!r}"
        )
    scenario = _serve_fleet_scenario(args)
    kwargs = _serve_backend_kwargs(args)
    tasks = scenario.stream_scenario().generate_tasks()

    expected = {
        "kind": "cluster" if scenario.n_clusters == 1 else "fleet",
        "algorithm": args.algorithm,
        "scenario": (
            scenario.member_scenario(0).describe()
            if scenario.n_clusters == 1
            else scenario.describe()
        ),
    }
    latencies: list[float] = []
    metrics_snapshot = None
    with AdmissionClient(host, int(port_text), codec=args.codec) as client:
        assert client.server_info is not None  # set by the handshake
        served = client.server_info["server"]
        if served != expected:
            print("server scenario does not match the replay flags:")
            print(f"  server: {json.dumps(served, sort_keys=True)}")
            print(f"  replay: {json.dumps(expected, sort_keys=True)}")
            return 2
        decisions = replay_tasks(
            client, tasks, window=args.window, latencies=latencies
        )
        if args.metrics:
            metrics_snapshot = client.metrics()
        payload = client.finalize()

    accepted = sum(1 for d in decisions if d["accepted"])
    summary = {
        "server": args.server,
        "kind": payload["kind"],
        "tasks": len(decisions),
        "accepted": accepted,
        "rejected": len(decisions) - accepted,
        "reject_ratio": (
            (len(decisions) - accepted) / len(decisions) if decisions else 0.0
        ),
    }
    percentiles = None
    if latencies:
        import numpy as np

        p50, p95, p99 = np.percentile(latencies, (50.0, 95.0, 99.0))
        percentiles = {
            "p50_ms": float(p50) * 1e3,
            "p95_ms": float(p95) * 1e3,
            "p99_ms": float(p99) * 1e3,
        }
        summary["latency"] = percentiles
    if metrics_snapshot is not None:
        summary["metrics"] = metrics_snapshot

    problems: list[str] = []
    if args.check_offline:
        if scenario.n_clusters == 1:
            result = simulate(
                scenario.member_scenario(0), args.algorithm, **kwargs
            )
            problems = loopback_diff(payload, result.output)
        else:
            from repro.fleet.sim import simulate_fleet

            fleet_out = simulate_fleet(scenario, args.algorithm, **kwargs)
            problems = loopback_diff(payload, fleet_out)
        summary["loopback"] = "ok" if not problems else problems

    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"replayed {summary['tasks']} tasks against {args.server} "
            f"({summary['kind']} backend): {accepted} accepted, "
            f"{summary['rejected']} rejected "
            f"(reject ratio {summary['reject_ratio']:.4f})"
        )
        if percentiles is not None:
            print(
                "client latency (pipeline wait included): "
                f"p50 {percentiles['p50_ms']:.3f} ms, "
                f"p95 {percentiles['p95_ms']:.3f} ms, "
                f"p99 {percentiles['p99_ms']:.3f} ms"
            )
        if metrics_snapshot is not None:
            requests = sum(
                int(cell.get("value", 0))
                for name, cell in sorted(metrics_snapshot.items())
                if name.startswith("serve_requests_total")
                and cell.get("type") == "counter"
            )
            print(
                f"server metrics: {len(metrics_snapshot)} instruments, "
                f"{requests} requests served"
            )
        if args.check_offline and not problems:
            print("loopback OK: server records are bit-identical to the offline run")
        for problem in problems:
            print(f"loopback DIFF: {problem}")
    return 1 if problems else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_admission

    if args.deep_queue:
        # The deep-queue benchmark panel's shape (benchmarks/
        # test_bench_core.py): FIFO ordering + a ~100-deep waiting queue
        # is where prefix checkpointing shows its full effect.
        args.algorithm = "FIFO-DLT"
        args.load = 10.0
        args.dc_ratio = 120.0
    fleet = args.clusters > 1
    scenario: Scenario | FleetScenario
    if fleet:
        scenario = FleetScenario.uniform(
            n_clusters=args.clusters,
            system_load=args.load,
            total_time=args.total_time,
            seed=args.seed,
            nodes=args.nodes,
            cms=args.cms,
            cps=args.cps,
            avg_sigma=args.avg_sigma,
            dc_ratio=args.dc_ratio,
            cluster_spread=args.cluster_spread,
            name="cli-profile",
        )
    else:
        cluster = ClusterProfile.with_spread(args.nodes, args.cms, args.cps)
        scenario = Scenario(
            cluster=cluster,
            workload=WorkloadModel.paper(
                system_load=args.load,
                avg_sigma=args.avg_sigma,
                dc_ratio=args.dc_ratio,
                cluster=cluster,
            ),
            total_time=args.total_time,
            seed=args.seed,
            name="cli-profile",
        )
    report = profile_admission(
        scenario,
        args.algorithm,
        engines=tuple(args.engines),
        reps=args.reps,
        fleet=fleet,
        checkpoint=not args.no_checkpoint,
    )
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    shape = (
        f"{args.clusters} clusters x {args.nodes} nodes"
        if fleet
        else f"{args.nodes} nodes"
    )
    print(
        f"profiled {report['calls']} admission calls ({args.algorithm}, "
        f"{shape}, load={args.load:g}, horizon={args.total_time:g}, "
        f"best of {args.reps})"
    )
    print()
    width = max(len(e) for e in report["engines"])
    for engine, cell in report["engines"].items():
        print(
            f"{engine:<{width}s}  {cell['seconds'] * 1e3:9.2f} ms  "
            f"{cell['decisions_per_sec']:12,.0f} decisions/sec"
        )
    for engine, cell in report["engines"].items():
        if not cell["phases"]:
            continue
        total = sum(row["seconds"] for row in cell["phases"]) or 1.0
        print()
        print(f"{engine} phases (profiled replay):")
        for row in cell["phases"]:
            print(
                f"  {row['phase']:<16s} {row['seconds'] * 1e3:9.2f} ms  "
                f"{row['seconds'] / total * 100.0:5.1f}%  "
                f"({row['calls']} spans)"
            )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-figures":
        return _cmd_list_figures()
    if args.command == "list-algorithms":
        return _cmd_list_algorithms()
    if args.command == "run-figure":
        return _cmd_run_figure(args)
    if args.command == "run-point":
        return _cmd_run_point(args)
    if args.command == "run-scenario":
        return _cmd_run_scenario(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "trace-summary":
        return _cmd_trace_summary(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "profile":
        return _cmd_profile(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
