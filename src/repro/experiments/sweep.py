"""SystemLoad sweep driver: turn a PanelSpec into series of points.

All (load, algorithm, replication) runs of a panel flatten into one batch
and execute through the :class:`~repro.experiments.batch.BatchRunner`, so
a panel can fan out over worker processes (``workers=4``) — per-point
seeding is deterministic, so the parallel sweep is bit-identical to the
serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.partition import NODE_ORDERS, validate_node_order
from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.figures import DEFAULT_LOADS, PanelSpec
from repro.experiments.runner import replication_seed
from repro.metrics.collector import validate_metric
from repro.metrics.stats import PointEstimate, mean_ci
from repro.workload.scenario import Scenario

__all__ = [
    "PanelResult",
    "SpreadSweepResult",
    "run_node_order_sweep",
    "run_panel",
    "run_spread_sweep",
]

#: Defaults tuned so a full panel runs in seconds; the paper-scale values
#: (10 M time units, 10 replications) are available via parameters.
DEFAULT_TOTAL_TIME: float = 200_000.0
DEFAULT_REPLICATIONS: int = 3
DEFAULT_SEED: int = 2007


@dataclass(frozen=True, slots=True)
class PanelResult:
    """All series of one panel: algorithm → per-load point estimates."""

    spec: PanelSpec
    loads: tuple[float, ...]
    series: Mapping[str, tuple[PointEstimate, ...]]
    total_time: float
    replications: int

    def mean_curve(self, algorithm: str) -> list[float]:
        """The mean reject-ratio curve of one algorithm."""
        return [p.mean for p in self.series[algorithm]]

    def wins(self, algorithm: str, *, tol: float = 0.0) -> int:
        """Load points where ``algorithm``'s mean is lowest (ties excluded).

        ``tol`` widens the comparison: a win requires beating every other
        series by more than ``tol``.
        """
        others = [a for a in self.series if a != algorithm]
        count = 0
        for i in range(len(self.loads)):
            mine = self.series[algorithm][i].mean
            if all(self.series[o][i].mean > mine + tol for o in others):
                count += 1
        return count

    def mean_gap(self, better: str, worse: str) -> float:
        """Average (worse − better) reject-ratio gap across loads."""
        diffs = [
            self.series[worse][i].mean - self.series[better][i].mean
            for i in range(len(self.loads))
        ]
        return sum(diffs) / len(diffs)


def run_panel(
    spec: PanelSpec,
    *,
    loads: Sequence[float] | None = None,
    replications: int = DEFAULT_REPLICATIONS,
    total_time: float = DEFAULT_TOTAL_TIME,
    seed: int = DEFAULT_SEED,
    metric: str = "reject_ratio",
    validate: bool = True,
    workers: int | None = None,
) -> PanelResult:
    """Run one figure panel: both algorithms over the SystemLoad grid.

    Replication seeds are derived from ``(seed, load index, rep)`` so every
    point is independent yet fully reproducible, while both algorithms of a
    panel see *identical* task sets at each point (paired comparison, as in
    the paper).  ``workers`` fans the whole panel's runs out over processes.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    validate_metric(metric)
    grid = tuple(loads) if loads is not None else DEFAULT_LOADS

    specs: list[RunSpec] = []
    for li, load in enumerate(grid):
        cfg = spec.base_config(
            system_load=float(load),
            total_time=total_time,
            seed=seed + 7919 * li,  # distinct workload per load point
        )
        point = Scenario.from_config(cfg, name=spec.panel_id)
        for algorithm in spec.algorithms:
            for rep in range(replications):
                specs.append(
                    RunSpec(
                        scenario=point.with_seed(replication_seed(cfg.seed, rep)),
                        algorithm=algorithm,
                        # Grouped by grid index, not load value — a grid may
                        # legitimately repeat a load (each entry gets its own
                        # seed and its own point).
                        labels={
                            "load": float(load),
                            "load_index": li,
                            "replication": rep,
                        },
                        validate=validate,
                    )
                )

    results = BatchRunner(workers=workers).run(specs)

    series: dict[str, list[PointEstimate]] = {a: [] for a in spec.algorithms}
    for li, load in enumerate(grid):
        at_load = results.filter(load_index=li)
        for algorithm in spec.algorithms:
            samples = at_load.filter(algorithm=algorithm).values(metric)
            series[algorithm].append(
                PointEstimate(x=float(load), ci=mean_ci(samples), samples=samples)
            )
    return PanelResult(
        spec=spec,
        loads=grid,
        series={a: tuple(pts) for a, pts in series.items()},
        total_time=total_time,
        replications=replications,
    )


@dataclass(frozen=True, slots=True)
class SpreadSweepResult:
    """One heterogeneity sweep: algorithm → per-spread point estimates.

    ``spreads`` is the swept ``speed_spread`` grid (0 = the paper's
    homogeneous cluster); every series shares the task sets point-wise, so
    algorithm comparisons are paired exactly like the paper's load sweeps.
    """

    spreads: tuple[float, ...]
    series: Mapping[str, tuple[PointEstimate, ...]]
    metric: str
    total_time: float
    replications: int

    def mean_curve(self, algorithm: str) -> list[float]:
        """The mean metric curve of one algorithm across spreads."""
        return [p.mean for p in self.series[algorithm]]


#: One series of a spread-grid sweep: the series key, the RunSpec fields
#: it varies, the extra labels it stamps, and the ResultSet.filter(...)
#: keywords that select its records back out.
_SpreadVariant = tuple[str, dict, dict, dict]


def _run_spread_grid(
    *,
    spreads: Sequence[float],
    variants: Sequence[_SpreadVariant],
    system_load: float,
    nodes: int,
    cms: float,
    cps: float,
    avg_sigma: float,
    dc_ratio: float,
    replications: int,
    total_time: float,
    seed: int,
    metric: str,
    validate: bool,
    workers: int | None,
    workers_mode: str,
    admission_engine: str = "fast",
) -> SpreadSweepResult:
    """Shared driver of the heterogeneity-spread sweeps.

    Each grid point runs :meth:`Scenario.paper_baseline` with
    ``speed_spread = s`` and the workload re-calibrated against that
    cluster's actual ``E(Avgσ, N)``; every variant (algorithm or
    node-order series) shares the task sets point-wise (paired
    comparison) and all runs flatten into one
    :class:`~repro.experiments.batch.BatchRunner` batch.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    validate_metric(metric)
    grid = tuple(float(s) for s in spreads)
    if not grid:
        raise ValueError("spreads must be non-empty")

    specs: list[RunSpec] = []
    for si, spread in enumerate(grid):
        point = Scenario.paper_baseline(
            system_load=system_load,
            total_time=total_time,
            seed=seed + 7919 * si,  # distinct workload per grid point
            nodes=nodes,
            cms=cms,
            cps=cps,
            avg_sigma=avg_sigma,
            dc_ratio=dc_ratio,
            speed_spread=spread,
            name=f"spread-{spread:g}",
        )
        for _key, spec_kwargs, extra_labels, _selector in variants:
            for rep in range(replications):
                specs.append(
                    RunSpec(
                        scenario=point.with_seed(
                            replication_seed(seed + 7919 * si, rep)
                        ),
                        labels={
                            "speed_spread": spread,
                            "spread_index": si,
                            **extra_labels,
                            "replication": rep,
                        },
                        validate=validate,
                        admission_engine=admission_engine,
                        **spec_kwargs,
                    )
                )

    results = BatchRunner(workers=workers, workers_mode=workers_mode).run(specs)

    series: dict[str, list[PointEstimate]] = {v[0]: [] for v in variants}
    for si, spread in enumerate(grid):
        at_point = results.filter(spread_index=si)
        for key, _spec_kwargs, _extra_labels, selector in variants:
            samples = at_point.filter(**selector).values(metric)
            series[key].append(
                PointEstimate(x=spread, ci=mean_ci(samples), samples=samples)
            )
    return SpreadSweepResult(
        spreads=grid,
        series={k: tuple(pts) for k, pts in series.items()},
        metric=metric,
        total_time=total_time,
        replications=replications,
    )


def run_spread_sweep(
    *,
    spreads: Sequence[float],
    algorithms: Sequence[str] = ("EDF-DLT", "EDF-OPR-MN"),
    system_load: float = 0.6,
    nodes: int = 16,
    cms: float = 1.0,
    cps: float = 100.0,
    avg_sigma: float = 200.0,
    dc_ratio: float = 2.0,
    replications: int = DEFAULT_REPLICATIONS,
    total_time: float = DEFAULT_TOTAL_TIME,
    seed: int = DEFAULT_SEED,
    metric: str = "reject_ratio",
    validate: bool = True,
    workers: int | None = None,
    workers_mode: str = "process",
    admission_engine: str = "fast",
) -> SpreadSweepResult:
    """Sweep intrinsic cluster heterogeneity at a fixed SystemLoad.

    Each grid point runs :meth:`Scenario.paper_baseline` with
    ``speed_spread = s``: node processing costs span
    ``[cps·(1-s/2), cps·(1+s/2)]`` linearly while the workload stays
    calibrated against that cluster's actual ``E(Avgσ, N)`` — so the sweep
    isolates the *scheduling* cost of heterogeneity from the capacity
    shift.  All runs of the sweep flatten into one batch and fan out over
    the :class:`~repro.experiments.batch.BatchRunner`.
    """
    return _run_spread_grid(
        spreads=spreads,
        variants=[
            (a, {"algorithm": a}, {}, {"algorithm": a}) for a in algorithms
        ],
        system_load=system_load,
        nodes=nodes,
        cms=cms,
        cps=cps,
        avg_sigma=avg_sigma,
        dc_ratio=dc_ratio,
        replications=replications,
        total_time=total_time,
        seed=seed,
        metric=metric,
        validate=validate,
        workers=workers,
        workers_mode=workers_mode,
        admission_engine=admission_engine,
    )


def run_node_order_sweep(
    *,
    spreads: Sequence[float],
    node_orders: Sequence[str] = NODE_ORDERS,
    algorithm: str = "EDF-DLT",
    system_load: float = 0.6,
    nodes: int = 16,
    cms: float = 1.0,
    cps: float = 100.0,
    avg_sigma: float = 200.0,
    dc_ratio: float = 2.0,
    replications: int = DEFAULT_REPLICATIONS,
    total_time: float = DEFAULT_TOTAL_TIME,
    seed: int = DEFAULT_SEED,
    metric: str = "reject_ratio",
    validate: bool = True,
    workers: int | None = None,
    workers_mode: str = "process",
    admission_engine: str = "fast",
) -> SpreadSweepResult:
    """Grid node-ordering policies against cluster heterogeneity spreads.

    The ROADMAP follow-on to the node-ordering work: one algorithm, the
    heterogeneity ``speed_spread`` grid on the x-axis, and one series per
    node-ordering policy (``availability`` — the paper's node-id order —
    ``fastest-first``, ``bandwidth-first``).  At ``spread = 0`` all
    orderings coincide on the homogeneous cluster; the sweep shows where
    they start to diverge.  Every series shares the task sets point-wise
    (paired comparison), and all runs flatten into one
    :class:`~repro.experiments.batch.BatchRunner` batch.

    Returns a :class:`SpreadSweepResult` whose ``series`` keys are the
    node-order names.
    """
    orders = tuple(node_orders)
    if not orders:
        raise ValueError("node_orders must be non-empty")
    if len(set(orders)) != len(orders):
        raise ValueError(f"duplicate node orders in {orders!r}")
    for order in orders:
        validate_node_order(order)
    return _run_spread_grid(
        spreads=spreads,
        variants=[
            (
                o,
                {"algorithm": algorithm, "node_order": o},
                {"node_order": o},
                {"node_order": o},
            )
            for o in orders
        ],
        system_load=system_load,
        nodes=nodes,
        cms=cms,
        cps=cps,
        avg_sigma=avg_sigma,
        dc_ratio=dc_ratio,
        replications=replications,
        total_time=total_time,
        seed=seed,
        metric=metric,
        validate=validate,
        workers=workers,
        workers_mode=workers_mode,
        admission_engine=admission_engine,
    )
