"""SystemLoad sweep driver: turn a PanelSpec into series of points."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.figures import DEFAULT_LOADS, PanelSpec
from repro.experiments.runner import run_replications
from repro.metrics.stats import PointEstimate

__all__ = ["PanelResult", "run_panel"]

#: Defaults tuned so a full panel runs in seconds; the paper-scale values
#: (10 M time units, 10 replications) are available via parameters.
DEFAULT_TOTAL_TIME: float = 200_000.0
DEFAULT_REPLICATIONS: int = 3
DEFAULT_SEED: int = 2007


@dataclass(frozen=True, slots=True)
class PanelResult:
    """All series of one panel: algorithm → per-load point estimates."""

    spec: PanelSpec
    loads: tuple[float, ...]
    series: Mapping[str, tuple[PointEstimate, ...]]
    total_time: float
    replications: int

    def mean_curve(self, algorithm: str) -> list[float]:
        """The mean reject-ratio curve of one algorithm."""
        return [p.mean for p in self.series[algorithm]]

    def wins(self, algorithm: str, *, tol: float = 0.0) -> int:
        """Load points where ``algorithm``'s mean is lowest (ties excluded).

        ``tol`` widens the comparison: a win requires beating every other
        series by more than ``tol``.
        """
        others = [a for a in self.series if a != algorithm]
        count = 0
        for i in range(len(self.loads)):
            mine = self.series[algorithm][i].mean
            if all(self.series[o][i].mean > mine + tol for o in others):
                count += 1
        return count

    def mean_gap(self, better: str, worse: str) -> float:
        """Average (worse − better) reject-ratio gap across loads."""
        diffs = [
            self.series[worse][i].mean - self.series[better][i].mean
            for i in range(len(self.loads))
        ]
        return sum(diffs) / len(diffs)


def run_panel(
    spec: PanelSpec,
    *,
    loads: Sequence[float] | None = None,
    replications: int = DEFAULT_REPLICATIONS,
    total_time: float = DEFAULT_TOTAL_TIME,
    seed: int = DEFAULT_SEED,
    metric: str = "reject_ratio",
    validate: bool = True,
) -> PanelResult:
    """Run one figure panel: both algorithms over the SystemLoad grid.

    Replication seeds are derived from ``(seed, load index, rep)`` so every
    point is independent yet fully reproducible, while both algorithms of a
    panel see *identical* task sets at each point (paired comparison, as in
    the paper).
    """
    grid = tuple(loads) if loads is not None else DEFAULT_LOADS
    series: dict[str, list[PointEstimate]] = {a: [] for a in spec.algorithms}
    for li, load in enumerate(grid):
        cfg = spec.base_config(
            system_load=float(load),
            total_time=total_time,
            seed=seed + 7919 * li,  # distinct workload per load point
        )
        for algorithm in spec.algorithms:
            agg = run_replications(
                cfg,
                algorithm,
                replications,
                metric=metric,
                validate=validate,
            )
            series[algorithm].append(
                PointEstimate(x=float(load), ci=agg.ci, samples=agg.samples)
            )
    return PanelResult(
        spec=spec,
        loads=grid,
        series={a: tuple(pts) for a, pts in series.items()},
        total_time=total_time,
        replications=replications,
    )
