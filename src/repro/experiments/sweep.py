"""SystemLoad sweep driver: turn a PanelSpec into series of points.

All (load, algorithm, replication) runs of a panel flatten into one batch
and execute through the :class:`~repro.experiments.batch.BatchRunner`, so
a panel can fan out over worker processes (``workers=4``) — per-point
seeding is deterministic, so the parallel sweep is bit-identical to the
serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.figures import DEFAULT_LOADS, PanelSpec
from repro.experiments.runner import replication_seed
from repro.metrics.collector import validate_metric
from repro.metrics.stats import PointEstimate, mean_ci
from repro.workload.scenario import Scenario

__all__ = ["PanelResult", "run_panel"]

#: Defaults tuned so a full panel runs in seconds; the paper-scale values
#: (10 M time units, 10 replications) are available via parameters.
DEFAULT_TOTAL_TIME: float = 200_000.0
DEFAULT_REPLICATIONS: int = 3
DEFAULT_SEED: int = 2007


@dataclass(frozen=True, slots=True)
class PanelResult:
    """All series of one panel: algorithm → per-load point estimates."""

    spec: PanelSpec
    loads: tuple[float, ...]
    series: Mapping[str, tuple[PointEstimate, ...]]
    total_time: float
    replications: int

    def mean_curve(self, algorithm: str) -> list[float]:
        """The mean reject-ratio curve of one algorithm."""
        return [p.mean for p in self.series[algorithm]]

    def wins(self, algorithm: str, *, tol: float = 0.0) -> int:
        """Load points where ``algorithm``'s mean is lowest (ties excluded).

        ``tol`` widens the comparison: a win requires beating every other
        series by more than ``tol``.
        """
        others = [a for a in self.series if a != algorithm]
        count = 0
        for i in range(len(self.loads)):
            mine = self.series[algorithm][i].mean
            if all(self.series[o][i].mean > mine + tol for o in others):
                count += 1
        return count

    def mean_gap(self, better: str, worse: str) -> float:
        """Average (worse − better) reject-ratio gap across loads."""
        diffs = [
            self.series[worse][i].mean - self.series[better][i].mean
            for i in range(len(self.loads))
        ]
        return sum(diffs) / len(diffs)


def run_panel(
    spec: PanelSpec,
    *,
    loads: Sequence[float] | None = None,
    replications: int = DEFAULT_REPLICATIONS,
    total_time: float = DEFAULT_TOTAL_TIME,
    seed: int = DEFAULT_SEED,
    metric: str = "reject_ratio",
    validate: bool = True,
    workers: int | None = None,
) -> PanelResult:
    """Run one figure panel: both algorithms over the SystemLoad grid.

    Replication seeds are derived from ``(seed, load index, rep)`` so every
    point is independent yet fully reproducible, while both algorithms of a
    panel see *identical* task sets at each point (paired comparison, as in
    the paper).  ``workers`` fans the whole panel's runs out over processes.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    validate_metric(metric)
    grid = tuple(loads) if loads is not None else DEFAULT_LOADS

    specs: list[RunSpec] = []
    for li, load in enumerate(grid):
        cfg = spec.base_config(
            system_load=float(load),
            total_time=total_time,
            seed=seed + 7919 * li,  # distinct workload per load point
        )
        point = Scenario.from_config(cfg, name=spec.panel_id)
        for algorithm in spec.algorithms:
            for rep in range(replications):
                specs.append(
                    RunSpec(
                        scenario=point.with_seed(replication_seed(cfg.seed, rep)),
                        algorithm=algorithm,
                        # Grouped by grid index, not load value — a grid may
                        # legitimately repeat a load (each entry gets its own
                        # seed and its own point).
                        labels={
                            "load": float(load),
                            "load_index": li,
                            "replication": rep,
                        },
                        validate=validate,
                    )
                )

    results = BatchRunner(workers=workers).run(specs)

    series: dict[str, list[PointEstimate]] = {a: [] for a in spec.algorithms}
    for li, load in enumerate(grid):
        at_load = results.filter(load_index=li)
        for algorithm in spec.algorithms:
            samples = at_load.filter(algorithm=algorithm).values(metric)
            series[algorithm].append(
                PointEstimate(x=float(load), ci=mean_ci(samples), samples=samples)
            )
    return PanelResult(
        spec=spec,
        loads=grid,
        series={a: tuple(pts) for a, pts in series.items()},
        total_time=total_time,
        replications=replications,
    )
