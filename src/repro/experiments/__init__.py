"""Evaluation harness: figure registry, batch engine, sweep drivers.

Typical use::

    from repro.experiments import FIGURES, run_panel, render_panel
    result = run_panel(FIGURES["fig3a"], replications=3, total_time=300_000)
    print(render_panel(result))

Scenario batches::

    from repro import Scenario
    from repro.experiments import BatchRunner, RunSpec

    scenario = Scenario.paper_baseline(system_load=0.6,
                                       total_time=200_000.0, seed=7)
    specs = [RunSpec(scenario=scenario.with_seed(s), algorithm="EDF-DLT",
                     labels={"seed": s}) for s in range(8)]
    results = BatchRunner(workers=4).run(specs)
    print(results.aggregate("reject_ratio"))
"""

from repro.experiments.batch import BatchRunner, ResultSet, RunRecord, RunSpec
from repro.experiments.figures import FIGURES, PanelSpec, figure_ids
from repro.experiments.report import panel_to_csv, render_panel
from repro.experiments.runner import (
    ReplicatedResult,
    RunResult,
    run_replications,
    simulate,
)
from repro.experiments.sweep import PanelResult, run_panel

__all__ = [
    "BatchRunner",
    "FIGURES",
    "PanelResult",
    "PanelSpec",
    "ReplicatedResult",
    "ResultSet",
    "RunRecord",
    "RunResult",
    "RunSpec",
    "figure_ids",
    "panel_to_csv",
    "render_panel",
    "run_panel",
    "run_replications",
    "simulate",
]
