"""Evaluation harness: one registry entry per figure panel of the paper.

Typical use::

    from repro.experiments import FIGURES, run_panel, render_panel
    result = run_panel(FIGURES["fig3a"], replications=3, total_time=300_000)
    print(render_panel(result))
"""

from repro.experiments.figures import FIGURES, PanelSpec, figure_ids
from repro.experiments.report import panel_to_csv, render_panel
from repro.experiments.runner import RunResult, run_replications, simulate
from repro.experiments.sweep import PanelResult, run_panel

__all__ = [
    "FIGURES",
    "PanelResult",
    "PanelSpec",
    "RunResult",
    "figure_ids",
    "panel_to_csv",
    "render_panel",
    "run_panel",
    "run_replications",
    "simulate",
]
