"""Registry of every figure panel in the paper's evaluation (Section 5).

Each :class:`PanelSpec` captures one plotted panel: the two algorithms
compared, the configuration deltas against the Section 5.1 baseline
(``N=16, Cms=1, Cps=100, Avgσ=200, DCRatio=2``) and the x-axis
(SystemLoad ∈ {0.1, ..., 1.0} everywhere).

Notes on source typos (resolved here, flagged in DESIGN.md):

* Figure 7c's caption says ``Cms = 4`` while its embedded plot title reads
  ``cms=2`` (copy-paste slip in the TR); the sweep obviously intends
  Cms ∈ {1, 2, 4, 8}, so the registry uses 4.  Figure 11c is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.workload.spec import SimulationConfig

__all__ = ["BASELINE", "DEFAULT_LOADS", "FIGURES", "PanelSpec", "figure_ids"]

#: Section 5.1 baseline parameters (everything but load/horizon/seed).
BASELINE: Mapping[str, float | int] = {
    "nodes": 16,
    "cms": 1.0,
    "cps": 100.0,
    "avg_sigma": 200.0,
    "dc_ratio": 2.0,
}

#: The x-axis of every figure.
DEFAULT_LOADS: tuple[float, ...] = tuple(round(0.1 * k, 1) for k in range(1, 11))

#: The paper's per-run horizon (Section 5: 10,000,000 time units) and
#: replication count (ten runs per point).  The harness accepts overrides —
#: benches use smaller values; EXPERIMENTS.md records what was used.
PAPER_TOTAL_TIME: float = 10_000_000.0
PAPER_REPLICATIONS: int = 10


@dataclass(frozen=True, slots=True)
class PanelSpec:
    """One figure panel: two algorithms over a SystemLoad sweep."""

    panel_id: str
    title: str
    algorithms: tuple[str, str]
    overrides: Mapping[str, float | int] = field(default_factory=dict)
    show_ci: bool = False
    notes: str = ""

    def base_config(
        self,
        *,
        system_load: float,
        total_time: float,
        seed: int,
    ) -> SimulationConfig:
        """Materialize the panel's configuration at one load point."""
        params = dict(BASELINE)
        params.update(self.overrides)
        return SimulationConfig(
            nodes=int(params["nodes"]),
            cms=float(params["cms"]),
            cps=float(params["cps"]),
            system_load=system_load,
            avg_sigma=float(params["avg_sigma"]),
            dc_ratio=float(params["dc_ratio"]),
            total_time=total_time,
            seed=seed,
        )


def _edf_iit() -> tuple[str, str]:
    return ("EDF-DLT", "EDF-OPR-MN")


def _fifo_iit() -> tuple[str, str]:
    return ("FIFO-DLT", "FIFO-OPR-MN")


def _edf_us() -> tuple[str, str]:
    return ("EDF-DLT", "EDF-UserSplit")


def _fifo_us() -> tuple[str, str]:
    return ("FIFO-DLT", "FIFO-UserSplit")


def _build_registry() -> dict[str, PanelSpec]:
    panels: list[PanelSpec] = []

    def add(
        panel_id: str,
        title: str,
        algorithms: tuple[str, str],
        overrides: Mapping[str, float | int] | None = None,
        *,
        show_ci: bool = False,
        notes: str = "",
    ) -> None:
        panels.append(
            PanelSpec(
                panel_id=panel_id,
                title=title,
                algorithms=algorithms,
                overrides=dict(overrides or {}),
                show_ci=show_ci,
                notes=notes,
            )
        )

    # --- Figure 3: benefits of utilizing IITs (baseline, EDF) -----------
    add("fig3a", "Benefits of Utilizing IITs — baseline", _edf_iit())
    add(
        "fig3b",
        "Benefits of Utilizing IITs — baseline, 95% CI",
        _edf_iit(),
        show_ci=True,
    )

    # --- Figure 4: DCRatio effects (EDF) ---------------------------------
    for panel, dc in zip("abcd", (3, 10, 20, 100)):
        add(
            f"fig4{panel}",
            f"Benefits of Utilizing IITs — DCRatio = {dc}",
            _edf_iit(),
            {"dc_ratio": dc},
        )

    # --- Figure 5: DLT vs User-Split (EDF headline) ----------------------
    add("fig5a", "DLT-Based vs User-Split — baseline", _edf_us())
    add("fig5b", "DLT-Based vs User-Split — DCRatio = 10", _edf_us(), {"dc_ratio": 10})

    # --- Figure 6: Avgσ effects (EDF, IIT benefit) ------------------------
    for panel, avg in zip("abcd", (100, 200, 400, 800)):
        add(
            f"fig6{panel}",
            f"Benefits of Utilizing IITs — Avgσ = {avg}",
            _edf_iit(),
            {"avg_sigma": avg},
        )

    # --- Figure 7: Cms effects (EDF, IIT benefit) -------------------------
    for panel, cms in zip("abcd", (1, 2, 4, 8)):
        add(
            f"fig7{panel}",
            f"Benefits of Utilizing IITs — Cms = {cms}",
            _edf_iit(),
            {"cms": cms},
            notes="fig7c: TR plot header says cms=2; caption (Cms=4) is authoritative.",
        )

    # --- Figure 8: Cps effects (EDF, IIT benefit) -------------------------
    for panel, cps in zip("abcdef", (10, 50, 500, 1000, 5000, 10000)):
        add(
            f"fig8{panel}",
            f"Benefits of Utilizing IITs — Cps = {cps}",
            _edf_iit(),
            {"cps": cps},
        )

    # --- Figure 9: DCRatio effects (FIFO) ---------------------------------
    for panel, dc in zip("abcd", (3, 10, 20, 100)):
        add(
            f"fig9{panel}",
            f"Benefits of Utilizing IITs (FIFO) — DCRatio = {dc}",
            _fifo_iit(),
            {"dc_ratio": dc},
        )

    # --- Figure 10: Avgσ effects (FIFO) ------------------------------------
    for panel, avg in zip("abcd", (100, 200, 400, 800)):
        add(
            f"fig10{panel}",
            f"Benefits of Utilizing IITs (FIFO) — Avgσ = {avg}",
            _fifo_iit(),
            {"avg_sigma": avg},
        )

    # --- Figure 11: Cms effects (FIFO) --------------------------------------
    for panel, cms in zip("abcd", (1, 2, 4, 8)):
        add(
            f"fig11{panel}",
            f"Benefits of Utilizing IITs (FIFO) — Cms = {cms}",
            _fifo_iit(),
            {"cms": cms},
            notes="fig11c inherits the same caption/plot-header typo as fig7c.",
        )

    # --- Figure 12: Cps effects (FIFO) --------------------------------------
    for panel, cps in zip("abcdef", (10, 50, 500, 1000, 5000, 10000)):
        add(
            f"fig12{panel}",
            f"Benefits of Utilizing IITs (FIFO) — Cps = {cps}",
            _fifo_iit(),
            {"cps": cps},
        )

    # --- Figure 13: DLT vs User-Split, Avgσ (EDF) ---------------------------
    for panel, avg in zip("abcd", (100, 200, 400, 800)):
        add(
            f"fig13{panel}",
            f"DLT-Based vs User-Split — Avgσ = {avg}",
            _edf_us(),
            {"avg_sigma": avg},
        )

    # --- Figure 14: DLT vs User-Split, Cps + DCRatio (EDF) ------------------
    for panel, cps in zip("abcdef", (10, 50, 500, 1000, 5000, 10000)):
        add(
            f"fig14{panel}",
            f"DLT-Based vs User-Split — Cps = {cps}",
            _edf_us(),
            {"cps": cps},
        )
    add("fig14g", "DLT-Based vs User-Split — DCRatio = 3", _edf_us(), {"dc_ratio": 3})
    add("fig14h", "DLT-Based vs User-Split — DCRatio = 10", _edf_us(), {"dc_ratio": 10})

    # --- Figure 15: DLT vs User-Split, Avgσ (FIFO) ---------------------------
    for panel, avg in zip("abcd", (100, 200, 400, 800)):
        add(
            f"fig15{panel}",
            f"DLT-Based vs User-Split (FIFO) — Avgσ = {avg}",
            _fifo_us(),
            {"avg_sigma": avg},
        )

    # --- Figure 16: DLT vs User-Split, Cps + DCRatio (FIFO) ------------------
    for panel, cps in zip("abcdef", (10, 50, 500, 1000, 5000, 10000)):
        add(
            f"fig16{panel}",
            f"DLT-Based vs User-Split (FIFO) — Cps = {cps}",
            _fifo_us(),
            {"cps": cps},
        )
    add(
        "fig16g",
        "DLT-Based vs User-Split (FIFO) — DCRatio = 3",
        _fifo_us(),
        {"dc_ratio": 3},
    )
    add(
        "fig16h",
        "DLT-Based vs User-Split (FIFO) — DCRatio = 10",
        _fifo_us(),
        {"dc_ratio": 10},
    )

    registry = {p.panel_id: p for p in panels}
    if len(registry) != len(panels):  # pragma: no cover - construction bug
        raise RuntimeError("duplicate panel id in figure registry")
    return registry


#: panel id → spec, for all 64 panels of Figures 3-16.
FIGURES: dict[str, PanelSpec] = _build_registry()


def figure_ids() -> list[str]:
    """All panel ids, in registry (paper) order."""
    return list(FIGURES)
