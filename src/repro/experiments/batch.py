"""Batch execution: fan simulation runs out over worker processes.

:class:`BatchRunner` is the single execution engine behind
:func:`repro.experiments.runner.run_replications`,
:func:`repro.experiments.sweep.run_panel` and the ``repro run-scenario``
CLI subcommand.  It takes a flat list of :class:`RunSpec` (scenario +
algorithm + labels), executes each one — serially, or across a
:class:`concurrent.futures.ProcessPoolExecutor` — and returns a
:class:`ResultSet` of structured :class:`RunRecord` rows with JSON/CSV
export.

Determinism
-----------
Each :class:`RunSpec` carries a fully seeded
:class:`~repro.workload.scenario.Scenario`, so a run's result depends only
on its spec, never on scheduling order or worker count.  ``ex.map``
preserves submission order; the parallel path is therefore *bit-identical*
to the serial path (the test suite asserts this).
"""

from __future__ import annotations

import csv
import io
import json
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.algorithms import ALGORITHMS
from repro.core.errors import InvalidParameterError
from repro.core.fastpath import validate_admission_engine
from repro.core.partition import validate_node_order
from repro.metrics.collector import MetricsSummary, validate_metric
from repro.metrics.stats import ConfidenceInterval, mean_ci
from repro.sim.cluster_sim import SimulationOutput
from repro.workload.scenario import Scenario

__all__ = ["BatchRunner", "ResultSet", "RunRecord", "RunSpec"]

#: Label value types that survive the JSON/CSV round trip unchanged.
LabelValue = float | int | str

#: Adaptive chunking target: chunks per worker.  Several chunks per worker
#: keep the pool load-balanced when run times vary; chunks of several specs
#: amortize the pickling round trip on large batches.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One unit of batch work: run ``algorithm`` on ``scenario``.

    ``scenario`` may be a single-cluster :class:`Scenario` or a
    :class:`~repro.fleet.scenario.FleetScenario` — fleet points execute
    through :func:`repro.fleet.sim.simulate_fleet` and fan out over
    workers exactly like single-cluster points.

    ``labels`` are free-form coordinates (sweep point, replication index,
    …) carried through to the :class:`RunRecord` and its exports —
    :class:`BatchRunner` never interprets them.
    """

    scenario: Scenario
    algorithm: str
    labels: Mapping[str, LabelValue] = field(default_factory=dict)
    validate: bool = True
    trace: bool = False
    eager_release: bool = False
    shared_head_link: bool = False
    keep_output: bool = False
    node_order: str = "availability"
    admission_engine: str = "fast"

    def __post_init__(self) -> None:
        # Imported lazily: the fleet layer builds on this module.
        from repro.fleet.scenario import FleetScenario

        if not isinstance(self.scenario, (Scenario, FleetScenario)):
            raise InvalidParameterError(
                f"scenario must be a Scenario or FleetScenario, "
                f"got {self.scenario!r}"
            )
        if self.algorithm not in ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {self.algorithm!r}; "
                f"valid: {', '.join(sorted(ALGORITHMS))}"
            )
        validate_node_order(self.node_order)
        validate_admission_engine(self.admission_engine)


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One completed run: its spec coordinates plus the metrics.

    ``output`` is populated only when the spec asked to ``keep_output``
    (the raw :class:`SimulationOutput` — or
    :class:`~repro.fleet.sim.FleetOutput` for fleet points — is
    memory-heavy for big sweeps).
    """

    scenario: Scenario
    algorithm: str
    labels: Mapping[str, LabelValue]
    metrics: MetricsSummary
    output: SimulationOutput | Any | None = None

    def value(self, metric: str) -> float:
        """One numeric metric of this run (name validated)."""
        return float(getattr(self.metrics, validate_metric(metric)))

    def to_dict(self) -> dict[str, Any]:
        """Flat, JSON-friendly row: labels + scenario summary + metrics."""
        row: dict[str, Any] = {"algorithm": self.algorithm}
        row.update(self.labels)
        for key, val in self.scenario.describe().items():
            row.setdefault(f"scenario_{key}", val)
        row.update(self.metrics.as_dict())
        return row


def _execute_spec(spec: RunSpec) -> RunRecord:
    """Run one spec to completion (top-level so worker processes can pickle it)."""
    # Imported lazily: runner/fleet import this module for BatchRunner.
    from repro.fleet.scenario import FleetScenario

    if isinstance(spec.scenario, FleetScenario):
        from repro.fleet.sim import simulate_fleet

        fleet_out = simulate_fleet(
            spec.scenario,
            spec.algorithm,
            validate=spec.validate,
            trace=spec.trace,
            eager_release=spec.eager_release,
            shared_head_link=spec.shared_head_link,
            node_order=spec.node_order,
            admission_engine=spec.admission_engine,
        )
        return RunRecord(
            scenario=spec.scenario,
            algorithm=spec.algorithm,
            labels=dict(spec.labels),
            metrics=fleet_out.metrics,
            output=fleet_out if spec.keep_output else None,
        )

    from repro.experiments.runner import simulate

    result = simulate(
        spec.scenario,
        spec.algorithm,
        validate=spec.validate,
        trace=spec.trace,
        eager_release=spec.eager_release,
        shared_head_link=spec.shared_head_link,
        node_order=spec.node_order,
        admission_engine=spec.admission_engine,
    )
    return RunRecord(
        scenario=spec.scenario,
        algorithm=spec.algorithm,
        labels=dict(spec.labels),
        metrics=result.metrics,
        output=result.output if spec.keep_output else None,
    )


@dataclass(frozen=True, slots=True)
class ResultSet:
    """An ordered collection of :class:`RunRecord` with export helpers."""

    records: tuple[RunRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RunRecord:
        return self.records[index]

    # -- selection ---------------------------------------------------------
    def filter(
        self,
        predicate: Callable[[RunRecord], bool] | None = None,
        **labels: LabelValue,
    ) -> "ResultSet":
        """Records matching a predicate and/or exact label values.

        ``algorithm`` is accepted as a label-like keyword alongside the
        free-form labels: ``results.filter(algorithm="EDF-DLT", load=0.5)``.
        """
        algorithm = labels.pop("algorithm", None)

        def keep(rec: RunRecord) -> bool:
            if algorithm is not None and rec.algorithm != algorithm:
                return False
            if any(rec.labels.get(k) != v for k, v in labels.items()):
                return False
            return predicate is None or predicate(rec)

        return ResultSet(records=tuple(r for r in self.records if keep(r)))

    def group_by(self, key: str) -> dict[LabelValue, "ResultSet"]:
        """Partition by a label (or ``"algorithm"``), insertion-ordered."""
        groups: dict[LabelValue, list[RunRecord]] = {}
        for rec in self.records:
            value = rec.algorithm if key == "algorithm" else rec.labels.get(key)
            if value is None:
                raise InvalidParameterError(
                    f"record missing group_by label {key!r}: {sorted(rec.labels)}"
                )
            groups.setdefault(value, []).append(rec)
        return {v: ResultSet(records=tuple(rs)) for v, rs in groups.items()}

    # -- aggregation -------------------------------------------------------
    def values(self, metric: str = "reject_ratio") -> tuple[float, ...]:
        """One metric across all records, in record order."""
        validate_metric(metric)
        return tuple(float(getattr(r.metrics, metric)) for r in self.records)

    def aggregate(self, metric: str = "reject_ratio") -> ConfidenceInterval:
        """Mean ± 95% CI of one metric over all records."""
        return mean_ci(self.values(metric))

    # -- export ------------------------------------------------------------
    def to_records(self) -> list[dict[str, Any]]:
        """All rows as flat dicts (see :meth:`RunRecord.to_dict`)."""
        return [rec.to_dict() for rec in self.records]

    def to_json(self, *, indent: int | None = 2) -> str:
        """The result set as a JSON array of flat row objects."""
        return json.dumps(self.to_records(), indent=indent)

    def to_csv(self) -> str:
        """The result set as CSV (columns = union of row keys, first-seen order)."""
        rows = self.to_records()
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        writer.writerows(rows)
        return buf.getvalue()


@dataclass(frozen=True, slots=True)
class BatchRunner:
    """Executes :class:`RunSpec` lists, optionally across processes.

    Parameters
    ----------
    workers:
        ``None``, ``0`` or ``1`` → run serially in-process (the default:
        always available, no pickling round trip).  ``>= 2`` → fan out
        over an executor with that many workers (capped at the number of
        specs).  Results are identical either way; parallelism only buys
        wall-clock time.
    chunksize:
        Specs per inter-process message in parallel mode.  ``None``
        (default) sizes chunks adaptively from the batch and worker
        counts — ``ceil(n_specs / (workers * _CHUNKS_PER_WORKER))`` — so
        big batches of short runs avoid per-spec messaging overhead while
        small batches keep every worker busy; pass an explicit ``int`` to
        pin it.  Results are bit-identical for every chunking (``ex.map``
        preserves submission order).
    workers_mode:
        ``"process"`` (default) → :class:`ProcessPoolExecutor`, the fast
        path on platforms with cheap fork.  ``"thread"`` →
        :class:`ThreadPoolExecutor` for environments where fork/spawn is
        unavailable or prohibitively slow (sandboxes, some embedded
        interpreters).  The simulation kernel holds the GIL, so threads
        mostly buy overlap with I/O — but the results are bit-identical
        across all three execution paths (the test suite asserts it).
    """

    workers: int | None = None
    chunksize: int | None = None
    workers_mode: str = "process"

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise InvalidParameterError(
                f"workers must be >= 0 (0/1 = serial), got {self.workers}"
            )
        if self.chunksize is not None and self.chunksize < 1:
            raise InvalidParameterError(
                f"chunksize must be >= 1 (or None = adaptive), got {self.chunksize}"
            )
        if self.workers_mode not in ("process", "thread"):
            raise InvalidParameterError(
                f"workers_mode must be 'process' or 'thread', "
                f"got {self.workers_mode!r}"
            )

    def with_workers(self, workers: int | None) -> "BatchRunner":
        """A copy targeting a different worker count."""
        return replace(self, workers=workers)

    def effective_chunksize(self, n_specs: int, n_workers: int) -> int:
        """Specs per worker message for a batch of ``n_specs``.

        An explicit ``chunksize`` wins; otherwise the adaptive rule aims
        for :data:`_CHUNKS_PER_WORKER` chunks per worker — enough slack
        that uneven run times rebalance, while per-spec pickling overhead
        amortizes across big batches.
        """
        if self.chunksize is not None:
            return self.chunksize
        if n_specs <= 0 or n_workers <= 0:
            return 1
        return max(1, -(-n_specs // (n_workers * _CHUNKS_PER_WORKER)))

    def run(self, specs: Iterable[RunSpec]) -> ResultSet:
        """Execute every spec and return the records in submission order."""
        todo = tuple(specs)
        for spec in todo:
            if not isinstance(spec, RunSpec):
                raise InvalidParameterError(f"expected RunSpec, got {spec!r}")
        n_workers = min(self.workers or 1, len(todo))
        if n_workers <= 1:
            return ResultSet(records=tuple(_execute_spec(s) for s in todo))
        executor_cls: type[Executor] = (
            ThreadPoolExecutor if self.workers_mode == "thread" else ProcessPoolExecutor
        )
        chunksize = self.effective_chunksize(len(todo), n_workers)
        with executor_cls(max_workers=n_workers) as executor:
            records = tuple(
                executor.map(_execute_spec, todo, chunksize=chunksize)
            )
        return ResultSet(records=records)
