"""The Section 5.2 aggregate comparison: DLT-Based vs User-Split win stats.

The paper ran 330 simulations across system configurations and reports:

* User-Split beats the corresponding DLT algorithm 8.22% of the time;
* when DLT wins, the reject-ratio gains are
  average 0.121 / max 0.224 / min 0.003;
* when User-Split wins, the gains are negligible:
  average 0.016 / max 0.028 / min 0.003.

:func:`run_win_stats` reruns that study on a configurable grid (the full
paper grid is expensive; the bench uses a subset) and produces the same
four-row summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.experiments.figures import BASELINE
from repro.experiments.runner import run_replications
from repro.workload.spec import SimulationConfig

__all__ = ["WinStats", "default_grid", "render_win_stats", "run_win_stats"]


@dataclass(frozen=True, slots=True)
class WinStats:
    """Aggregate outcome of the DLT vs User-Split study."""

    comparisons: int
    dlt_wins: int
    user_split_wins: int
    ties: int
    dlt_gains: tuple[float, ...]
    user_split_gains: tuple[float, ...]

    @property
    def user_split_win_fraction(self) -> float:
        """Fraction of comparisons User-Split wins (paper: 0.0822)."""
        if self.comparisons == 0:
            return 0.0
        return self.user_split_wins / self.comparisons

    @staticmethod
    def _stats(gains: tuple[float, ...]) -> tuple[float, float, float]:
        if not gains:
            return (0.0, 0.0, 0.0)
        return (sum(gains) / len(gains), max(gains), min(gains))

    @property
    def dlt_gain_avg_max_min(self) -> tuple[float, float, float]:
        """Average / max / min reject-ratio gain when DLT wins."""
        return self._stats(self.dlt_gains)

    @property
    def user_split_gain_avg_max_min(self) -> tuple[float, float, float]:
        """Average / max / min gain when User-Split wins."""
        return self._stats(self.user_split_gains)


def default_grid(
    *,
    loads: Sequence[float] = (0.3, 0.6, 0.9),
    dc_ratios: Sequence[float] = (2.0, 3.0, 10.0),
    cps_values: Sequence[float] = (100.0, 1000.0),
) -> list[Mapping[str, float]]:
    """A reduced version of the paper's 330-simulation grid."""
    grid: list[Mapping[str, float]] = []
    for dc in dc_ratios:
        for cps in cps_values:
            for load in loads:
                grid.append({"dc_ratio": dc, "cps": cps, "system_load": load})
    return grid


def run_win_stats(
    grid: Iterable[Mapping[str, float]],
    *,
    policy: str = "EDF",
    replications: int = 2,
    total_time: float = 60_000.0,
    seed: int = 2007,
    tie_tol: float = 1e-3,
) -> WinStats:
    """Compare <policy>-DLT against <policy>-UserSplit over a config grid.

    Each grid point runs both algorithms on identical workloads (paired
    seeds); a win requires a mean reject-ratio difference above
    ``tie_tol``.
    """
    dlt_alg = f"{policy}-DLT"
    us_alg = f"{policy}-UserSplit"
    dlt_wins = us_wins = ties = 0
    dlt_gains: list[float] = []
    us_gains: list[float] = []
    for i, overrides in enumerate(grid):
        params = dict(BASELINE)
        params.update(overrides)
        cfg = SimulationConfig(
            nodes=int(params["nodes"]),
            cms=float(params["cms"]),
            cps=float(params["cps"]),
            system_load=float(params["system_load"]),
            avg_sigma=float(params["avg_sigma"]),
            dc_ratio=float(params["dc_ratio"]),
            total_time=total_time,
            seed=seed + 104_729 * i,
        )
        r_dlt = run_replications(cfg, dlt_alg, replications).ci.mean
        r_us = run_replications(cfg, us_alg, replications).ci.mean
        gap = r_us - r_dlt  # positive ⇒ DLT better
        if gap > tie_tol:
            dlt_wins += 1
            dlt_gains.append(gap)
        elif gap < -tie_tol:
            us_wins += 1
            us_gains.append(-gap)
        else:
            ties += 1
    return WinStats(
        comparisons=dlt_wins + us_wins + ties,
        dlt_wins=dlt_wins,
        user_split_wins=us_wins,
        ties=ties,
        dlt_gains=tuple(dlt_gains),
        user_split_gains=tuple(us_gains),
    )


def render_win_stats(stats: WinStats, *, policy: str = "EDF") -> str:
    """The Section 5.2 summary rows, paper-style."""
    d_avg, d_max, d_min = stats.dlt_gain_avg_max_min
    u_avg, u_max, u_min = stats.user_split_gain_avg_max_min
    lines = [
        f"Section 5.2 aggregate — {policy}-DLT vs {policy}-UserSplit "
        f"over {stats.comparisons} configurations",
        f"  User-Split wins: {stats.user_split_win_fraction:.2%} "
        f"(paper: 8.22% over 330 sims)",
        f"  DLT wins {stats.dlt_wins}, User-Split wins "
        f"{stats.user_split_wins}, ties {stats.ties}",
        f"  gains when DLT wins       avg/max/min = "
        f"{d_avg:.3f}/{d_max:.3f}/{d_min:.3f}  (paper: 0.121/0.224/0.003)",
        f"  gains when User-Split wins avg/max/min = "
        f"{u_avg:.3f}/{u_max:.3f}/{u_min:.3f}  (paper: 0.016/0.028/0.003)",
    ]
    return "\n".join(lines)
