"""Plain-text / CSV rendering of panel results.

The paper publishes curves; a terminal-friendly reproduction publishes the
same series as aligned tables (plus CSV for downstream plotting).
"""

from __future__ import annotations

import io

from repro.experiments.sweep import PanelResult

__all__ = ["panel_to_csv", "render_chart", "render_panel"]


def render_panel(result: PanelResult, *, show_ci: bool | None = None) -> str:
    """Aligned text table: one row per SystemLoad, one column per algorithm.

    ``show_ci`` defaults to the panel's ``show_ci`` flag (Figure 3b).
    """
    spec = result.spec
    ci = spec.show_ci if show_ci is None else show_ci
    algs = list(spec.algorithms)

    header = [f"{spec.panel_id}: {spec.title}"]
    params = {**dict(_baseline_items()), **dict(spec.overrides)}
    header.append(
        "nodes={nodes}, Cms={cms}, Cps={cps}, avg data size={avg_sigma}, "
        "dcratio={dc_ratio}".format(**params)
    )
    header.append(
        f"horizon={result.total_time:g} time units, "
        f"replications={result.replications}, metric=Task Reject Ratio"
    )

    width = 24 if ci else 12
    cols = ["load".ljust(6)] + [a.ljust(width) for a in algs]
    lines = header + ["", "  ".join(cols)]
    for i, load in enumerate(result.loads):
        row = [f"{load:<6.2f}"]
        for a in algs:
            p = result.series[a][i]
            cell = f"{p.mean:.4f} ± {p.ci.half_width:.4f}" if ci else f"{p.mean:.4f}"
            row.append(cell.ljust(width))
        lines.append("  ".join(row))

    better, worse = algs[0], algs[1]
    gap = result.mean_gap(better, worse)
    lines.append("")
    lines.append(
        f"mean gap ({worse} − {better}): {gap:+.4f}  |  "
        f"{better} wins {result.wins(better)}/{len(result.loads)} load points"
    )
    if spec.notes:
        lines.append(f"note: {spec.notes}")
    return "\n".join(lines)


def render_chart(result: PanelResult, *, height: int = 12, width: int = 64) -> str:
    """ASCII line chart of the panel — the figure, in a terminal.

    First algorithm plotted with ``*``, second with ``o`` (``@`` where
    they overlap); y is Task Reject Ratio, x is SystemLoad.
    """
    algs = list(result.spec.algorithms)
    ys = {a: result.mean_curve(a) for a in algs}
    y_max = max(max(v) for v in ys.values())
    y_max = max(y_max, 1e-6) * 1.05
    marks = {algs[0]: "*", algs[1]: "o"}

    grid = [[" "] * width for _ in range(height)]
    n_pts = len(result.loads)

    def cell(i: int, y: float) -> tuple[int, int]:
        col = 0 if n_pts == 1 else round(i * (width - 1) / (n_pts - 1))
        row = height - 1 - min(height - 1, round(y / y_max * (height - 1)))
        return row, col

    for alg in algs:
        for i, y in enumerate(ys[alg]):
            row, col = cell(i, y)
            grid[row][col] = "@" if grid[row][col] not in (" ", marks[alg]) else marks[alg]

    lines = [
        f"{result.spec.panel_id}: Task Reject Ratio vs SystemLoad "
        f"({marks[algs[0]]}={algs[0]}, {marks[algs[1]]}={algs[1]}, @=both)"
    ]
    for r, row in enumerate(grid):
        label = y_max * (height - 1 - r) / (height - 1)
        lines.append(f"{label:6.3f} |{''.join(row)}")
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(
        " " * 8
        + f"{result.loads[0]:<10.2f}"
        + " " * max(width - 22, 0)
        + f"{result.loads[-1]:>10.2f}"
    )
    return "\n".join(lines)


def panel_to_csv(result: PanelResult) -> str:
    """CSV with columns: load, then mean/ci per algorithm."""
    algs = list(result.spec.algorithms)
    buf = io.StringIO()
    cols = ["system_load"]
    for a in algs:
        cols += [f"{a}_mean", f"{a}_ci95"]
    buf.write(",".join(cols) + "\n")
    for i, load in enumerate(result.loads):
        row = [f"{load:.3f}"]
        for a in algs:
            p = result.series[a][i]
            row += [f"{p.mean:.6f}", f"{p.ci.half_width:.6f}"]
        buf.write(",".join(row) + "\n")
    return buf.getvalue()


def _baseline_items():
    from repro.experiments.figures import BASELINE

    return BASELINE.items()
