"""Machine-checkable registry of the paper's empirical claims.

Reproductions rot when the prose claims and the code drift apart.  This
module pins every falsifiable statement of Sections 5-6 to a predicate
over regenerated data, so `pytest tests/test_claims.py` *is* the claim
audit:

====  =======================================================================
id    claim (paper wording, abridged)
====  =======================================================================
C1    "EDF-DLT always leads to a lower Task Reject Ratio than EDF-OPR-MN"
      (Sec. 5.1, Fig. 3) — checked as ≤ on replication means.
C2    "as the DCRatio increases, the performance of EDF-DLT and
      EDF-OPR-MN converges ... when the DCRatio is extremely high (equal
      to 100), the two algorithms perform almost the same" (Fig. 4d).
C3    "EDF-DLT always leads to smaller Task Reject Ratios than
      EDF-UserSplit" at the baseline DCRatio = 2 (Fig. 5a).
C4    "when a DLT-Based algorithm performs better, its Task Reject Ratio
      is significantly lower ... when a User-Split algorithm performs
      better, only negligible gains" (Sec. 5.2).
C5    Theorem 4: actual completion never exceeds the estimate (checked on
      every executed task by the runtime validator; re-asserted here).
C6    Rejection ratio grows with SystemLoad (the x-axis ordering of every
      figure).
====  =======================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.figures import FIGURES
from repro.experiments.runner import simulate
from repro.experiments.sweep import PanelResult, run_panel
from repro.experiments.sec52 import default_grid, run_win_stats
from repro.workload.spec import SimulationConfig

__all__ = ["CLAIMS", "ClaimCheck", "check_claim"]


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """Outcome of auditing one claim."""

    claim_id: str
    holds: bool
    detail: str


@dataclass(frozen=True, slots=True)
class _Scale:
    total_time: float = 400_000.0
    replications: int = 3
    loads: tuple[float, ...] = (0.2, 0.5, 0.8, 1.0)
    seed: int = 2007


def _panel(panel_id: str, scale: _Scale) -> PanelResult:
    return run_panel(
        FIGURES[panel_id],
        loads=scale.loads,
        replications=scale.replications,
        total_time=scale.total_time,
        seed=scale.seed,
    )


def _c1_dlt_beats_opr(scale: _Scale) -> ClaimCheck:
    result = _panel("fig3a", scale)
    tol = 0.01  # replication noise at reduced scale
    bad = [
        (load, result.series["EDF-DLT"][i].mean, result.series["EDF-OPR-MN"][i].mean)
        for i, load in enumerate(result.loads)
        if result.series["EDF-DLT"][i].mean > result.series["EDF-OPR-MN"][i].mean + tol
    ]
    return ClaimCheck(
        claim_id="C1",
        holds=not bad,
        detail=(
            "EDF-DLT <= EDF-OPR-MN at every load"
            if not bad
            else f"violated at {bad}"
        ),
    )


def _c2_dcratio_convergence(scale: _Scale) -> ClaimCheck:
    tight = _panel("fig3a", scale)  # DCRatio = 2
    loose = _panel("fig4d", scale)  # DCRatio = 100
    gap_tight = tight.mean_gap("EDF-DLT", "EDF-OPR-MN")
    gap_loose = abs(loose.mean_gap("EDF-DLT", "EDF-OPR-MN"))
    holds = gap_loose <= max(gap_tight, 0.0) + 0.005 and gap_loose < 0.01
    return ClaimCheck(
        claim_id="C2",
        holds=holds,
        detail=(
            f"gap at DCRatio=2: {gap_tight:+.4f}; at DCRatio=100: "
            f"{gap_loose:.4f} (must be ~0 and no larger)"
        ),
    )


def _c3_dlt_beats_user_split(scale: _Scale) -> ClaimCheck:
    result = _panel("fig5a", scale)
    tol = 0.04  # User-Split randomness needs more slack at reduced scale
    bad = [
        load
        for i, load in enumerate(result.loads)
        if result.series["EDF-DLT"][i].mean
        > result.series["EDF-UserSplit"][i].mean + tol
    ]
    return ClaimCheck(
        claim_id="C3",
        holds=not bad,
        detail=(
            "EDF-DLT <= EDF-UserSplit at every baseline load"
            if not bad
            else f"violated at loads {bad}"
        ),
    )


def _c4_asymmetric_gains(scale: _Scale) -> ClaimCheck:
    stats = run_win_stats(
        default_grid(loads=scale.loads),
        replications=scale.replications,
        total_time=scale.total_time,
        seed=scale.seed,
    )
    d_avg = stats.dlt_gain_avg_max_min[0]
    u_avg = stats.user_split_gain_avg_max_min[0]
    holds = stats.dlt_wins > stats.user_split_wins and (
        stats.user_split_wins == 0 or d_avg >= u_avg
    )
    return ClaimCheck(
        claim_id="C4",
        holds=holds,
        detail=(
            f"DLT wins {stats.dlt_wins}/{stats.comparisons} "
            f"(avg gain {d_avg:.3f}); User-Split wins "
            f"{stats.user_split_wins} (avg gain {u_avg:.3f})"
        ),
    )


def _c5_theorem4(scale: _Scale) -> ClaimCheck:
    cfg = SimulationConfig(
        nodes=16,
        cms=1.0,
        cps=100.0,
        system_load=0.9,
        avg_sigma=200.0,
        dc_ratio=2.0,
        total_time=scale.total_time,
        seed=scale.seed,
    )
    result = simulate(cfg, "EDF-DLT", trace=True)
    rep = result.output.validation
    return ClaimCheck(
        claim_id="C5",
        holds=rep.ok,
        detail=rep.summary(),
    )


def _c6_monotone_in_load(scale: _Scale) -> ClaimCheck:
    result = _panel("fig3a", scale)
    curve = result.mean_curve("EDF-DLT")
    holds = all(b >= a - 0.03 for a, b in zip(curve, curve[1:]))
    return ClaimCheck(
        claim_id="C6",
        holds=holds,
        detail=f"EDF-DLT curve over loads {result.loads}: {[f'{v:.3f}' for v in curve]}",
    )


#: claim id → audit function.
CLAIMS: dict[str, Callable[[_Scale], ClaimCheck]] = {
    "C1": _c1_dlt_beats_opr,
    "C2": _c2_dcratio_convergence,
    "C3": _c3_dlt_beats_user_split,
    "C4": _c4_asymmetric_gains,
    "C5": _c5_theorem4,
    "C6": _c6_monotone_in_load,
}


def check_claim(claim_id: str, **scale_overrides) -> ClaimCheck:
    """Audit one claim at the given scale (defaults are test-friendly)."""
    try:
        fn = CLAIMS[claim_id]
    except KeyError:
        known = ", ".join(sorted(CLAIMS))
        raise KeyError(f"unknown claim {claim_id!r}; known: {known}") from None
    return fn(_Scale(**scale_overrides))
