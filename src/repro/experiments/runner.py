"""Single-run and replicated-run drivers.

``simulate`` = generate workload → instantiate algorithm → execute DES →
summarize.  It accepts either the composable
:class:`~repro.workload.scenario.Scenario` (the primary API) or a legacy
:class:`~repro.workload.spec.SimulationConfig` (adapted through
``Scenario.from_config`` — bit-identical results).

``run_replications`` repeats it with independent seeds and aggregates one
metric into a confidence interval, exactly like each point of the paper's
figures ("the average performance of ten simulations ... same parameters
... different random numbers").  Execution goes through the
:class:`~repro.experiments.batch.BatchRunner`, so replications can fan out
over worker processes (``workers=4``) with results bit-identical to the
serial path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithms import make_algorithm
from repro.experiments.batch import BatchRunner, RunSpec
from repro.metrics.collector import MetricsSummary, summarize, validate_metric
from repro.metrics.stats import ConfidenceInterval, mean_ci
from repro.sim.cluster_sim import ClusterSimulation, SimulationOutput
from repro.workload.scenario import Scenario
from repro.workload.spec import SimulationConfig

__all__ = ["ReplicatedResult", "RunResult", "run_replications", "simulate"]

#: Either experiment description: the composable Scenario or the legacy
#: flat config (which adapts to the equivalent Scenario).
ExperimentInput = SimulationConfig | Scenario


def as_scenario(config: ExperimentInput) -> Scenario:
    """Normalize an experiment description to a :class:`Scenario`."""
    if isinstance(config, Scenario):
        return config
    return Scenario.from_config(config)


@dataclass(frozen=True, slots=True)
class RunResult:
    """Output + metrics of a single simulation run."""

    config: ExperimentInput
    algorithm: str
    output: SimulationOutput
    metrics: MetricsSummary

    @property
    def scenario(self) -> Scenario:
        """The run's description as a scenario."""
        return as_scenario(self.config)


@dataclass(frozen=True, slots=True)
class ReplicatedResult:
    """Aggregated metric over R independent replications."""

    config: ExperimentInput
    algorithm: str
    metric: str
    ci: ConfidenceInterval
    samples: tuple[float, ...]
    runs: tuple[RunResult, ...]


def simulate(
    config: ExperimentInput,
    algorithm: str,
    *,
    validate: bool = True,
    trace: bool = False,
    eager_release: bool = False,
    shared_head_link: bool = False,
    node_order: str = "availability",
    admission_engine: str = "fast",
    obs=None,
) -> RunResult:
    """Run one simulation of ``algorithm`` under ``config``.

    The workload (arrivals, sizes, deadlines) depends only on the
    scenario's seed — every algorithm sees the identical task set;
    algorithm-side randomness (User-Split) draws from a separate child
    stream of the same seed.  ``node_order`` selects the tie-break among
    simultaneously available nodes (default: the paper's node-id order);
    ``admission_engine`` picks the fast or reference schedulability test
    (bit-identical outputs, see :mod:`repro.core.fastpath`);
    ``obs`` threads an optional :class:`repro.obs.Observability` bundle
    into the simulation (instrumented runs stay bit-identical).
    """
    scenario = as_scenario(config)
    tasks = scenario.generate_tasks()
    instance = make_algorithm(
        algorithm, rng=scenario.algorithm_rng(), node_order=node_order
    )
    sim = ClusterSimulation(
        scenario.cluster,
        instance,
        tasks,
        horizon=scenario.total_time,
        validate=validate,
        trace=trace,
        eager_release=eager_release,
        shared_head_link=shared_head_link,
        admission_engine=admission_engine,
        faults=scenario.fault_plan(),
        obs=obs,
    )
    output = sim.run()
    return RunResult(
        config=config,
        algorithm=algorithm,
        output=output,
        metrics=summarize(output),
    )


def replication_seed(base_seed: int, replication: int) -> int:
    """Deterministic, well-spread seed for replication ``replication``.

    Derived through a :class:`numpy.random.SeedSequence` so nearby base
    seeds / indices do not produce correlated streams.
    """
    ss = np.random.SeedSequence([int(base_seed), int(replication)])
    return int(ss.generate_state(1, dtype=np.uint32)[0])


def run_replications(
    config: ExperimentInput,
    algorithm: str,
    replications: int,
    *,
    metric: str = "reject_ratio",
    validate: bool = True,
    keep_runs: bool = False,
    trace: bool = False,
    eager_release: bool = False,
    shared_head_link: bool = False,
    workers: int | None = None,
) -> ReplicatedResult:
    """Run ``replications`` independent simulations and aggregate ``metric``.

    Parameters
    ----------
    metric:
        Name of a numeric :class:`~repro.metrics.collector.MetricsSummary`
        metric to aggregate (default the paper's Task Reject Ratio).
        Validated up front — a typo raises ``InvalidParameterError``
        before any simulation time is spent.
    keep_runs:
        Retain the full per-run outputs (memory-heavy for big sweeps).
    workers:
        Worker processes for the underlying
        :class:`~repro.experiments.batch.BatchRunner`; ``None``/``0``/``1``
        run serially.  Results are identical for every worker count.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    validate_metric(metric)

    per_rep: list[ExperimentInput] = []
    specs: list[RunSpec] = []
    for rep in range(replications):
        seed = replication_seed(config.seed, rep)
        rep_config: ExperimentInput = (
            config.with_seed(seed)
            if isinstance(config, Scenario)
            else config.with_overrides(seed=seed)
        )
        per_rep.append(rep_config)
        specs.append(
            RunSpec(
                scenario=as_scenario(rep_config),
                algorithm=algorithm,
                labels={"replication": rep},
                validate=validate,
                trace=trace,
                eager_release=eager_release,
                shared_head_link=shared_head_link,
                keep_output=keep_runs,
            )
        )

    results = BatchRunner(workers=workers).run(specs)
    samples = [float(getattr(rec.metrics, metric)) for rec in results]
    runs: list[RunResult] = []
    if keep_runs:
        for rep_config, rec in zip(per_rep, results):
            assert rec.output is not None  # keep_output was set on the spec
            runs.append(
                RunResult(
                    config=rep_config,
                    algorithm=algorithm,
                    output=rec.output,
                    metrics=rec.metrics,
                )
            )
    return ReplicatedResult(
        config=config,
        algorithm=algorithm,
        metric=metric,
        ci=mean_ci(samples),
        samples=tuple(samples),
        runs=tuple(runs),
    )
