"""Single-run and replicated-run drivers.

``simulate`` = generate workload → instantiate algorithm → execute DES →
summarize.  ``run_replications`` repeats it with independent seeds and
aggregates one metric into a confidence interval, exactly like each point
of the paper's figures ("the average performance of ten simulations ...
same parameters ... different random numbers").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithms import make_algorithm
from repro.metrics.collector import MetricsSummary, summarize
from repro.metrics.stats import ConfidenceInterval, mean_ci
from repro.sim.cluster_sim import ClusterSimulation, SimulationOutput
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import SimulationConfig

__all__ = ["ReplicatedResult", "RunResult", "run_replications", "simulate"]


@dataclass(frozen=True, slots=True)
class RunResult:
    """Output + metrics of a single simulation run."""

    config: SimulationConfig
    algorithm: str
    output: SimulationOutput
    metrics: MetricsSummary


@dataclass(frozen=True, slots=True)
class ReplicatedResult:
    """Aggregated metric over R independent replications."""

    config: SimulationConfig
    algorithm: str
    metric: str
    ci: ConfidenceInterval
    samples: tuple[float, ...]
    runs: tuple[RunResult, ...]


def simulate(
    config: SimulationConfig,
    algorithm: str,
    *,
    validate: bool = True,
    trace: bool = False,
    eager_release: bool = False,
    shared_head_link: bool = False,
) -> RunResult:
    """Run one simulation of ``algorithm`` under ``config``.

    The workload (arrivals, sizes, deadlines) depends only on the config's
    seed — every algorithm sees the identical task set; algorithm-side
    randomness (User-Split) draws from a separate child stream of the same
    seed.
    """
    generator = WorkloadGenerator(config)
    tasks = generator.generate()
    instance = make_algorithm(algorithm, rng=generator.algorithm_rng())
    sim = ClusterSimulation(
        config.cluster,
        instance,
        tasks,
        horizon=config.total_time,
        validate=validate,
        trace=trace,
        eager_release=eager_release,
        shared_head_link=shared_head_link,
    )
    output = sim.run()
    return RunResult(
        config=config,
        algorithm=algorithm,
        output=output,
        metrics=summarize(output),
    )


def replication_seed(base_seed: int, replication: int) -> int:
    """Deterministic, well-spread seed for replication ``replication``.

    Derived through a :class:`numpy.random.SeedSequence` so nearby base
    seeds / indices do not produce correlated streams.
    """
    ss = np.random.SeedSequence([int(base_seed), int(replication)])
    return int(ss.generate_state(1, dtype=np.uint32)[0])


def run_replications(
    config: SimulationConfig,
    algorithm: str,
    replications: int,
    *,
    metric: str = "reject_ratio",
    validate: bool = True,
    keep_runs: bool = False,
    **sim_kwargs: bool,
) -> ReplicatedResult:
    """Run ``replications`` independent simulations and aggregate ``metric``.

    Parameters
    ----------
    metric:
        Attribute name of :class:`~repro.metrics.collector.MetricsSummary`
        to aggregate (default the paper's Task Reject Ratio).
    keep_runs:
        Retain the full per-run outputs (memory-heavy for big sweeps).
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    samples: list[float] = []
    runs: list[RunResult] = []
    for rep in range(replications):
        cfg = config.with_overrides(seed=replication_seed(config.seed, rep))
        result = simulate(cfg, algorithm, validate=validate, **sim_kwargs)
        samples.append(float(getattr(result.metrics, metric)))
        if keep_runs:
            runs.append(result)
    return ReplicatedResult(
        config=config,
        algorithm=algorithm,
        metric=metric,
        ci=mean_ci(samples),
        samples=tuple(samples),
        runs=tuple(runs),
    )
