"""Reward models: turn routing feedback into scalar learning signal.

A :class:`RewardModel` maps each task's
:class:`~repro.learn.feedback.RoutingFeedback` to a reward in ``[0, 1]``
— or to ``None`` when the outcome needed is not known yet (the bandit
then waits for the task's next feedback phase).  Three built-ins cover
the axes the multi-source DLT trade-off analysis identifies:

``reject-penalty``
    Pure admission signal: 1 for an accepted task, 0 for a reject.
    Resolves immediately at admission — the fastest-learning model, and
    the one aligned with the paper's headline Task Reject Ratio.
``slack-weighted``
    Quality-of-acceptance signal: accepted tasks earn ``0.5`` plus up to
    ``0.5`` more the earlier they *actually* finish within their deadline
    window; deadline misses (possible only under the shared-link
    ablation) and rejects earn 0.  Resolves at completion.
``utilization-weighted``
    Load-spreading signal: an accepted task earns more when the chosen
    member had little reserved backlog relative to the task's deadline
    window (``1 / (1 + backlog/deadline)``), pushing the router away
    from piling commitments onto one member.  Resolves at admission.

All models are frozen, stateless dataclasses: picklable, hashable, and
free of randomness — determinism stays entirely the caller's seed
discipline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.errors import InvalidParameterError
from repro.learn.feedback import PHASE_COMPLETION, RoutingFeedback

__all__ = [
    "REWARD_MODELS",
    "RejectPenaltyReward",
    "RewardModel",
    "SlackWeightedReward",
    "UtilizationWeightedReward",
    "make_reward_model",
    "reward_model_names",
    "validate_reward_model",
]


class RewardModel(ABC):
    """Strategy interface: score one task's routing outcome.

    Implementations return a reward in ``[0, 1]`` once the outcome is
    determined, or ``None`` to defer until a later feedback phase (the
    fleet delivers ``"admission"`` first, then ``"completion"``).
    """

    #: Registry name of the model (e.g. ``"reject-penalty"``).
    name: str = "abstract"

    #: Whether :meth:`reward` may defer to the completion phase.  Models
    #: that always resolve at admission set this ``False`` so the fleet
    #: simulation skips completion tracking entirely (the hot routing
    #: loop never scans in-flight tasks for them).  Must stay ``True``
    #: whenever ``reward`` can return ``None``.
    needs_completion: bool = True

    @abstractmethod
    def reward(self, feedback: RoutingFeedback) -> float | None:
        """The task's reward, or ``None`` if not yet determinable."""


@dataclass(frozen=True, slots=True)
class RejectPenaltyReward(RewardModel):
    """1 for an accepted task, 0 for a reject; resolves at admission."""

    name = "reject-penalty"
    needs_completion = False

    def reward(self, feedback: RoutingFeedback) -> float | None:
        """Accept → 1, reject → 0, known as soon as the admission ran."""
        return 1.0 if feedback.accepted else 0.0


@dataclass(frozen=True, slots=True)
class SlackWeightedReward(RewardModel):
    """Reward early actual completions inside the deadline window.

    Rejects score 0 at admission.  An accepted task waits for its
    completion feedback and then scores ``0.5 + 0.5 × slack_fraction``
    where ``slack_fraction = (absolute_deadline − actual_completion) /
    deadline`` clipped to ``[0, 1]`` — meeting the deadline exactly earns
    the 0.5 acceptance floor, finishing instantly earns 1.  A missed
    deadline (shared-link ablation only) scores 0.
    """

    name = "slack-weighted"

    def reward(self, feedback: RoutingFeedback) -> float | None:
        """0 on reject; defer accepted tasks to their completion phase."""
        if not feedback.accepted:
            return 0.0
        if feedback.phase != PHASE_COMPLETION or feedback.actual_completion is None:
            return None
        if feedback.deadline_met is False:
            return 0.0
        slack = feedback.absolute_deadline - feedback.actual_completion
        fraction = min(max(slack / feedback.deadline, 0.0), 1.0)
        return 0.5 + 0.5 * fraction


@dataclass(frozen=True, slots=True)
class UtilizationWeightedReward(RewardModel):
    """Reward acceptance on lightly committed members; resolves at admission.

    An accepted task earns ``1 / (1 + backlog / deadline)``: routing onto
    an idle member earns ~1, routing onto a member whose reservations
    already stretch a full deadline window ahead earns ~0.5, and deeper
    backlogs earn less — a pressure toward spreading commitments (and
    thus utilization) across the fleet.  Rejects earn 0.
    """

    name = "utilization-weighted"
    needs_completion = False

    def reward(self, feedback: RoutingFeedback) -> float | None:
        """Accept → backlog-discounted reward, reject → 0."""
        if not feedback.accepted:
            return 0.0
        return 1.0 / (1.0 + feedback.backlog / feedback.deadline)


#: Registry of reward models, keyed by CLI/config name.
REWARD_MODELS: dict[str, type[RewardModel]] = {
    RejectPenaltyReward.name: RejectPenaltyReward,
    SlackWeightedReward.name: SlackWeightedReward,
    UtilizationWeightedReward.name: UtilizationWeightedReward,
}


def reward_model_names() -> tuple[str, ...]:
    """All registered reward-model names, sorted."""
    return tuple(sorted(REWARD_MODELS))


def validate_reward_model(name: str) -> str:
    """Return ``name`` if it names a reward model, else raise."""
    if name not in REWARD_MODELS:
        raise InvalidParameterError(
            f"unknown reward model {name!r}; "
            f"valid: {', '.join(reward_model_names())}"
        )
    return name


def make_reward_model(name: str) -> RewardModel:
    """Instantiate a reward model by registry name."""
    validate_reward_model(name)
    return REWARD_MODELS[name]()
