"""Learning configuration: the knobs a bandit routing policy runs with.

:class:`LearnConfig` is the frozen, picklable bundle of learning
hyper-parameters carried by a :class:`~repro.fleet.scenario.FleetScenario`
(field ``learn``) so that learning runs ride the batch engine exactly
like static ones: the scenario stays a pure value object, and the fleet
simulation instantiates a fresh, seeded bandit from it per run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.errors import InvalidParameterError
from repro.learn.rewards import validate_reward_model

__all__ = ["LEARN_MODES", "LearnConfig"]

#: What a bandit's arms index: the built-in static routing policies, or
#: the member clusters directly.
LEARN_MODES: tuple[str, ...] = ("policies", "clusters")


@dataclass(frozen=True, slots=True)
class LearnConfig:
    """Hyper-parameters of a learning (bandit) routing policy.

    Parameters
    ----------
    arms:
        In ``"policies"`` mode: the static routing policies the bandit
        selects among (distinct registry names).  Empty = all built-in
        static policies, in sorted-name order.  Must be empty in
        ``"clusters"`` mode (the arms are the member clusters).
    mode:
        ``"policies"`` (arms = routers, the meta-policy default) or
        ``"clusters"`` (arms = member clusters, direct routing).
    reward:
        Reward-model registry name
        (:data:`repro.learn.rewards.REWARD_MODELS`).
    epsilon:
        Exploration probability of ``epsilon-greedy`` (in ``[0, 1]``).
    ucb_c:
        Exploration-bonus scale of ``ucb1`` (> 0; 1 = the classic UCB1
        bonus).  The default 0.5 explores less than textbook UCB1 —
        routing-arm reward gaps are small (a few percent of accept
        ratio), and the full bonus keeps over-exploring for thousands of
        pulls at realistic stream lengths.
    """

    arms: tuple[str, ...] = ()
    mode: str = "policies"
    reward: str = "reject-penalty"
    epsilon: float = 0.1
    ucb_c: float = 0.5

    def __post_init__(self) -> None:
        # Imported here: routing lazily imports the learn package.
        from repro.fleet.routing import ROUTING_POLICIES, validate_routing_policy

        object.__setattr__(self, "arms", tuple(self.arms))
        if self.mode not in LEARN_MODES:
            raise InvalidParameterError(
                f"learn mode must be one of {', '.join(LEARN_MODES)}, "
                f"got {self.mode!r}"
            )
        if self.mode == "clusters":
            if self.arms:
                raise InvalidParameterError(
                    "arms must be empty in 'clusters' mode "
                    "(the member clusters are the arms)"
                )
        else:
            if len(set(self.arms)) != len(self.arms):
                raise InvalidParameterError(
                    f"duplicate arm names in {self.arms!r}"
                )
            for arm in self.arms:
                validate_routing_policy(arm)
                if getattr(ROUTING_POLICIES[arm], "learns", False):
                    raise InvalidParameterError(
                        f"arm {arm!r} is itself a learning policy; "
                        "arms must be static routing policies"
                    )
        validate_reward_model(self.reward)
        if not math.isfinite(self.epsilon) or not 0.0 <= self.epsilon <= 1.0:
            raise InvalidParameterError(
                f"epsilon must be in [0, 1], got {self.epsilon}"
            )
        if not math.isfinite(self.ucb_c) or self.ucb_c <= 0:
            raise InvalidParameterError(f"ucb_c must be > 0, got {self.ucb_c}")

    def resolved_arms(self) -> tuple[str, ...]:
        """The policy-mode arm names, defaults expanded.

        Empty ``arms`` expands to every registered *static* routing
        policy in sorted-name order (stable across runs and platforms).
        """
        if self.arms:
            return self.arms
        from repro.fleet.routing import static_routing_policy_names

        return static_routing_policy_names()

    def with_reward(self, reward: str) -> "LearnConfig":
        """The same configuration under a different reward model."""
        return replace(self, reward=reward)

    def describe(self) -> dict[str, float | int | str]:
        """Flat, JSON-friendly summary (merged into scenario exports)."""
        return {
            "learn_mode": self.mode,
            "learn_arms": ",".join(self.arms) if self.arms else "all-static",
            "learn_reward": self.reward,
            "learn_epsilon": self.epsilon,
            "learn_ucb_c": self.ucb_c,
        }
