"""Feedback records flowing from the fleet simulation to learning routers.

The fleet's routing loop was fire-and-forget until the learning layer:
a policy picked a member cluster and never heard what happened.  Online
policies need the outcome, so :class:`~repro.fleet.sim.FleetSimulation`
now emits one :class:`RoutingFeedback` per task *phase*:

``"admission"``
    Delivered immediately after the routed task's admission test ran on
    the chosen member — carries accept/reject, the member's guaranteed
    estimate, and the load snapshot the decision was made against.
``"completion"``
    Delivered when an accepted task actually finishes (drained in
    deterministic ``(actual_completion, task_id)`` order) — carries the
    measured completion time and whether the deadline held.
``"fault"``
    Delivered when a member cluster's health flips (blackout begins or
    ends, observed at the next arrival instant) — ``accepted`` carries
    the new up/down state and ``task_id`` is a negative sentinel
    (``-(member + 1)``), so reward models keyed on pending task ids
    ignore these reports unless they opt in.

A :class:`~repro.learn.rewards.RewardModel` turns feedback into a scalar
reward; :class:`LearningReport` is the run-level account of what a bandit
learned (per-arm pulls/means, cumulative regret, the arm it settled on).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArmStats", "LearningReport", "RoutingFeedback"]

#: Feedback phases, in the order a task emits them.
PHASE_ADMISSION = "admission"
PHASE_COMPLETION = "completion"
#: Out-of-band phase: a member's up/down state changed (fault injection).
PHASE_FAULT = "fault"


@dataclass(frozen=True, slots=True)
class RoutingFeedback:
    """One per-task outcome report delivered to the routing policy.

    Attributes
    ----------
    task_id:
        Stream id of the routed task.
    cluster:
        Member index the task was routed to.
    phase:
        ``"admission"`` or ``"completion"`` (see module docstring).
    arrival / sigma / deadline:
        The task's arrival time, data size and *relative* deadline.
    accepted:
        Admission outcome on the chosen member.
    est_completion:
        The member's guaranteed completion estimate (``None`` on reject).
    actual_completion:
        Measured completion time (``None`` until the completion phase).
    deadline_met:
        Whether the absolute deadline held (``None`` until completion).
    outstanding:
        Admitted-but-unfinished tasks on the chosen member at decision
        time (from the routing :class:`~repro.fleet.routing.ClusterView`).
    backlog:
        Mean reserved node-time beyond the decision instant on the chosen
        member — how far ahead it was already committed.
    """

    task_id: int
    cluster: int
    phase: str
    arrival: float
    sigma: float
    deadline: float
    accepted: bool
    est_completion: float | None = None
    actual_completion: float | None = None
    deadline_met: bool | None = None
    outstanding: int = 0
    backlog: float = 0.0

    @property
    def absolute_deadline(self) -> float:
        """Absolute deadline ``arrival + deadline``."""
        return self.arrival + self.deadline


@dataclass(frozen=True, slots=True)
class ArmStats:
    """Resolved-reward statistics of one bandit arm."""

    name: str
    pulls: int
    total_reward: float

    @property
    def mean_reward(self) -> float:
        """Empirical mean reward of the arm (0 before any resolved pull)."""
        return self.total_reward / self.pulls if self.pulls else 0.0


@dataclass(frozen=True, slots=True)
class LearningReport:
    """What one bandit run learned, for metrics and result exports.

    ``cumulative_regret`` is the empirical pseudo-regret in hindsight:
    ``max_arm_mean × resolved − total_reward`` — how much reward was left
    on the table versus pulling the empirically best arm every time.  It
    is non-negative by construction and ``0`` for a single-arm bandit.
    """

    policy: str
    reward_model: str
    arms: tuple[ArmStats, ...]
    decisions: int
    resolved: int

    @property
    def total_reward(self) -> float:
        """Sum of all resolved rewards across arms."""
        return sum(a.total_reward for a in self.arms)

    @property
    def best_arm(self) -> str:
        """Name of the arm with the highest empirical mean (ties: first)."""
        if not self.arms:
            return ""
        # max() keeps the first of equal keys, so ties resolve to arm order.
        return max(self.arms, key=lambda a: a.mean_reward).name

    @property
    def cumulative_regret(self) -> float:
        """Empirical pseudo-regret over all resolved pulls (>= 0)."""
        if not self.arms or not self.resolved:
            return 0.0
        best_mean = max(a.mean_reward for a in self.arms)
        return max(best_mean * self.resolved - self.total_reward, 0.0)

    def as_dict(self) -> dict[str, float | int | str]:
        """Flat JSON-friendly summary (one key set per arm)."""
        out: dict[str, float | int | str] = {
            "policy": self.policy,
            "reward_model": self.reward_model,
            "decisions": self.decisions,
            "resolved": self.resolved,
            "best_arm": self.best_arm,
            "cumulative_regret": self.cumulative_regret,
        }
        for arm in self.arms:
            out[f"pulls[{arm.name}]"] = arm.pulls
            out[f"mean_reward[{arm.name}]"] = arm.mean_reward
        return out
