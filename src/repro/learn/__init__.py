"""Online adaptive routing: bandits that learn the fleet's best router.

PR 3 gave the fleet four hand-written routing policies; this package
closes the loop the ROADMAP named next: *learned* routing over the same
:class:`~repro.fleet.routing.RoutingPolicy` interface.  A bandit policy
treats each routing decision as a pull — arms are either the static
routers (meta-policy mode) or the member clusters directly — and updates
itself from the per-task outcomes (:class:`RoutingFeedback`: accept or
reject at admission, completion time and deadline verdict at completion)
that :class:`~repro.fleet.sim.FleetSimulation` feeds back.

Layer map::

    LearnConfig      = arms + mode + reward + exploration knobs
    RewardModel      = RoutingFeedback -> reward in [0, 1] (or defer)
    BanditRouter     = RoutingPolicy + select_arm() + observe(feedback)
    LearningReport   = per-arm pulls/means + cumulative regret

Everything is deterministic from the fleet seed: bandit draws come from
a dedicated learning RNG stream, rewards resolve in a deterministic
order, and a bandit pinned to a single arm reproduces that static
policy's run record by record.  See ``docs/adaptive-routing.md`` for the
full guide and ``examples/adaptive_routing.py`` for the convergence
walkthrough.
"""

from __future__ import annotations

from repro.learn.bandits import (
    BanditRouter,
    EpsilonGreedy,
    ThompsonSampling,
    UCB1,
    learning_policy_names,
)
from repro.learn.config import LEARN_MODES, LearnConfig
from repro.learn.feedback import ArmStats, LearningReport, RoutingFeedback
from repro.learn.rewards import (
    REWARD_MODELS,
    RejectPenaltyReward,
    RewardModel,
    SlackWeightedReward,
    UtilizationWeightedReward,
    make_reward_model,
    reward_model_names,
    validate_reward_model,
)

__all__ = [
    "ArmStats",
    "BanditRouter",
    "EpsilonGreedy",
    "LEARN_MODES",
    "LearnConfig",
    "LearningReport",
    "REWARD_MODELS",
    "RejectPenaltyReward",
    "RewardModel",
    "RoutingFeedback",
    "SlackWeightedReward",
    "ThompsonSampling",
    "UCB1",
    "UtilizationWeightedReward",
    "learning_policy_names",
    "make_reward_model",
    "reward_model_names",
    "validate_reward_model",
]
