"""Bandit routing policies: learn the fleet's best router online.

Each policy here implements the existing
:class:`~repro.fleet.routing.RoutingPolicy` protocol — it drops into a
:class:`~repro.fleet.scenario.FleetScenario` by name like any static
router — but treats each routing decision as a bandit *pull* and updates
itself from the per-task :class:`~repro.learn.feedback.RoutingFeedback`
the fleet simulation reports back.  Arms are either the built-in static
routing policies (``mode="policies"``, the meta-policy default: the
bandit learns *which router* fits the fleet) or the member clusters
themselves (``mode="clusters"``: the bandit learns *where to send work*
directly).

Three selection rules ship, spanning the classic exploration spectrum
(cf. the RL load-distribution-sequencing line of work — no fixed
heuristic dominates once the system is heterogeneous, so the router
itself is learned):

* :class:`EpsilonGreedy` — explore uniformly with probability ε, else
  exploit the best empirical mean;
* :class:`UCB1` — deterministic optimism: mean + ``c·√(2 ln n / n_a)``;
* :class:`ThompsonSampling` — posterior sampling with per-arm Beta
  posteriors (fractional updates for non-Bernoulli rewards).

Determinism contract
--------------------
All bandit randomness draws from the fleet scenario's dedicated
*learning* RNG stream (:meth:`FleetScenario.learning_rng`), independent
of the workload, algorithm and routing streams.  Rewards resolve in a
deterministic order (admission in arrival order; completions sorted by
``(actual_completion, task_id)``), so a learning run is bit-identical
across serial / process / thread execution and invariant to wall-clock.
A bandit pinned to a single policy arm delegates every decision to that
arm — and a stochastic arm (``random-weighted``) receives the *same*
routing stream a static run would — so the pinned run reproduces the
static policy's run record by record (asserted in the tests).
"""

from __future__ import annotations

from typing import ClassVar, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask
from repro.fleet.routing import (
    ROUTING_POLICIES,
    ClusterView,
    RoutingPolicy,
    make_routing_policy,
)
from repro.learn.config import LearnConfig
from repro.learn.feedback import ArmStats, LearningReport, RoutingFeedback
from repro.learn.rewards import make_reward_model

__all__ = [
    "BanditRouter",
    "EpsilonGreedy",
    "ThompsonSampling",
    "UCB1",
    "learning_policy_names",
]


class BanditRouter(RoutingPolicy):
    """Shared machinery of all bandit routing policies.

    Subclasses implement :meth:`select_arm` — everything else (arm
    bookkeeping, policy-arm delegation, reward resolution, regret
    accounting) lives here.

    Parameters
    ----------
    config:
        The :class:`~repro.learn.config.LearnConfig` hyper-parameters
        (``None`` = defaults: all static policies as arms,
        reject-penalty reward).
    rng:
        The *learning* stream — the only randomness the bandit itself
        consumes (ε-draws, posterior samples).
    routing_rng:
        The scenario's routing stream, handed to stochastic policy arms
        (``random-weighted``) so a pinned bandit matches the static run
        bit for bit.
    """

    learns: ClassVar[bool] = True

    name = "abstract-bandit"

    def __init__(
        self,
        *,
        config: LearnConfig | None = None,
        rng: np.random.Generator | None = None,
        routing_rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else LearnConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.reward_model = make_reward_model(self.config.reward)
        self._routing_rng = routing_rng
        # Arm state is lazily sized: in "clusters" mode the arm count is
        # the fleet size, first known at the first routing decision.
        self._arm_names: tuple[str, ...] | None = None
        self._arm_policies: list[RoutingPolicy] | None = None
        self._pulls: np.ndarray | None = None
        self._totals: np.ndarray | None = None
        self._pending: dict[int, int] = {}
        self._inflight: np.ndarray | None = None
        self._decisions = 0
        self._resolved = 0
        #: Optional trace sink (:class:`repro.obs.trace.Tracer` or a
        #: track view), set by the fleet simulation when tracing is on.
        #: Arm selections and reward resolutions become instant events;
        #: tracing draws no randomness, so decisions are unchanged.
        self.tracer = None

    # -- arm management ----------------------------------------------------
    def _ensure_arms(self, n_clusters: int) -> None:
        if self._arm_names is not None:
            return
        if self.config.mode == "clusters":
            names = tuple(f"cluster-{i}" for i in range(n_clusters))
        else:
            names = self.config.resolved_arms()
            self._arm_policies = [
                make_routing_policy(arm, rng=self._routing_rng) for arm in names
            ]
        self._arm_names = names
        self._pulls = np.zeros(len(names), dtype=np.int64)
        self._totals = np.zeros(len(names), dtype=np.float64)
        self._inflight = np.zeros(len(names), dtype=np.int64)

    @property
    def n_arms(self) -> int:
        """Number of arms (0 until the first routing decision)."""
        return len(self._arm_names) if self._arm_names is not None else 0

    @property
    def wants_completion_feedback(self) -> bool:
        """Whether the fleet must deliver completion-phase feedback.

        ``False`` when the reward model resolves every task at admission
        — the simulation then skips completion tracking on the hot
        routing loop.
        """
        return self.reward_model.needs_completion

    def select_arm(self) -> int:
        """Pick the arm to pull for the next decision (subclass rule)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _means(self) -> np.ndarray:
        """Empirical mean reward per arm (0 for never-resolved arms)."""
        assert self._pulls is not None and self._totals is not None
        return np.divide(
            self._totals,
            self._pulls,
            out=np.zeros_like(self._totals),
            where=self._pulls > 0,
        )

    def _unresolved_arm(self) -> int | None:
        """The arm to pull while some arm still has no resolved reward.

        Optimism under uncertainty: arms without data are pulled first.
        With delayed (completion-phase) rewards an arm may have been
        pulled but not resolved yet, so the choice spreads over the
        data-less arms by *fewest in-flight pulls* (ties: lowest index)
        instead of hammering arm 0 until its first reward lands.
        Returns ``None`` once every arm has at least one resolved pull.
        """
        assert self._pulls is not None and self._inflight is not None
        unresolved = np.flatnonzero(self._pulls == 0)
        if not unresolved.size:
            return None
        return int(unresolved[np.argmin(self._inflight[unresolved])])

    # -- RoutingPolicy protocol --------------------------------------------
    def route(self, task: DivisibleTask, views: Sequence[ClusterView]) -> int:
        """Pull an arm, delegate/route, and remember the pending pull."""
        self._ensure_arms(len(views))
        assert self._arm_names is not None
        arm = int(self.select_arm())
        if not 0 <= arm < len(self._arm_names):
            raise InvalidParameterError(
                f"{self.name}: select_arm returned {arm}, "
                f"valid range [0, {len(self._arm_names)})"
            )
        if self.config.mode == "clusters":
            if arm >= len(views):  # fleet shrank? cannot happen, but guard
                raise InvalidParameterError(
                    f"{self.name}: arm {arm} exceeds fleet size {len(views)}"
                )
            index = arm
        else:
            assert self._arm_policies is not None
            index = self._arm_policies[arm].route(task, views)
        self._pending[task.task_id] = arm
        assert self._inflight is not None
        self._inflight[arm] += 1
        self._decisions += 1
        if self.tracer is not None:
            self.tracer.event(
                "bandit.select",
                "learn",
                task.arrival,
                task=task.task_id,
                arm=self._arm_names[arm],
                member=index,
            )
        return index

    def observe(self, feedback: RoutingFeedback) -> None:
        """Resolve the task's reward and update its arm's statistics."""
        arm = self._pending.get(feedback.task_id)
        if arm is None:  # already resolved, or not ours
            return
        reward = self.reward_model.reward(feedback)
        if reward is None:  # outcome not determined yet — keep waiting
            return
        del self._pending[feedback.task_id]
        assert self._pulls is not None and self._totals is not None
        assert self._inflight is not None
        self._inflight[arm] -= 1
        self._pulls[arm] += 1
        clipped = min(max(float(reward), 0.0), 1.0)
        self._totals[arm] += clipped
        self._resolved += 1
        if self.tracer is not None:
            assert self._arm_names is not None
            # Stamp the event at the reward's *resolution* instant (the
            # completion for delayed rewards), keeping track timestamps
            # monotone: completions are drained in completion order.
            resolved_at = (
                feedback.actual_completion
                if feedback.actual_completion is not None
                else feedback.arrival
            )
            self.tracer.event(
                "bandit.feedback",
                "learn",
                resolved_at,
                task=feedback.task_id,
                arm=self._arm_names[arm],
                phase=feedback.phase,
                reward=clipped,
            )

    # -- reporting ---------------------------------------------------------
    @property
    def cumulative_regret(self) -> float:
        """Empirical pseudo-regret accumulated so far (>= 0)."""
        return self.report().cumulative_regret

    def report(self) -> LearningReport:
        """The run-level account of what the bandit learned."""
        names = self._arm_names or ()
        pulls = self._pulls if self._pulls is not None else np.zeros(0)
        totals = self._totals if self._totals is not None else np.zeros(0)
        return LearningReport(
            policy=self.name,
            reward_model=self.reward_model.name,
            arms=tuple(
                ArmStats(
                    name=names[i],
                    pulls=int(pulls[i]),
                    total_reward=float(totals[i]),
                )
                for i in range(len(names))
            ),
            decisions=self._decisions,
            resolved=self._resolved,
        )


class EpsilonGreedy(BanditRouter):
    """Explore uniformly with probability ε, else exploit the best mean.

    Never-resolved arms are treated optimistically (infinite mean), so
    the first exploit steps sweep the arms before real exploitation
    starts — spreading over them by fewest in-flight pulls when rewards
    resolve late (see :meth:`BanditRouter._unresolved_arm`).  Ties break
    to the lowest arm index.
    """

    name = "epsilon-greedy"

    def select_arm(self) -> int:
        """ε-greedy arm choice (one or two learning-stream draws)."""
        n = self.n_arms
        if float(self.rng.random()) < self.config.epsilon:
            return int(self.rng.integers(n))
        unresolved = self._unresolved_arm()
        if unresolved is not None:
            return unresolved
        return int(np.argmax(self._means()))


class UCB1(BanditRouter):
    """Deterministic optimism: ``mean + c·√(2 ln n / n_a)``.

    Arms with no resolved reward yet are pulled first (fewest in-flight
    pulls, then lowest index — so delayed completion-phase rewards don't
    pile the whole cold-start on one arm); afterwards the arm maximising
    the upper confidence bound wins, ties breaking to the lowest index.
    ``n`` counts resolved rewards, so the bound adapts correctly to
    delayed rewards.  Consumes no randomness at all.
    """

    name = "ucb1"

    def select_arm(self) -> int:
        """UCB1 arm choice (fully deterministic)."""
        unresolved = self._unresolved_arm()
        if unresolved is not None:
            return unresolved
        assert self._pulls is not None
        bonus = self.config.ucb_c * np.sqrt(
            2.0 * np.log(max(self._resolved, 1)) / self._pulls
        )
        return int(np.argmax(self._means() + bonus))


class ThompsonSampling(BanditRouter):
    """Posterior sampling with per-arm ``Beta(1+S, 1+F)`` posteriors.

    ``S`` is the arm's accumulated reward and ``F = pulls − S`` its
    accumulated shortfall; rewards in ``[0, 1]`` update the posterior
    fractionally (the standard non-Bernoulli Thompson variant).  Each
    decision draws one posterior sample per arm from the learning
    stream and pulls the argmax.
    """

    name = "thompson"

    def select_arm(self) -> int:
        """Thompson arm choice (``n_arms`` learning-stream draws)."""
        assert self._pulls is not None and self._totals is not None
        successes = self._totals
        failures = self._pulls - self._totals
        samples = self.rng.beta(1.0 + successes, 1.0 + failures)
        return int(np.argmax(samples))


def learning_policy_names() -> tuple[str, ...]:
    """Names of the registered learning (bandit) routing policies."""
    return tuple(
        sorted(
            name
            for name, cls in ROUTING_POLICIES.items()
            if getattr(cls, "learns", False)
        )
    )


#: Register the bandits alongside the static policies so scenario
#: validation, the CLI and ``make_routing_policy`` see one registry.
for _cls in (EpsilonGreedy, UCB1, ThompsonSampling):
    ROUTING_POLICIES.setdefault(_cls.name, _cls)
del _cls
