"""Legacy task-set generation facade (Section 5 workload).

The drawing logic now lives in the composable model layer:
:mod:`repro.workload.models` holds the distributions (Poisson arrivals,
truncated-normal sizes, uniform deadlines — plus bursty/trace arrivals and
uniform/Pareto sizes the paper does not use) and
:class:`repro.workload.scenario.Scenario` binds them to a cluster, horizon
and seed.  :class:`WorkloadGenerator` remains as a thin adapter over the
scenario equivalent of its :class:`SimulationConfig`, producing
bit-identical task sets to every release since the seed.

Distributions (the paper's Section 5 choices)
---------------------------------------------
* **Arrivals** — Poisson process: exponential inter-arrival times with mean
  ``1/λ = E(Avgσ, N)/SystemLoad``; arrivals fill ``[0, total_time)``.
* **Data sizes** — ``σ_i ~ Normal(Avgσ, Avgσ)`` *truncated to σ > 0* by
  redrawing.  Truncating a Normal whose std equals its mean raises the
  effective mean to ``Avgσ · (1 + φ(1)/Φ(1)) ≈ 1.288 · Avgσ``; the paper
  does not say how it handled negative draws, so we use proper truncation
  and keep ``λ`` calibrated against the *nominal* ``Avgσ`` as the text
  prescribes (documented substitution, DESIGN.md §3).
* **Deadlines** — ``D_i ~ Uniform[AvgD/2, 3AvgD/2]`` with
  ``AvgD = DCRatio × E(Avgσ, N)``, floored at the task's minimum possible
  execution time ``E(σ_i, N)``.

Reproducibility
---------------
All randomness flows from one :class:`numpy.random.SeedSequence`; arrivals,
sizes, deadlines and the algorithm stream (User-Split draws) use *separate
children*, so redraw loops in one stream never perturb another and the same
seed yields the same task set under every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.task import DivisibleTask
from repro.workload.scenario import Scenario
from repro.workload.spec import SimulationConfig

__all__ = ["WorkloadGenerator", "generate_tasks"]


@dataclass(frozen=True, slots=True)
class WorkloadGenerator:
    """Reusable generator bound to one :class:`SimulationConfig`.

    Equivalent to ``Scenario.from_config(config)``; kept for backward
    compatibility with the flat-config API.
    """

    config: SimulationConfig

    def scenario(self) -> Scenario:
        """The composable :class:`Scenario` this generator wraps."""
        return Scenario.from_config(self.config)

    def seed_sequence(self) -> np.random.SeedSequence:
        """Root seed sequence of the run."""
        return self.scenario().seed_sequence()

    def algorithm_rng(self) -> np.random.Generator:
        """The RNG stream reserved for algorithm-side randomness.

        User-Split draws its per-task node requests from this stream; it is
        independent of the workload streams so the *same tasks* arrive no
        matter which algorithm consumes it.
        """
        return self.scenario().algorithm_rng()

    def generate(self) -> list[DivisibleTask]:
        """Generate the arrival-ordered task list for the configured run."""
        return self.scenario().generate_tasks()


def generate_tasks(config: SimulationConfig) -> list[DivisibleTask]:
    """Convenience wrapper: generate the task list for ``config``."""
    return WorkloadGenerator(config).generate()
