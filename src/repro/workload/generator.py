"""Task-set generation following Section 5 exactly.

Distributions
-------------
* **Arrivals** — Poisson process: exponential inter-arrival times with mean
  ``1/λ = E(Avgσ, N)/SystemLoad``; arrivals fill ``[0, total_time)``.
* **Data sizes** — ``σ_i ~ Normal(Avgσ, Avgσ)`` *truncated to σ > 0* by
  redrawing.  Truncating a Normal whose std equals its mean raises the
  effective mean to ``Avgσ · (1 + φ(1)/Φ(1)) ≈ 1.288 · Avgσ``; the paper
  does not say how it handled negative draws, so we use proper truncation
  and keep ``λ`` calibrated against the *nominal* ``Avgσ`` as the text
  prescribes (documented substitution, DESIGN.md §3).
* **Deadlines** — ``D_i ~ Uniform[AvgD/2, 3AvgD/2]`` with
  ``AvgD = DCRatio × E(Avgσ, N)``, floored at the task's minimum possible
  execution time ``E(σ_i, N)`` ("a task relative deadline D_i is chosen to
  be larger than its minimum execution time").

Reproducibility
---------------
All randomness flows from one :class:`numpy.random.SeedSequence`; arrivals,
sizes, deadlines and the algorithm stream (User-Split draws) use *separate
children*, so redraw loops in one stream never perturb another and the same
seed yields the same task set under every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import dlt
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask
from repro.workload.spec import SimulationConfig

__all__ = ["WorkloadGenerator", "generate_tasks"]

#: Smallest admissible data size after truncation (guards the σ > 0 domain).
_SIGMA_FLOOR = 1e-9

#: Relative margin by which a clamped deadline exceeds E(σ_i, N).
_DEADLINE_MARGIN = 1e-9

#: Stream indices within the run's SeedSequence.
_STREAM_ARRIVALS = 0
_STREAM_SIZES = 1
_STREAM_DEADLINES = 2
_STREAM_ALGORITHM = 3


@dataclass(frozen=True, slots=True)
class WorkloadGenerator:
    """Reusable generator bound to one :class:`SimulationConfig`."""

    config: SimulationConfig

    def seed_sequence(self) -> np.random.SeedSequence:
        """Root seed sequence of the run."""
        return np.random.SeedSequence(self.config.seed)

    def algorithm_rng(self) -> np.random.Generator:
        """The RNG stream reserved for algorithm-side randomness.

        User-Split draws its per-task node requests from this stream; it is
        independent of the workload streams so the *same tasks* arrive no
        matter which algorithm consumes it.
        """
        children = self.seed_sequence().spawn(4)
        return np.random.default_rng(children[_STREAM_ALGORITHM])

    def generate(self) -> list[DivisibleTask]:
        """Generate the arrival-ordered task list for the configured run."""
        children = self.seed_sequence().spawn(4)
        rng_arrivals = np.random.default_rng(children[_STREAM_ARRIVALS])
        rng_sizes = np.random.default_rng(children[_STREAM_SIZES])
        rng_deadlines = np.random.default_rng(children[_STREAM_DEADLINES])

        arrivals = self._draw_arrivals(rng_arrivals)
        n = arrivals.size
        if n == 0:
            return []
        sigmas = self._draw_sigmas(rng_sizes, n)
        deadlines = self._draw_deadlines(rng_deadlines, sigmas)

        return [
            DivisibleTask(
                task_id=i,
                arrival=float(arrivals[i]),
                sigma=float(sigmas[i]),
                deadline=float(deadlines[i]),
            )
            for i in range(n)
        ]

    # -- pieces ------------------------------------------------------------
    def _draw_arrivals(self, rng: np.random.Generator) -> np.ndarray:
        """Cumulative exponential gaps until the horizon is exceeded."""
        cfg = self.config
        mean_gap = cfg.mean_interarrival
        # Draw in growing batches; expected count is total_time / mean_gap.
        expected = max(int(cfg.total_time / mean_gap * 1.2) + 16, 16)
        gaps = rng.exponential(mean_gap, size=expected)
        total = gaps.sum()
        while total < cfg.total_time:
            extra = rng.exponential(mean_gap, size=max(expected // 4, 16))
            gaps = np.concatenate([gaps, extra])
            total += extra.sum()
        arrivals = np.cumsum(gaps)
        return arrivals[arrivals < cfg.total_time]

    def _draw_sigmas(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Truncated Normal(Avgσ, Avgσ): redraw non-positive values."""
        avg = self.config.avg_sigma
        sig = rng.normal(avg, avg, size=n)
        bad = sig <= _SIGMA_FLOOR
        guard = 0
        while bad.any():
            sig[bad] = rng.normal(avg, avg, size=int(bad.sum()))
            bad = sig <= _SIGMA_FLOOR
            guard += 1
            if guard > 10_000:  # pragma: no cover - mathematically absurd
                raise InvalidParameterError(
                    "sigma redraw loop failed to terminate; check avg_sigma"
                )
        return sig

    def _draw_deadlines(
        self, rng: np.random.Generator, sigmas: np.ndarray
    ) -> np.ndarray:
        """Uniform[AvgD/2, 3AvgD/2], floored at E(σ_i, N)."""
        cfg = self.config
        avg_d = cfg.avg_deadline
        draws = rng.uniform(avg_d / 2.0, 1.5 * avg_d, size=sigmas.size)
        min_exec = dlt.execution_time_array(sigmas, cfg.nodes, cfg.cms, cfg.cps)
        floor = min_exec * (1.0 + _DEADLINE_MARGIN)
        return np.maximum(draws, floor)


def generate_tasks(config: SimulationConfig) -> list[DivisibleTask]:
    """Convenience wrapper: generate the task list for ``config``."""
    return WorkloadGenerator(config).generate()
