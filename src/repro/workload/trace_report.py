"""Trace-summary report: marginals of a recorded arrival trace.

The ROADMAP's trace-ingestion follow-on: before replaying a recorded
trace (:class:`~repro.workload.models.TraceArrivals`) through a scenario
or a fleet, summarize what the trace *is* — its rate, burstiness, and
(when the CSV carries them) the size and deadline marginals — so a
recorded workload can be compared against the synthetic models
(Poisson ⇒ ``gap_cv2 ≈ 1``; bursty MMPP ⇒ ``gap_cv2 > 1``).

The reader accepts the same CSV shapes as
:meth:`TraceArrivals.from_csv`: a headered file (arrival times in the
``arrival_time`` column by default) or a bare numeric file (first
column).  Optional ``sigma``/``size`` and ``deadline`` columns feed the
size/deadline marginals; everything else is ignored.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.workload.models import TraceArrivals, parse_trace_table

__all__ = ["ColumnSummary", "TraceSummary", "summarize_trace"]


@dataclass(frozen=True, slots=True)
class ColumnSummary:
    """Marginal statistics of one numeric trace column."""

    name: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, name: str, values: "np.ndarray") -> "ColumnSummary":
        """Summarize a non-empty float array."""
        return cls(
            name=name,
            count=int(values.size),
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()),
            maximum=float(values.max()),
        )

    def as_dict(self) -> dict[str, float | int | str]:
        """Flat JSON-friendly row, keys prefixed by the column name."""
        return {
            f"{self.name}_count": self.count,
            f"{self.name}_mean": self.mean,
            f"{self.name}_std": self.std,
            f"{self.name}_min": self.minimum,
            f"{self.name}_max": self.maximum,
        }


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Rate / burstiness / size / deadline marginals of one trace.

    ``gap_cv2`` is the squared coefficient of variation of the
    inter-arrival gaps — the standard burstiness index (Poisson ⇒ 1,
    bursty ⇒ > 1, clockwork ⇒ → 0).  ``sigma`` and ``deadline`` are
    ``None`` when the CSV does not carry those columns.
    """

    path: str
    count: int
    span: float
    rate: float
    mean_gap: float
    gap_cv2: float
    min_gap: float
    max_gap: float
    sigma: ColumnSummary | None = field(default=None)
    deadline: ColumnSummary | None = field(default=None)

    @property
    def burstiness(self) -> str:
        """Coarse verdict from ``gap_cv2``: smooth / poisson-like / bursty."""
        if self.gap_cv2 < 0.5:
            return "smooth"
        if self.gap_cv2 <= 2.0:
            return "poisson-like"
        return "bursty"

    def as_dict(self) -> dict[str, float | int | str | None]:
        """Flat JSON-friendly summary of all marginals.

        ``rate`` is ``None`` (JSON ``null``) when undefined (a single
        arrival spans no time) — ``math.inf`` would serialize as the
        non-compliant bare ``Infinity`` token.
        """
        out: dict[str, float | int | str | None] = {
            "path": self.path,
            "count": self.count,
            "span": self.span,
            "rate": self.rate if math.isfinite(self.rate) else None,
            "mean_gap": self.mean_gap,
            "gap_cv2": self.gap_cv2,
            "min_gap": self.min_gap,
            "max_gap": self.max_gap,
            "burstiness": self.burstiness,
        }
        for col in (self.sigma, self.deadline):
            if col is not None:
                out.update(col.as_dict())
        return out


#: Optional marginal columns: report name -> accepted header aliases.
_OPTIONAL_COLUMNS = (("sigma", ("sigma", "size")), ("deadline", ("deadline",)))


def _read_parquet_columns(
    path: "str | os.PathLike[str]", column: str
) -> tuple[list[float], dict[str, list[float]]]:
    """Parquet counterpart of :func:`_read_columns`.

    Column resolution mirrors
    :meth:`~repro.workload.models.TraceArrivals.from_parquet` (named
    arrival column, or the only column of a single-column file), and the
    same optional ``sigma``/``size``/``deadline`` columns feed the
    marginals — so any parquet trace that summarizes here also replays.
    Requires the optional :mod:`pyarrow` dependency.
    """
    try:
        import pyarrow.parquet as pq
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise InvalidParameterError(
            "parquet traces require the optional 'pyarrow' dependency; "
            "install pyarrow or convert the trace to CSV"
        ) from exc
    table = pq.read_table(path)
    names = list(table.column_names)
    if column in names:
        chosen = column
    elif len(names) == 1:
        chosen = names[0]
    else:
        raise InvalidParameterError(
            f"trace file {path!r} has no {column!r} column "
            f"(columns: {names}); pass column=<name>"
        )

    def numbers(name: str) -> list[float]:
        values = table.column(name).to_pylist()
        try:
            return [float(v) for v in values]
        except (TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"trace file {path!r}: malformed value in column "
                f"{name!r} ({exc})"
            ) from exc

    arrivals = numbers(chosen)
    if not arrivals:
        raise InvalidParameterError(f"trace file {path!r} is empty")
    extras: dict[str, list[float]] = {}
    for name, aliases in _OPTIONAL_COLUMNS:
        for alias in aliases:
            if alias in names:
                extras[name] = numbers(alias)
                break
    return arrivals, extras


def _read_columns(
    path: "str | os.PathLike[str]", column: str
) -> tuple[list[float], dict[str, list[float]]]:
    """Arrival times plus any optional numeric columns of interest.

    A ``.parquet`` path routes through the pyarrow reader
    (:func:`_read_parquet_columns`); anything else goes through the same
    :func:`~repro.workload.models.parse_trace_table` reader as
    :meth:`TraceArrivals.from_csv`, so any file this function accepts
    also replays.
    """
    if str(path).endswith(".parquet"):
        return _read_parquet_columns(path, column)
    data, header, arrival_index = parse_trace_table(path, column)
    optional: dict[str, int] = {}
    if header is not None:
        for name, aliases in (("sigma", ("sigma", "size")), ("deadline", ("deadline",))):
            for alias in aliases:
                if alias in header:
                    optional[name] = header.index(alias)
                    break

    def parse(row: list[str], index: int) -> float:
        try:
            return float(row[index])
        except (ValueError, IndexError) as exc:
            raise InvalidParameterError(
                f"trace file {path!r}: malformed value ({exc})"
            ) from exc

    arrivals = [parse(row, arrival_index) for row in data]
    extras = {
        name: [parse(row, index) for row in data]
        for name, index in optional.items()
    }
    return arrivals, extras


def summarize_trace(
    path: "str | os.PathLike[str]", *, column: str = "arrival_time"
) -> TraceSummary:
    """Summarize a trace CSV's rate, burstiness and optional marginals.

    Arrival times go through the same validation as
    :meth:`~repro.workload.models.TraceArrivals.from_csv` (finite,
    non-negative, strictly increasing), so a trace that summarizes
    cleanly also replays cleanly.  A single-arrival trace has no gaps;
    its gap statistics are reported as 0 and its rate over a zero span
    as ``inf``.
    """
    arrivals_list, extras = _read_columns(path, column)
    trace = TraceArrivals.from_sequence(arrivals_list)  # validates
    times = np.asarray(trace.times, dtype=np.float64)

    span = float(times[-1] - times[0]) if times.size > 1 else 0.0
    gaps = np.diff(times)
    if gaps.size:
        mean_gap = float(gaps.mean())
        variance = float(gaps.var(ddof=1)) if gaps.size > 1 else 0.0
        gap_cv2 = variance / (mean_gap * mean_gap) if mean_gap > 0 else 0.0
        min_gap, max_gap = float(gaps.min()), float(gaps.max())
    else:
        mean_gap = gap_cv2 = min_gap = max_gap = 0.0
    rate = (times.size - 1) / span if span > 0 else math.inf

    def column_summary(name: str) -> ColumnSummary | None:
        values = extras.get(name)
        if not values:
            return None
        arr = np.asarray(values, dtype=np.float64)
        if not np.isfinite(arr).all():
            raise InvalidParameterError(
                f"trace file {path!r}: non-finite {name} values"
            )
        return ColumnSummary.from_values(name, arr)

    return TraceSummary(
        path=str(path),
        count=int(times.size),
        span=span,
        rate=rate,
        mean_gap=mean_gap,
        gap_cv2=gap_cv2,
        min_gap=min_gap,
        max_gap=max_gap,
        sigma=column_summary("sigma"),
        deadline=column_summary("deadline"),
    )
