"""Composable experiment descriptions: ``Scenario`` and ``WorkloadModel``.

A :class:`Scenario` is the package's experiment-description object::

    Scenario = ClusterProfile + WorkloadModel + horizon + seed

where :class:`WorkloadModel` bundles three pluggable components —
an :class:`~repro.workload.models.ArrivalProcess`, a
:class:`~repro.workload.models.SizeModel` and a
:class:`~repro.workload.models.DeadlineModel`.  The paper's Section 5
workload is the canonical built-in, :meth:`Scenario.paper_baseline`; the
legacy flat :class:`~repro.workload.spec.SimulationConfig` converts through
:meth:`Scenario.from_config` and produces bit-identical task sets.

Reproducibility contract
------------------------
All randomness flows from one :class:`numpy.random.SeedSequence` rooted at
``Scenario.seed``.  Arrivals, sizes, deadlines and the algorithm stream
(User-Split draws) use *separate children*, so redraw loops in one stream
never perturb another and the same seed yields the same task set under
every algorithm.  Scenarios are frozen and picklable, so the parallel
:class:`~repro.experiments.batch.BatchRunner` can ship them to worker
processes without any loss of determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask
from repro.faults import FAULT_SEED_SALT, FaultPlan, FaultProcess
from repro.workload.models import (
    ArrivalProcess,
    DeadlineModel,
    PoissonProcess,
    SizeModel,
    TruncatedNormalSizes,
    UniformDeadlines,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.spec import SimulationConfig

__all__ = ["ClusterProfile", "Scenario", "WorkloadModel"]

#: Stream indices within the run's SeedSequence (same split as the legacy
#: generator, so seeds keep their meaning across the API redesign).
_STREAM_ARRIVALS = 0
_STREAM_SIZES = 1
_STREAM_DEADLINES = 2
_STREAM_ALGORITHM = 3
_N_STREAMS = 4


@dataclass(frozen=True, slots=True)
class WorkloadModel:
    """Arrival + size + deadline components of a scenario."""

    arrivals: ArrivalProcess
    sizes: SizeModel
    deadlines: DeadlineModel

    def __post_init__(self) -> None:
        # The three protocols share the `sample` method name, so a bare
        # isinstance check cannot tell them apart; the `role` marker can,
        # and catches swapped components (sizes passed as arrivals, ...).
        for attr, component, protocol in (
            ("arrivals", self.arrivals, ArrivalProcess),
            ("sizes", self.sizes, SizeModel),
            ("deadlines", self.deadlines, DeadlineModel),
        ):
            if not isinstance(component, protocol) or (
                getattr(component, "role", None) != attr
            ):
                raise InvalidParameterError(
                    f"{attr} must implement {protocol.__name__} "
                    f"(role={attr!r}), got {component!r}"
                )

    @classmethod
    def paper(
        cls,
        *,
        system_load: float,
        avg_sigma: float,
        dc_ratio: float,
        cluster: ClusterProfile,
    ) -> "WorkloadModel":
        """The Section 5 workload calibrated for ``cluster``.

        ``1/λ = E(Avgσ, N) / SystemLoad``; sizes are truncated-normal with
        nominal mean ``Avgσ``; deadlines uniform around
        ``AvgD = DCRatio × E(Avgσ, N)``.
        """
        if not math.isfinite(system_load) or system_load <= 0:
            raise InvalidParameterError(
                f"system_load must be > 0, got {system_load}"
            )
        mean_exec = cluster.min_execution_time(avg_sigma)
        return cls(
            arrivals=PoissonProcess(mean_interarrival=mean_exec / system_load),
            sizes=TruncatedNormalSizes(mean=avg_sigma),
            deadlines=UniformDeadlines.from_dc_ratio(dc_ratio, avg_sigma, cluster),
        )


@dataclass(frozen=True, slots=True)
class Scenario:
    """One fully specified experiment: cluster + workload + horizon + seed.

    ``name`` is a free-form label carried into batch records and exports.
    ``faults`` optionally injects environment faults: either an explicit
    :class:`~repro.faults.model.FaultPlan` or a seeded
    :class:`~repro.faults.process.FaultProcess` recipe, resolved once per
    run by :meth:`fault_plan` from a dedicated RNG stream
    (``SeedSequence([seed, FAULT_SEED_SALT])``) so faults never perturb
    the workload streams.
    """

    cluster: ClusterProfile
    workload: WorkloadModel
    total_time: float
    seed: int
    name: str = ""
    faults: FaultPlan | FaultProcess | None = None

    def __post_init__(self) -> None:
        if self.faults is not None and not isinstance(
            self.faults, (FaultPlan, FaultProcess)
        ):
            raise InvalidParameterError(
                f"faults must be a FaultPlan or FaultProcess, got {self.faults!r}"
            )
        if not isinstance(self.cluster, ClusterProfile):
            raise InvalidParameterError(
                f"cluster must be a ClusterProfile, got {self.cluster!r}"
            )
        if not isinstance(self.workload, WorkloadModel):
            raise InvalidParameterError(
                f"workload must be a WorkloadModel, got {self.workload!r}"
            )
        if not math.isfinite(self.total_time) or self.total_time <= 0:
            raise InvalidParameterError(
                f"total_time must be > 0, got {self.total_time}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise InvalidParameterError(f"seed must be an int >= 0, got {self.seed}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def paper_baseline(
        cls,
        *,
        system_load: float,
        total_time: float,
        seed: int,
        nodes: int = 16,
        cms: float = 1.0,
        cps: float = 100.0,
        avg_sigma: float = 200.0,
        dc_ratio: float = 2.0,
        speed_spread: float = 0.0,
        name: str = "paper-baseline",
    ) -> "Scenario":
        """The canonical Section 5.1 scenario (overridable parameter set).

        Defaults are the paper's baseline cluster and workload:
        ``N=16, Cms=1, Cps=100, Avgσ=200, DCRatio=2``.  A non-zero
        ``speed_spread`` swaps in a deterministically heterogeneous cluster
        (:meth:`ClusterProfile.with_spread`) while the workload stays
        calibrated against that cluster's actual ``E(Avgσ, N)`` — the
        sweep axis from the paper's cluster into heterogeneous ones.
        """
        cluster = ClusterProfile.with_spread(
            nodes, cms, cps, speed_spread=speed_spread
        )
        return cls(
            cluster=cluster,
            workload=WorkloadModel.paper(
                system_load=system_load,
                avg_sigma=avg_sigma,
                dc_ratio=dc_ratio,
                cluster=cluster,
            ),
            total_time=total_time,
            seed=seed,
            name=name,
        )

    @classmethod
    def from_config(cls, config: "SimulationConfig", *, name: str = "") -> "Scenario":
        """The scenario equivalent to a legacy :class:`SimulationConfig`.

        Produces bit-identical task sets and algorithm streams for the same
        seed — the adapter behind ``simulate(cfg, algo)``.
        """
        return cls.paper_baseline(
            system_load=config.system_load,
            total_time=config.total_time,
            seed=config.seed,
            nodes=config.nodes,
            cms=config.cms,
            cps=config.cps,
            avg_sigma=config.avg_sigma,
            dc_ratio=config.dc_ratio,
            name=name,
        )

    # -- derived views -----------------------------------------------------
    def with_overrides(self, **changes: Any) -> "Scenario":
        """A copy with selected fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario under a different seed."""
        return replace(self, seed=seed)

    # -- generation --------------------------------------------------------
    def seed_sequence(self) -> np.random.SeedSequence:
        """Root seed sequence of the run."""
        return np.random.SeedSequence(self.seed)

    def algorithm_rng(self) -> np.random.Generator:
        """The RNG stream reserved for algorithm-side randomness.

        User-Split draws its per-task node requests from this stream; it is
        independent of the workload streams so the *same tasks* arrive no
        matter which algorithm consumes it.
        """
        children = self.seed_sequence().spawn(_N_STREAMS)
        return np.random.default_rng(children[_STREAM_ALGORITHM])

    def generate_tasks(self) -> list[DivisibleTask]:
        """Generate the arrival-ordered task list for this scenario."""
        children = self.seed_sequence().spawn(_N_STREAMS)
        rng_arrivals = np.random.default_rng(children[_STREAM_ARRIVALS])
        rng_sizes = np.random.default_rng(children[_STREAM_SIZES])
        rng_deadlines = np.random.default_rng(children[_STREAM_DEADLINES])

        arrivals = self.workload.arrivals.sample(rng_arrivals, self.total_time)
        n = int(arrivals.size)
        if n == 0:
            return []
        sigmas = self.workload.sizes.sample(rng_sizes, n)
        deadlines = self.workload.deadlines.sample(rng_deadlines, sigmas, self.cluster)

        return [
            DivisibleTask(
                task_id=i,
                arrival=float(arrivals[i]),
                sigma=float(sigmas[i]),
                deadline=float(deadlines[i]),
            )
            for i in range(n)
        ]

    def fault_rng(self) -> np.random.Generator:
        """The RNG stream reserved for fault materialization.

        Salted independently of the workload/algorithm streams
        (``SeedSequence([seed, FAULT_SEED_SALT])``), so attaching a fault
        process to a scenario leaves its task set bit-identical.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, FAULT_SEED_SALT])
        )

    def fault_plan(self) -> FaultPlan | None:
        """The resolved fault plan for this run, or ``None``.

        An explicit plan is filtered to member 0 (memberless events);
        a :class:`~repro.faults.process.FaultProcess` is materialized
        against :meth:`fault_rng`, so each replication seed draws its own
        deterministic fault stream.
        """
        if self.faults is None:
            return None
        if isinstance(self.faults, FaultPlan):
            return self.faults.for_member(0)
        return self.faults.materialize(
            self.fault_rng(),
            horizon=self.total_time,
            member_nodes=(self.cluster.nodes,),
        )

    def describe(self) -> dict[str, Any]:
        """A flat, JSON-friendly summary (used by batch exports).

        The ``"faults"`` key appears only when fault injection is
        configured, keeping fault-free fingerprints (and the serve
        handshake built on them) identical to pre-fault builds.
        """
        out = {
            "name": self.name,
            **self.cluster.describe(),
            "arrivals": type(self.workload.arrivals).__name__,
            "sizes": type(self.workload.sizes).__name__,
            "deadlines": type(self.workload.deadlines).__name__,
            "total_time": self.total_time,
            "seed": self.seed,
        }
        if self.faults is not None:
            out["faults"] = self.faults.describe_token()
        return out
