"""Workload description and generation.

Two layers:

* **Composable scenarios** (the primary API) — :class:`Scenario` binds a
  :class:`ClusterProfile`, a :class:`WorkloadModel` (pluggable
  :class:`ArrivalProcess` / :class:`SizeModel` / :class:`DeadlineModel`
  components), a horizon and a seed.  ``Scenario.paper_baseline(...)`` is
  the paper's Section 5 workload:

  - inter-arrival times ~ Exponential(mean ``1/λ``);
  - data sizes ``σ_i`` ~ Normal(``Avgσ``, std = ``Avgσ``) truncated positive;
  - relative deadlines ``D_i`` ~ Uniform[``AvgD/2``, ``3AvgD/2``] with
    ``AvgD = DCRatio × E(Avgσ, N)`` and the floor ``D_i > E(σ_i, N)``;
  - ``SystemLoad = λ · E(Avgσ, N)`` calibrates ``λ`` (see DESIGN.md for the
    resolution of the TR's typo).

* **Legacy flat configs** — :class:`SimulationConfig` (deprecated in favour
  of scenarios, kept as a bit-identical adapter) and the
  :class:`WorkloadGenerator` facade over it.
"""

from repro.workload.generator import WorkloadGenerator, generate_tasks
from repro.workload.models import (
    ArrivalProcess,
    DeadlineModel,
    MMPPProcess,
    ParetoSizes,
    PoissonProcess,
    ProportionalDeadlines,
    SizeModel,
    TraceArrivals,
    TruncatedNormalSizes,
    UniformDeadlines,
    UniformSizes,
)
from repro.core.cluster import ClusterProfile, ClusterSpec
from repro.workload.scenario import Scenario, WorkloadModel
from repro.workload.spec import SimulationConfig, WorkloadSpec
from repro.workload.trace_report import ColumnSummary, TraceSummary, summarize_trace

__all__ = [
    "ArrivalProcess",
    "ClusterProfile",
    "ClusterSpec",
    "ColumnSummary",
    "DeadlineModel",
    "MMPPProcess",
    "ParetoSizes",
    "PoissonProcess",
    "ProportionalDeadlines",
    "Scenario",
    "SimulationConfig",
    "SizeModel",
    "TraceArrivals",
    "TraceSummary",
    "TruncatedNormalSizes",
    "UniformDeadlines",
    "UniformSizes",
    "WorkloadGenerator",
    "WorkloadModel",
    "WorkloadSpec",
    "generate_tasks",
    "summarize_trace",
]
