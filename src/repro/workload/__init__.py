"""Synthetic workload generation (Section 5, "Workload Generation").

* inter-arrival times ~ Exponential(mean ``1/λ``);
* data sizes ``σ_i`` ~ Normal(``Avgσ``, std = ``Avgσ``) truncated positive;
* relative deadlines ``D_i`` ~ Uniform[``AvgD/2``, ``3AvgD/2``] with
  ``AvgD = DCRatio × E(Avgσ, N)`` and the floor ``D_i > E(σ_i, N)``;
* ``SystemLoad = λ · E(Avgσ, N)`` calibrates ``λ`` (see DESIGN.md for the
  resolution of the TR's typo).
"""

from repro.workload.generator import WorkloadGenerator, generate_tasks
from repro.workload.spec import SimulationConfig, WorkloadSpec

__all__ = [
    "SimulationConfig",
    "WorkloadGenerator",
    "WorkloadSpec",
    "generate_tasks",
]
