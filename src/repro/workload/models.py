"""Pluggable workload-model components: arrivals, sizes, deadlines.

A :class:`~repro.workload.scenario.WorkloadModel` is assembled from three
independent pieces, each behind a small protocol:

:class:`ArrivalProcess`
    Produces the sorted arrival times in ``[0, horizon)``.  Built-ins:
    :class:`PoissonProcess` (the paper's Section 5 process),
    :class:`MMPPProcess` (a two-state Markov-modulated Poisson process for
    bursty traffic, cf. resource-sharing network models) and
    :class:`TraceArrivals` (replay of a recorded arrival trace).

:class:`SizeModel`
    Draws one data size ``sigma_i > 0`` per arrival.  Built-ins:
    :class:`TruncatedNormalSizes` (the paper's ``Normal(Avgσ, Avgσ)``
    truncated positive), :class:`UniformSizes` and the heavy-tailed
    :class:`ParetoSizes`.

:class:`DeadlineModel`
    Draws one relative deadline per task, given the sizes and the cluster
    (every sensible deadline model floors at the task's minimum possible
    execution time ``E(sigma_i, N)``).  Built-ins:
    :class:`UniformDeadlines` (the paper's ``Uniform[AvgD/2, 3AvgD/2]``)
    and :class:`ProportionalDeadlines`.

Every component is a frozen dataclass: hashable, picklable (the parallel
:class:`~repro.experiments.batch.BatchRunner` ships scenarios to worker
processes) and comparable by value.  All randomness comes in through the
``rng`` argument, so determinism is entirely the caller's seed discipline.

The paper-shaped components reproduce the legacy generator's draw sequence
bit for bit: same batching, same redraw loop, same floor arithmetic.
"""

from __future__ import annotations

import csv
import math
import os
from dataclasses import dataclass
from typing import ClassVar, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError

__all__ = [
    "ArrivalProcess",
    "DeadlineModel",
    "MMPPProcess",
    "ParetoSizes",
    "PoissonProcess",
    "ProportionalDeadlines",
    "SizeModel",
    "TraceArrivals",
    "TruncatedNormalSizes",
    "UniformDeadlines",
    "UniformSizes",
]

#: Smallest admissible data size after truncation (guards the σ > 0 domain).
_SIGMA_FLOOR = 1e-9

#: Relative margin by which a clamped deadline exceeds E(σ_i, N).
_DEADLINE_MARGIN = 1e-9


def _require_positive(name: str, value: float) -> None:
    if not math.isfinite(value) or value <= 0:
        raise InvalidParameterError(f"{name} must be finite and > 0, got {value}")


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


@runtime_checkable
class ArrivalProcess(Protocol):
    """Produces sorted arrival times filling ``[0, horizon)``.

    ``role`` must be the literal ``"arrivals"`` — all three workload
    protocols share the ``sample`` method name, so the role marker is what
    lets :class:`~repro.workload.scenario.WorkloadModel` reject swapped
    components at construction time.
    """

    role: ClassVar[str]

    def sample(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        """Arrival times as a float array, strictly increasing, < horizon."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class SizeModel(Protocol):
    """Draws ``n`` positive data sizes (``role = "sizes"``)."""

    role: ClassVar[str]

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` draws of ``sigma_i > 0``."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class DeadlineModel(Protocol):
    """Draws one relative deadline per task (``role = "deadlines"``)."""

    role: ClassVar[str]

    def sample(
        self,
        rng: np.random.Generator,
        sigmas: np.ndarray,
        cluster: ClusterProfile,
    ) -> np.ndarray:
        """Relative deadlines, each > ``E(sigma_i, N)`` on ``cluster``."""
        ...  # pragma: no cover - protocol


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PoissonProcess:
    """Poisson arrivals: i.i.d. exponential gaps with a fixed mean.

    This is the paper's Section 5 process.  The batched drawing scheme is
    byte-identical to the legacy generator, so a given RNG stream yields the
    same arrival times it always has.
    """

    role: ClassVar[str] = "arrivals"

    mean_interarrival: float

    def __post_init__(self) -> None:
        _require_positive("mean_interarrival", self.mean_interarrival)

    def sample(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        mean_gap = self.mean_interarrival
        # Draw in growing batches; expected count is horizon / mean_gap.
        expected = max(int(horizon / mean_gap * 1.2) + 16, 16)
        gaps = rng.exponential(mean_gap, size=expected)
        total = gaps.sum()
        while total < horizon:
            extra = rng.exponential(mean_gap, size=max(expected // 4, 16))
            gaps = np.concatenate([gaps, extra])
            total += extra.sum()
        arrivals = np.cumsum(gaps)
        return arrivals[arrivals < horizon]


@dataclass(frozen=True, slots=True)
class MMPPProcess:
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *calm* state 0 and a *burst* state 1;
    within each state arrivals are Poisson with that state's mean gap, and
    sojourn times in each state are exponential.  Crossing a state boundary
    discards the in-flight gap and redraws at the new rate — valid by
    memorylessness of the exponential.

    With equal mean sojourns the long-run mean inter-arrival time is the
    harmonic balance ``2 / (1/g0 + 1/g1)``; :meth:`balanced` picks the two
    state gaps so that long-run rate matches a target while the burst state
    runs ``burst_factor`` times hotter than the calm state.
    """

    role: ClassVar[str] = "arrivals"

    mean_interarrival_calm: float
    mean_interarrival_burst: float
    mean_sojourn_calm: float
    mean_sojourn_burst: float

    def __post_init__(self) -> None:
        _require_positive("mean_interarrival_calm", self.mean_interarrival_calm)
        _require_positive("mean_interarrival_burst", self.mean_interarrival_burst)
        _require_positive("mean_sojourn_calm", self.mean_sojourn_calm)
        _require_positive("mean_sojourn_burst", self.mean_sojourn_burst)

    @classmethod
    def balanced(
        cls,
        mean_interarrival: float,
        *,
        burst_factor: float = 4.0,
        sojourn_gaps: float = 50.0,
    ) -> "MMPPProcess":
        """An MMPP whose long-run rate equals ``1/mean_interarrival``.

        ``burst_factor`` is the burst-to-calm rate ratio (> 1); each state's
        mean sojourn spans about ``sojourn_gaps`` mean gaps.
        """
        _require_positive("mean_interarrival", mean_interarrival)
        if not math.isfinite(burst_factor) or burst_factor <= 1.0:
            raise InvalidParameterError(
                f"burst_factor must be > 1, got {burst_factor}"
            )
        _require_positive("sojourn_gaps", sojourn_gaps)
        # Equal sojourns: average rate = (r0 + r1)/2 with r1 = burst * r0.
        rate = 1.0 / mean_interarrival
        rate_calm = 2.0 * rate / (1.0 + burst_factor)
        sojourn = sojourn_gaps * mean_interarrival
        return cls(
            mean_interarrival_calm=1.0 / rate_calm,
            mean_interarrival_burst=1.0 / (burst_factor * rate_calm),
            mean_sojourn_calm=sojourn,
            mean_sojourn_burst=sojourn,
        )

    def sample(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        gap_by_state = (self.mean_interarrival_calm, self.mean_interarrival_burst)
        sojourn_by_state = (self.mean_sojourn_calm, self.mean_sojourn_burst)
        times: list[float] = []
        t = 0.0
        state = 0
        boundary = float(rng.exponential(sojourn_by_state[state]))
        while True:
            gap = float(rng.exponential(gap_by_state[state]))
            if t + gap < boundary:
                t += gap
                if t >= horizon:
                    break
                times.append(t)
            else:
                t = boundary
                if t >= horizon:
                    break
                state = 1 - state
                boundary = t + float(rng.exponential(sojourn_by_state[state]))
        return np.asarray(times, dtype=np.float64)


def parse_trace_table(
    path: "str | os.PathLike[str]", column: str
) -> tuple[list[list[str]], list[str] | None, int]:
    """Resolve a trace CSV to ``(data_rows, header, arrival_index)``.

    The single reader behind :meth:`TraceArrivals.from_csv` and
    :func:`repro.workload.trace_report.summarize_trace`, so the two
    agree on every shape a trace file can take:

    * blank rows are dropped everywhere;
    * a file whose first cell parses as a float is *bare*: ``header`` is
      ``None`` and arrivals are the first column;
    * otherwise the first row is a header (cells whitespace-stripped):
      arrivals come from ``column``, or from the only column of a
      single-column file; a multi-column header without ``column``
      refuses (guessing would silently load non-time data).

    Raises :class:`InvalidParameterError` on an empty file, a header
    with no data rows, or a missing arrival column.
    """
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        rows = [row for row in reader if row and any(c.strip() for c in row)]
    if not rows:
        raise InvalidParameterError(f"trace file {path!r} is empty")
    first = rows[0]
    try:
        float(first[0])
    except ValueError:
        header = [c.strip() for c in first]
        data = rows[1:]
        if not data:
            raise InvalidParameterError(
                f"trace file {path!r} has a header but no data rows"
            ) from None
        if column in header:
            index = header.index(column)
        elif len(header) == 1:
            index = 0
        else:
            raise InvalidParameterError(
                f"trace file {path!r} has no {column!r} column "
                f"(header: {header}); pass column=<name>"
            ) from None
        return data, header, index
    return rows, None, 0


@dataclass(frozen=True, slots=True)
class TraceArrivals:
    """Replay of a recorded arrival trace (consumes no randomness)."""

    role: ClassVar[str] = "arrivals"

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        prev = -math.inf
        for t in self.times:
            if not math.isfinite(t) or t < 0:
                raise InvalidParameterError(
                    f"trace times must be finite and >= 0, got {t}"
                )
            if t <= prev:
                raise InvalidParameterError(
                    "trace times must be strictly increasing"
                )
            prev = t

    @classmethod
    def from_sequence(cls, times: Sequence[float]) -> "TraceArrivals":
        """Build from any sequence (validated, stored as a tuple)."""
        return cls(times=tuple(float(t) for t in times))

    @classmethod
    def from_csv(
        cls,
        path: "str | os.PathLike[str]",
        *,
        column: str = "arrival_time",
    ) -> "TraceArrivals":
        """Load a recorded arrival trace from a CSV file.

        Accepts the two shapes real cluster traces come in:

        * a headered CSV — arrival times are read from ``column``
          (default ``"arrival_time"``), other columns are ignored;
        * a bare single/multi-column CSV with no header — the first
          column is taken verbatim.

        The header is detected by whether the first row's first cell
        parses as a float (shared reader: :func:`parse_trace_table`).
        Values go through the same validation as :meth:`from_sequence`
        (finite, >= 0, strictly increasing).
        """
        data, _header, index = parse_trace_table(path, column)
        try:
            times = [float(row[index]) for row in data]
        except (ValueError, IndexError) as exc:
            raise InvalidParameterError(
                f"trace file {path!r}: malformed arrival value ({exc})"
            ) from exc
        return cls.from_sequence(times)

    @classmethod
    def from_parquet(
        cls,
        path: "str | os.PathLike[str]",
        *,
        column: str = "arrival_time",
    ) -> "TraceArrivals":
        """Load a recorded arrival trace from a Parquet file.

        Column resolution mirrors :meth:`from_csv`: arrival times come
        from ``column`` (default ``"arrival_time"``); a single-column file
        is taken whole; a multi-column file without the named column
        refuses rather than guess.  Values then go through the exact
        :meth:`from_sequence` validation (finite, >= 0, strictly
        increasing), so both loaders accept and reject the same traces.

        Requires :mod:`pyarrow` (an optional dependency — the core
        package stays NumPy/SciPy-only); without it the error says how to
        proceed instead of failing on an opaque import.
        """
        try:
            import pyarrow.parquet as pq
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise InvalidParameterError(
                "parquet traces require the optional 'pyarrow' dependency; "
                "install pyarrow or convert the trace to CSV and use "
                "TraceArrivals.from_csv"
            ) from exc
        table = pq.read_table(path)
        names = list(table.column_names)
        if column in names:
            chosen = column
        elif len(names) == 1:
            chosen = names[0]
        else:
            raise InvalidParameterError(
                f"trace file {path!r} has no {column!r} column "
                f"(columns: {names}); pass column=<name>"
            )
        values = table.column(chosen).to_pylist()
        if not values:
            raise InvalidParameterError(f"trace file {path!r} is empty")
        if any(v is None for v in values):
            raise InvalidParameterError(
                f"trace file {path!r}: null arrival value in column {chosen!r}"
            )
        try:
            times = [float(v) for v in values]
        except (TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"trace file {path!r}: malformed arrival value ({exc})"
            ) from exc
        return cls.from_sequence(times)

    def sample(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        arr = np.asarray(self.times, dtype=np.float64)
        return arr[arr < horizon]


# ---------------------------------------------------------------------------
# Size models
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TruncatedNormalSizes:
    """``Normal(mean, std)`` truncated to ``sigma > 0`` by redrawing.

    The paper's model has ``std = mean`` (``Normal(Avgσ, Avgσ)``); leaving
    ``std`` at ``None`` selects that.  Truncating a Normal whose std equals
    its mean raises the effective mean to ``mean · (1 + φ(1)/Φ(1)) ≈
    1.288 · mean`` (documented substitution, DESIGN.md §3).
    """

    role: ClassVar[str] = "sizes"

    mean: float
    std: float | None = None

    def __post_init__(self) -> None:
        _require_positive("mean", self.mean)
        if self.std is not None:
            _require_positive("std", self.std)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        std = self.mean if self.std is None else self.std
        sig = rng.normal(self.mean, std, size=n)
        bad = sig <= _SIGMA_FLOOR
        guard = 0
        while bad.any():
            sig[bad] = rng.normal(self.mean, std, size=int(bad.sum()))
            bad = sig <= _SIGMA_FLOOR
            guard += 1
            if guard > 10_000:  # pragma: no cover - mathematically absurd
                raise InvalidParameterError(
                    "sigma redraw loop failed to terminate; check the size model"
                )
        return sig


@dataclass(frozen=True, slots=True)
class UniformSizes:
    """``Uniform[low, high]`` data sizes with ``0 < low <= high``."""

    role: ClassVar[str] = "sizes"

    low: float
    high: float

    def __post_init__(self) -> None:
        _require_positive("low", self.low)
        _require_positive("high", self.high)
        if self.high < self.low:
            raise InvalidParameterError(
                f"high must be >= low, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)


@dataclass(frozen=True, slots=True)
class ParetoSizes:
    """Heavy-tailed Pareto sizes with a given mean and shape ``alpha > 1``.

    The scale is ``x_m = mean · (alpha - 1) / alpha`` so that
    ``E[sigma] = mean``; smaller ``alpha`` means a heavier tail (the
    variance is infinite for ``alpha <= 2``).
    """

    role: ClassVar[str] = "sizes"

    mean: float
    alpha: float = 2.5

    def __post_init__(self) -> None:
        _require_positive("mean", self.mean)
        if not math.isfinite(self.alpha) or self.alpha <= 1.0:
            raise InvalidParameterError(
                f"alpha must be > 1 for a finite mean, got {self.alpha}"
            )

    @property
    def scale(self) -> float:
        """The Pareto minimum ``x_m`` implied by (mean, alpha)."""
        return self.mean * (self.alpha - 1.0) / self.alpha

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * (1.0 + rng.pareto(self.alpha, size=n))


# ---------------------------------------------------------------------------
# Deadline models
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UniformDeadlines:
    """``Uniform[low, high]`` relative deadlines, floored at ``E(σ_i, N)``.

    The paper's model is ``Uniform[AvgD/2, 3AvgD/2]`` with ``AvgD =
    DCRatio × E(Avgσ, N)``; :meth:`from_dc_ratio` computes exactly those
    bounds.  The floor enforces "a task relative deadline D_i is chosen to
    be larger than its minimum execution time".
    """

    role: ClassVar[str] = "deadlines"

    low: float
    high: float

    def __post_init__(self) -> None:
        _require_positive("low", self.low)
        _require_positive("high", self.high)
        if self.high < self.low:
            raise InvalidParameterError(
                f"high must be >= low, got [{self.low}, {self.high}]"
            )

    @classmethod
    def from_dc_ratio(
        cls,
        dc_ratio: float,
        avg_sigma: float,
        cluster: ClusterProfile,
    ) -> "UniformDeadlines":
        """The paper's bounds for a given ``DCRatio`` on ``cluster``."""
        _require_positive("dc_ratio", dc_ratio)
        _require_positive("avg_sigma", avg_sigma)
        avg_d = dc_ratio * cluster.min_execution_time(avg_sigma)
        return cls(low=avg_d / 2.0, high=1.5 * avg_d)

    def sample(
        self,
        rng: np.random.Generator,
        sigmas: np.ndarray,
        cluster: ClusterProfile,
    ) -> np.ndarray:
        draws = rng.uniform(self.low, self.high, size=sigmas.size)
        min_exec = cluster.min_execution_time_array(sigmas)
        floor = min_exec * (1.0 + _DEADLINE_MARGIN)
        return np.maximum(draws, floor)


@dataclass(frozen=True, slots=True)
class ProportionalDeadlines:
    """``D_i = factor × E(σ_i, N)`` with optional uniform jitter.

    ``jitter = j`` multiplies each deadline by ``Uniform[1-j, 1+j]``; the
    result is floored just above ``E(σ_i, N)`` so every task stays
    individually feasible.  ``jitter = 0`` consumes no randomness.
    """

    role: ClassVar[str] = "deadlines"

    factor: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.factor) or self.factor <= 1.0:
            raise InvalidParameterError(
                f"factor must be > 1 (deadline beyond E(sigma, N)), got {self.factor}"
            )
        if not math.isfinite(self.jitter) or not 0.0 <= self.jitter < 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def sample(
        self,
        rng: np.random.Generator,
        sigmas: np.ndarray,
        cluster: ClusterProfile,
    ) -> np.ndarray:
        min_exec = cluster.min_execution_time_array(sigmas)
        deadlines = self.factor * min_exec
        if self.jitter > 0.0:
            deadlines = deadlines * rng.uniform(
                1.0 - self.jitter, 1.0 + self.jitter, size=sigmas.size
            )
        floor = min_exec * (1.0 + _DEADLINE_MARGIN)
        return np.maximum(deadlines, floor)
