"""Configuration dataclasses for simulations.

A simulation in the paper is specified by the tuple
``(N, Cms, Cps, SystemLoad, Avgσ, DCRatio)`` — equivalent to specifying the
mean inter-arrival time because ``1/λ = E(Avgσ, N) / SystemLoad``.
:class:`SimulationConfig` is exactly that tuple plus the horizon
(``TotalSimulationTime``) and a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.core import dlt
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.scenario import Scenario

__all__ = ["SimulationConfig", "WorkloadSpec"]


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Workload-side parameters (cluster-independent).

    Attributes
    ----------
    system_load:
        ``SystemLoad = λ · E(Avgσ, N)`` — offered load as a fraction of the
        cluster's all-nodes drain rate for an average task.
    avg_sigma:
        ``Avgσ`` — nominal mean task data size (the truncated-normal draw
        has a slightly higher effective mean; see the generator docs).
    dc_ratio:
        ``DCRatio = AvgD / E(Avgσ, N)`` — mean relative deadline expressed
        as a multiple of the mean minimum execution time.
    """

    system_load: float
    avg_sigma: float
    dc_ratio: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.system_load) or self.system_load <= 0:
            raise InvalidParameterError(
                f"system_load must be > 0, got {self.system_load}"
            )
        if not math.isfinite(self.avg_sigma) or self.avg_sigma <= 0:
            raise InvalidParameterError(
                f"avg_sigma must be > 0, got {self.avg_sigma}"
            )
        if not math.isfinite(self.dc_ratio) or self.dc_ratio <= 0:
            raise InvalidParameterError(
                f"dc_ratio must be > 0, got {self.dc_ratio}"
            )


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """One fully specified simulation: cluster + workload + horizon + seed.

    The paper's baseline (Section 5.1) is::

        SimulationConfig(nodes=16, cms=1.0, cps=100.0, system_load=...,
                         avg_sigma=200.0, dc_ratio=2.0,
                         total_time=10_000_000.0, seed=...)

    .. deprecated::
        ``SimulationConfig`` can only express the paper's homogeneous
        cluster with the Section 5 Poisson/truncated-normal workload.  New
        code should describe experiments with the composable
        :class:`repro.workload.scenario.Scenario` API
        (``Scenario.paper_baseline(...)`` is this exact configuration);
        this class remains as a thin adapter — :meth:`to_scenario` builds
        the equivalent scenario, and the two paths produce bit-identical
        task sets and metrics for the same seed.
    """

    nodes: int
    cms: float
    cps: float
    system_load: float
    avg_sigma: float
    dc_ratio: float
    total_time: float
    seed: int

    def __post_init__(self) -> None:
        # Delegate validation to the component specs.
        _ = self.cluster
        _ = self.workload
        if not math.isfinite(self.total_time) or self.total_time <= 0:
            raise InvalidParameterError(
                f"total_time must be > 0, got {self.total_time}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise InvalidParameterError(f"seed must be an int >= 0, got {self.seed}")

    @property
    def cluster(self) -> ClusterProfile:
        """The cluster half of the configuration (always homogeneous).

        Heterogeneous clusters cannot be expressed by this legacy config —
        build a :class:`ClusterProfile` with per-node vectors and describe
        the experiment as a :class:`~repro.workload.scenario.Scenario`.
        """
        return ClusterProfile.homogeneous(self.nodes, self.cms, self.cps)

    @property
    def workload(self) -> WorkloadSpec:
        """The workload half of the configuration."""
        return WorkloadSpec(
            system_load=self.system_load,
            avg_sigma=self.avg_sigma,
            dc_ratio=self.dc_ratio,
        )

    @property
    def min_exec_time_avg(self) -> float:
        """``E(Avgσ, N)`` — mean minimum execution time (all N nodes)."""
        return dlt.execution_time(self.avg_sigma, self.nodes, self.cms, self.cps)

    @property
    def mean_interarrival(self) -> float:
        """``1/λ = E(Avgσ, N) / SystemLoad``."""
        return self.min_exec_time_avg / self.system_load

    @property
    def avg_deadline(self) -> float:
        """``AvgD = DCRatio × E(Avgσ, N)``."""
        return self.dc_ratio * self.min_exec_time_avg

    def with_overrides(self, **changes: Any) -> "SimulationConfig":
        """A copy with selected fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def to_scenario(self, *, name: str = "") -> "Scenario":
        """The equivalent composable :class:`Scenario` (same seed semantics)."""
        from repro.workload.scenario import Scenario

        return Scenario.from_config(self, name=name)
