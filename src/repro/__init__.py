"""repro — real-time divisible load scheduling with different processor available times.

A complete, from-scratch reproduction of

    Xuan Lin, Ying Lu, Jitender Deogun, Steve Goddard.
    "Real-Time Divisible Load Scheduling with Different Processor Available
    Times."  University of Nebraska-Lincoln, TR-UNL-CSE-2007-0013 (2007).

grown into an experiment platform: experiments are described by composable
:class:`Scenario` objects and executed — serially or across worker
processes — by the :class:`BatchRunner`.

The package is organised the way the paper is:

``repro.core``
    The paper's contribution: divisible load theory (DLT) closed forms, the
    heterogeneous-model construction for clusters with different processor
    available times, the partitioners (DLT-IIT, OPR, User-Split), the
    EDF/FIFO policies and the schedulability test of Figure 2.

``repro.sim``
    The substrate: a discrete-event simulation engine and a cluster executor
    (head node, switch, processing nodes) that runs committed dispatch plans
    and records actual chunk-level timings.

``repro.workload``
    Experiment descriptions.  ``Scenario = ClusterProfile + WorkloadModel +
    horizon + seed``, where the :class:`WorkloadModel` is assembled from
    pluggable ``ArrivalProcess`` (Poisson, bursty MMPP, trace replay),
    ``SizeModel`` (truncated-normal, uniform, heavy-tail Pareto) and
    ``DeadlineModel`` (uniform window, proportional) components.
    ``Scenario.paper_baseline(...)`` is the paper's Section 5 workload;
    the legacy flat :class:`SimulationConfig` remains as a bit-identical
    adapter.

``repro.metrics``
    Task Reject Ratio, utilization / Inserted-Idle-Time accounting, and
    replication statistics with 95% confidence intervals.

``repro.experiments``
    The evaluation harness: the :class:`BatchRunner`/:class:`ResultSet`
    batch engine (parallel over ``concurrent.futures``, deterministic per
    spec, JSON/CSV export), a registry with one entry per figure panel of
    the paper, sweep drivers and plain-text report rendering.

``repro.fleet``
    The multi-cluster layer: :class:`FleetScenario` shards one shared
    workload stream across several member clusters behind a pluggable
    routing policy (round-robin, random-weighted, least-loaded,
    earliest-finish), and :class:`FleetSimulation` drives the members'
    independent simulations in lockstep.  A 1-cluster fleet is
    bit-identical to the corresponding single-cluster run.

``repro.ext``
    Extensions beyond the paper: multi-round dispatch (the paper's stated
    future work) and ablations of under-specified model choices.

Quickstart
----------
Describe an experiment with a scenario and run it:

>>> from repro import Scenario, simulate
>>> scenario = Scenario.paper_baseline(system_load=0.5,
...                                    total_time=100_000.0, seed=7)
>>> result = simulate(scenario, "EDF-DLT")
>>> 0.0 <= result.metrics.reject_ratio <= 1.0
True

Swap in a bursty, heavy-tailed workload — same cluster, same seed
discipline:

>>> from repro import (ClusterProfile, MMPPProcess, ParetoSizes,
...                    UniformDeadlines, WorkloadModel)
>>> cluster = ClusterProfile.homogeneous(16, cms=1.0, cps=100.0)
>>> scenario = Scenario(
...     cluster=cluster,
...     workload=WorkloadModel(
...         arrivals=MMPPProcess.balanced(3000.0, burst_factor=4.0),
...         sizes=ParetoSizes(mean=200.0, alpha=2.5),
...         deadlines=UniformDeadlines.from_dc_ratio(2.0, 200.0, cluster),
...     ),
...     total_time=100_000.0, seed=7)
>>> simulate(scenario, "EDF-DLT").output.validation.ok
True

Fan replications out over worker processes (results are bit-identical to
the serial path):

>>> from repro import run_replications
>>> agg = run_replications(scenario, "EDF-DLT", 4, workers=2)
>>> len(agg.samples)
4

The legacy flat configuration still works and produces the same numbers
(deprecated; it adapts through ``Scenario.from_config``):

>>> from repro import SimulationConfig
>>> cfg = SimulationConfig(nodes=16, cms=1.0, cps=100.0, system_load=0.5,
...                        avg_sigma=200.0, dc_ratio=2.0,
...                        total_time=100_000.0, seed=7)
>>> simulate(cfg, "EDF-DLT").metrics == simulate(cfg.to_scenario(), "EDF-DLT").metrics
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.core.algorithms import (
    ALGORITHMS,
    AlgorithmSpec,
    make_algorithm,
)
from repro.core.cluster import ClusterProfile, ClusterSpec
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord
from repro.experiments.batch import BatchRunner, ResultSet, RunRecord, RunSpec
from repro.experiments.runner import (
    ReplicatedResult,
    RunResult,
    run_replications,
    simulate,
)
from repro.fleet import (
    ROUTING_POLICIES,
    FleetOutput,
    FleetScenario,
    FleetSimulation,
    RoutingPolicy,
    run_fleet_sweep,
    simulate_fleet,
)
from repro.learn import (
    REWARD_MODELS,
    BanditRouter,
    EpsilonGreedy,
    LearnConfig,
    LearningReport,
    RewardModel,
    RoutingFeedback,
    ThompsonSampling,
    UCB1,
)
from repro.workload.models import (
    ArrivalProcess,
    DeadlineModel,
    MMPPProcess,
    ParetoSizes,
    PoissonProcess,
    ProportionalDeadlines,
    SizeModel,
    TraceArrivals,
    TruncatedNormalSizes,
    UniformDeadlines,
    UniformSizes,
)
from repro.workload.scenario import Scenario, WorkloadModel
from repro.workload.spec import SimulationConfig, WorkloadSpec

__all__ = [
    "ALGORITHMS",
    "REWARD_MODELS",
    "ROUTING_POLICIES",
    "AlgorithmSpec",
    "ArrivalProcess",
    "BanditRouter",
    "BatchRunner",
    "ClusterProfile",
    "ClusterSpec",
    "DeadlineModel",
    "DivisibleTask",
    "EpsilonGreedy",
    "FleetOutput",
    "FleetScenario",
    "FleetSimulation",
    "LearnConfig",
    "LearningReport",
    "MMPPProcess",
    "ParetoSizes",
    "PoissonProcess",
    "ProportionalDeadlines",
    "ReplicatedResult",
    "ResultSet",
    "RewardModel",
    "RoutingFeedback",
    "RoutingPolicy",
    "RunRecord",
    "RunResult",
    "RunSpec",
    "Scenario",
    "SimulationConfig",
    "SizeModel",
    "TaskOutcome",
    "TaskRecord",
    "ThompsonSampling",
    "TraceArrivals",
    "TruncatedNormalSizes",
    "UCB1",
    "UniformDeadlines",
    "UniformSizes",
    "WorkloadModel",
    "WorkloadSpec",
    "__version__",
    "make_algorithm",
    "run_fleet_sweep",
    "run_replications",
    "simulate",
    "simulate_fleet",
]
