"""repro — real-time divisible load scheduling with different processor available times.

A complete, from-scratch reproduction of

    Xuan Lin, Ying Lu, Jitender Deogun, Steve Goddard.
    "Real-Time Divisible Load Scheduling with Different Processor Available
    Times."  University of Nebraska-Lincoln, TR-UNL-CSE-2007-0013 (2007).

The package is organised the way the paper is:

``repro.core``
    The paper's contribution: divisible load theory (DLT) closed forms, the
    heterogeneous-model construction for clusters with different processor
    available times, the partitioners (DLT-IIT, OPR, User-Split), the
    EDF/FIFO policies and the schedulability test of Figure 2.

``repro.sim``
    The substrate: a discrete-event simulation engine and a cluster executor
    (head node, switch, processing nodes) that runs committed dispatch plans
    and records actual chunk-level timings.

``repro.workload``
    Synthetic workload generation exactly as Section 5 describes (Poisson
    arrivals, truncated-normal data sizes, DCRatio-derived deadlines).

``repro.metrics``
    Task Reject Ratio, utilization / Inserted-Idle-Time accounting, and
    replication statistics with 95% confidence intervals.

``repro.experiments``
    The evaluation harness: a registry with one entry per figure panel of the
    paper, sweep drivers and plain-text report rendering.

``repro.ext``
    Extensions beyond the paper: multi-round dispatch (the paper's stated
    future work) and ablations of under-specified model choices.

Quickstart
----------
>>> from repro import make_algorithm, SimulationConfig, simulate
>>> cfg = SimulationConfig(nodes=16, cms=1.0, cps=100.0, system_load=0.5,
...                        avg_sigma=200.0, dc_ratio=2.0,
...                        total_time=100_000.0, seed=7)
>>> result = simulate(cfg, "EDF-DLT")
>>> 0.0 <= result.metrics.reject_ratio <= 1.0
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.core.algorithms import (
    ALGORITHMS,
    AlgorithmSpec,
    make_algorithm,
)
from repro.core.cluster import ClusterSpec
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord
from repro.experiments.runner import RunResult, simulate
from repro.workload.spec import SimulationConfig, WorkloadSpec

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "ClusterSpec",
    "DivisibleTask",
    "RunResult",
    "SimulationConfig",
    "TaskOutcome",
    "TaskRecord",
    "WorkloadSpec",
    "__version__",
    "make_algorithm",
    "simulate",
]
