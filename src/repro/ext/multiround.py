"""Multi-round divisible load dispatch — the paper's future work.

Section 6: "we are working on expanding our approach to show ... that by
adopting multi-round scheduling [10], we can further improve the IITs
utilization and the system performance."

This module implements the natural first step of that programme: a
**uniform multi-round** partitioner.  The task's data is shipped in ``M``
rounds; in each round every allocated node receives an equal slice
(``σ/(M·n)``).  Small early chunks mean an early-available node starts
computing almost immediately instead of waiting for one large chunk to
arrive — exactly the IIT-utilization argument, taken further.

Design decisions (documented, testable):

* **Exact plan-time recursion.**  The plan is built by simulating the
  dispatch recursion itself — the head node sends chunks round-robin
  (node 1..n, round by round), a node cannot receive a chunk while still
  computing the previous one, and the head serializes all chunks of the
  task.  Because the recursion *is* the dispatch, the completion estimate
  is exact (no Theorem-4 gap) and the admission guarantee is immediate.
* **Node count** reuses the one-shot ``ñ_min`` of the DLT algorithm — the
  bound remains safe because uniform multi-round with ``M = 1`` equals
  User-Split's single-round equal partition, and more rounds only ever
  shorten the recursion's completion (verified by property test).
* **Round count** ``M`` is a constructor parameter (default 4, a typical
  small multi-round constant); ``M = 1`` degenerates to the single-round
  equal split.

The partitioner registers under names ``EDF-MR-DLT`` / ``FIFO-MR-DLT``
via :func:`register_multiround`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core import het_model
from repro.core.algorithms import ALGORITHMS, AlgorithmSpec
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.core.partition import (
    ExplicitChunk,
    Partitioner,
    PlacementPlan,
    feasible_by,
)
from repro.core.policies import EdfPolicy, FifoPolicy
from repro.core.task import DivisibleTask

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

__all__ = ["MultiRoundPartitioner", "register_multiround", "simulate_rounds"]


def simulate_rounds(
    sigma: float,
    releases: "NDArray[np.float64]",
    cms: "float | NDArray[np.float64]",
    cps: "float | NDArray[np.float64]",
    rounds: int,
) -> list[ExplicitChunk]:
    """Exact uniform multi-round dispatch recursion.

    Chunks are sent round-robin: round 0 to nodes ``1..n`` in availability
    order, then round 1, ...  Constraints per chunk: the head finished the
    previous chunk of this task, and the destination node finished
    computing its previous chunk (and is past its release).

    ``cms``/``cps`` accept scalars (homogeneous cluster) or per-node cost
    vectors aligned with ``releases`` (heterogeneous cluster) — the chunk
    *data* stays uniform, the per-chunk wire/compute times do not.

    Returns the full explicit chunk schedule (absolute times).
    """
    if rounds < 1:
        raise InvalidParameterError(f"rounds must be >= 1, got {rounds}")
    n = int(releases.size)
    chunk = sigma / (rounds * n)
    trans = np.broadcast_to(np.asarray(cms, dtype=np.float64), (n,)) * chunk
    comp = np.broadcast_to(np.asarray(cps, dtype=np.float64), (n,)) * chunk
    node_free = releases.astype(np.float64).copy()
    head_free = -np.inf
    out: list[ExplicitChunk] = []
    alpha = 1.0 / (rounds * n)
    for r in range(rounds):
        for i in range(n):
            start = max(head_free, float(node_free[i]))
            t_end = start + trans[i]
            c_end = t_end + comp[i]
            head_free = t_end
            node_free[i] = c_end
            out.append(
                ExplicitChunk(
                    position=i,
                    round_index=r,
                    alpha=alpha,
                    trans_start=start,
                    trans_end=t_end,
                    comp_end=c_end,
                )
            )
    return out


class MultiRoundPartitioner(Partitioner):
    """Uniform multi-round dispatch utilizing IITs (extension).

    Parameters
    ----------
    rounds:
        Number of dispatch rounds ``M`` (>= 1).  ``M = 1`` is the
        single-round equal split (User-Split's partition with ``ñ_min``
        nodes).
    """

    def __init__(self, *, rounds: int = 4) -> None:
        if rounds < 1:
            raise InvalidParameterError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds
        self.method = f"multiround-{rounds}"

    def place(
        self,
        task: DivisibleTask,
        avail: "NDArray[np.float64]",
        cluster: ClusterProfile,
        now: float,
    ) -> PlacementPlan | None:
        avail = np.maximum(np.asarray(avail, dtype=np.float64), task.arrival)
        order = np.argsort(avail, kind="stable")
        sorted_avail = avail[order]

        t_test = max(now, task.arrival)
        n_req = het_model.ntilde_min(
            task.sigma,
            cluster.worst_cms,
            cluster.worst_cps,
            task.arrival,
            task.deadline,
            t_test,
            max_nodes=cluster.nodes,
        )
        if n_req is None:
            return None
        releases = sorted_avail[:n_req]
        if cluster.is_homogeneous:
            cms, cps = cluster.cms, cluster.cps
        else:
            cms, cps = cluster.costs_for(order[:n_req])
        chunks = simulate_rounds(task.sigma, releases, cms, cps, self.rounds)
        completion = max(c.comp_end for c in chunks)
        if not feasible_by(completion, task.absolute_deadline):
            return None
        release_t = tuple(float(v) for v in releases)
        return PlacementPlan(
            task=task,
            method=self.method,
            node_ids=tuple(int(order[i]) for i in range(n_req)),
            release_times=release_t,
            dispatch_releases=release_t,
            alphas=(1.0 / n_req,) * n_req,
            est_completion=float(completion),
            explicit_chunks=tuple(chunks),
        )


def register_multiround(*, rounds: int = 4) -> None:
    """Add ``EDF-MR-DLT`` / ``FIFO-MR-DLT`` to the algorithm registry.

    Idempotent; re-registering with a different round count replaces the
    entries.
    """

    def _factory(
        _rng: np.random.Generator | None, _node_order: str = "availability"
    ) -> Partitioner:
        # Multi-round plans always use the paper's (availability, node id)
        # candidate ordering; node-order policies are a single-round feature.
        return MultiRoundPartitioner(rounds=rounds)

    for policy_name, policy_factory in (("EDF", EdfPolicy), ("FIFO", FifoPolicy)):
        name = f"{policy_name}-MR-DLT"
        ALGORITHMS[name] = AlgorithmSpec(
            name=name,
            policy_factory=policy_factory,
            partitioner_factory=_factory,
            utilizes_iits=True,
            description=(
                f"Extension (paper future work): uniform {rounds}-round "
                "dispatch utilizing IITs; exact plan-time recursion."
            ),
        )
