"""Ablation drivers for the model choices DESIGN.md §3 documents.

Each ablation runs the same workload under the paper reading and the
alternative reading, and reports both reject ratios:

=====================  ========================================================
name                   question it answers
=====================  ========================================================
``eager-release``      Does handing nodes back at *actual* (vs estimated)
                       completion change acceptance?  (Theorem 4 slack)
``fixed-point-n``      How much would resolving the n↔start-time circularity
                       iteratively (instead of Figure 2's one-shot ñ_min(t))
                       help both DLT and OPR?
``user-split-redraw``  Pseudocode-literal User-Split (re-roll n on every
                       re-plan) vs the sticky per-task draw.
``shared-head-link``   If all transmissions serialize through one head-node
                       link (instead of a switched fabric), how many admitted
                       tasks would miss deadlines?
``all-nodes``          The Section 5 "-AN" policies vs the minimum-node ones.
``multi-round``        The future-work extension vs single-round DLT.
=====================  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.algorithms import make_algorithm
from repro.core.partition import DltIitPartitioner, UserSplitPartitioner
from repro.ext.multiround import register_multiround
from repro.metrics.collector import MetricsSummary, summarize
from repro.sim.cluster_sim import ClusterSimulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import SimulationConfig

__all__ = ["ABLATIONS", "AblationResult", "run_ablation"]


@dataclass(frozen=True, slots=True)
class AblationResult:
    """Paired outcome of one ablation on one configuration."""

    name: str
    baseline_label: str
    variant_label: str
    baseline: MetricsSummary
    variant: MetricsSummary

    @property
    def reject_ratio_delta(self) -> float:
        """variant − baseline reject ratio (negative = variant better)."""
        return self.variant.reject_ratio - self.baseline.reject_ratio

    def summary(self) -> str:
        """One-line comparison."""
        return (
            f"{self.name}: {self.baseline_label}={self.baseline.reject_ratio:.4f} "
            f"vs {self.variant_label}={self.variant.reject_ratio:.4f} "
            f"(Δ={self.reject_ratio_delta:+.4f})"
        )


def _run(config: SimulationConfig, algorithm_name: str, **sim_kwargs) -> MetricsSummary:
    generator = WorkloadGenerator(config)
    tasks = generator.generate()
    instance = make_algorithm(algorithm_name, rng=generator.algorithm_rng())
    sim = ClusterSimulation(
        config.cluster,
        instance,
        tasks,
        horizon=config.total_time,
        **sim_kwargs,
    )
    return summarize(sim.run())


def _run_custom_partitioner(
    config: SimulationConfig, base_algorithm: str, partitioner, **sim_kwargs
) -> MetricsSummary:
    """Run a named algorithm with its partitioner swapped out."""
    from repro.core.algorithms import ALGORITHMS, AlgorithmInstance

    generator = WorkloadGenerator(config)
    tasks = generator.generate()
    spec = ALGORITHMS[base_algorithm]
    instance = AlgorithmInstance(
        spec=spec, policy=spec.policy_factory(), partitioner=partitioner
    )
    sim = ClusterSimulation(
        config.cluster, instance, tasks, horizon=config.total_time, **sim_kwargs
    )
    return summarize(sim.run())


def _eager_release(config: SimulationConfig) -> AblationResult:
    return AblationResult(
        name="eager-release",
        baseline_label="estimate-release (paper)",
        variant_label="actual-release",
        baseline=_run(config, "EDF-DLT"),
        variant=_run(config, "EDF-DLT", eager_release=True),
    )


def _fixed_point(config: SimulationConfig) -> AblationResult:
    return AblationResult(
        name="fixed-point-n",
        baseline_label="one-shot ñ_min(t) (paper)",
        variant_label="fixed-point ñ_min",
        baseline=_run(config, "EDF-DLT"),
        variant=_run_custom_partitioner(
            config, "EDF-DLT", DltIitPartitioner(fixed_point_node_count=True)
        ),
    )


def _user_split_redraw(config: SimulationConfig) -> AblationResult:
    generator = WorkloadGenerator(config)
    redraw = UserSplitPartitioner(rng=generator.algorithm_rng(), redraw_on_replan=True)
    return AblationResult(
        name="user-split-redraw",
        baseline_label="sticky draw (default)",
        variant_label="redraw per re-plan (Fig. 2 literal)",
        baseline=_run(config, "EDF-UserSplit"),
        variant=_run_custom_partitioner(config, "EDF-UserSplit", redraw),
    )


def _shared_head_link(config: SimulationConfig) -> AblationResult:
    return AblationResult(
        name="shared-head-link",
        baseline_label="switched fabric (paper)",
        variant_label="single shared head link",
        baseline=_run(config, "EDF-DLT"),
        variant=_run(config, "EDF-DLT", shared_head_link=True, validate=True),
    )


def _all_nodes(config: SimulationConfig) -> AblationResult:
    return AblationResult(
        name="all-nodes",
        baseline_label="EDF-DLT (ñ_min nodes)",
        variant_label="EDF-DLT-AN (all N nodes)",
        baseline=_run(config, "EDF-DLT"),
        variant=_run(config, "EDF-DLT-AN"),
    )


def _multi_round(config: SimulationConfig) -> AblationResult:
    register_multiround(rounds=4)
    return AblationResult(
        name="multi-round",
        baseline_label="EDF-DLT (single round)",
        variant_label="EDF-MR-DLT (4 rounds)",
        baseline=_run(config, "EDF-DLT"),
        variant=_run(config, "EDF-MR-DLT"),
    )


#: name → driver, each mapping one DESIGN.md §3 decision to an experiment.
ABLATIONS: dict[str, Callable[[SimulationConfig], AblationResult]] = {
    "eager-release": _eager_release,
    "fixed-point-n": _fixed_point,
    "user-split-redraw": _user_split_redraw,
    "shared-head-link": _shared_head_link,
    "all-nodes": _all_nodes,
    "multi-round": _multi_round,
}


def run_ablation(name: str, config: SimulationConfig) -> AblationResult:
    """Run one named ablation on ``config``."""
    try:
        driver = ABLATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ABLATIONS))
        raise KeyError(f"unknown ablation {name!r}; known: {known}") from None
    return driver(config)
