"""Extensions beyond the paper.

``multiround``
    The paper's stated future work (Section 6): multi-round dispatch that
    "can further improve the IITs utilization".  Implemented as a uniform
    multi-round partitioner whose plan-time recursion *is* the dispatch
    recursion, so estimates are exact.
``ablations``
    Drivers quantifying the under-specified model choices documented in
    DESIGN.md §3 (eager release, fixed-point node counts, User-Split
    redraw, shared head link).
"""

from repro.ext.multiround import MultiRoundPartitioner, register_multiround
from repro.ext.ablations import ABLATIONS, AblationResult, run_ablation

__all__ = [
    "ABLATIONS",
    "AblationResult",
    "MultiRoundPartitioner",
    "register_multiround",
    "run_ablation",
]
