"""Wire protocol of the live admission service.

One frame per message, in either direction::

    +-------+----------------+------------------+
    | codec | payload length | payload          |
    | 1 byte| 4 bytes, BE    | length bytes     |
    +-------+----------------+------------------+

The codec byte is ``b"J"`` (JSON, always available) or ``b"M"``
(`msgpack <https://msgpack.org>`_, used opportunistically when the
optional dependency is installed — mirroring the pyarrow pattern of
:meth:`~repro.workload.models.TraceArrivals.from_parquet`).  Every frame
is self-describing, so a JSON client can talk to a msgpack-capable
server and vice versa; :func:`encode_frame` refuses an unavailable codec
with a helpful :class:`~repro.core.errors.InvalidParameterError` instead
of an opaque ``ImportError``.

Payloads are flat dictionaries.  Requests carry ``op`` (the operation
name), ``seq`` (a client-chosen correlation id echoed verbatim) and the
operation's fields; responses carry ``seq``, ``ok`` and either result
fields or ``error`` / ``error_type``.  The operation set and the exact
field contracts are specified in ``docs/serving.md``.

Exactness
---------
The loopback guarantee of :mod:`repro.serve` — server-mediated replay is
*bit-identical* to the offline simulation — leans on two properties of
this module:

* JSON floats use Python's shortest-repr encoding, which round-trips
  every finite ``float`` exactly (``allow_nan=False`` makes non-finite
  values a loud error rather than a silent wire extension);
* tasks, records and stats cross the wire as plain dicts of finite
  floats / ints / strings (:func:`encode_task` … :func:`decode_stats`),
  so a decoded :class:`~repro.core.task.TaskRecord` compares equal —
  field by field, float by float — to the record the server held.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO

from repro.core.errors import ReproError
from repro.core.scheduler import SchedulerStats
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord

try:  # optional dependency — JSON is the always-available floor
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - environment-dependent
    msgpack = None

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "PROTOCOL_VERSION",
    "ServiceProtocolError",
    "available_codecs",
    "decode_record",
    "decode_stats",
    "decode_task",
    "encode_frame",
    "encode_output",
    "encode_record",
    "encode_stats",
    "encode_task",
    "read_frame",
]

#: Protocol revision announced by ``hello``; bumped on breaking changes.
PROTOCOL_VERSION = 1

#: Codec names (the ``hello`` negotiation speaks in these).
CODEC_JSON = "json"
CODEC_MSGPACK = "msgpack"

#: Codec-name -> frame tag byte.
_CODEC_BYTES = {CODEC_JSON: b"J", CODEC_MSGPACK: b"M"}
_BYTE_CODECS = {v: k for k, v in _CODEC_BYTES.items()}

#: Upper bound on a single frame's payload (a finalize payload for a very
#: long run is a few MiB; 256 MiB is far beyond any legitimate message and
#: turns a corrupt length prefix into a clean error instead of an OOM).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">B I")


class ServiceProtocolError(ReproError):
    """A malformed frame, unknown codec, or server-reported failure."""


def available_codecs() -> tuple[str, ...]:
    """Codec names usable in this environment (JSON always; msgpack if installed)."""
    if msgpack is not None:
        return (CODEC_JSON, CODEC_MSGPACK)
    return (CODEC_JSON,)


def encode_frame(message: dict[str, Any], codec: str = CODEC_JSON) -> bytes:
    """Serialize one message dict to a self-describing wire frame."""
    if codec == CODEC_JSON:
        payload = json.dumps(
            message, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ServiceProtocolError(
                "the msgpack codec requires the optional 'msgpack' "
                "dependency; install msgpack or use codec='json'"
            )
        payload = msgpack.packb(message, use_bin_type=True)
    else:
        raise ServiceProtocolError(
            f"unknown codec {codec!r}; valid: {', '.join(_CODEC_BYTES)}"
        )
    if len(payload) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(_CODEC_BYTES[codec][0], len(payload)) + payload


def decode_payload(codec_byte: int, payload: bytes) -> dict[str, Any]:
    """Deserialize one frame payload given its codec tag byte."""
    codec = _BYTE_CODECS.get(bytes([codec_byte]))
    if codec is None:
        raise ServiceProtocolError(
            f"unknown frame codec byte {codec_byte!r}"
        )
    if codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ServiceProtocolError(
                "received a msgpack frame but the optional 'msgpack' "
                "dependency is not installed"
            )
        message = msgpack.unpackb(payload, raw=False)
    else:
        message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise ServiceProtocolError(
            f"frame payload must be a message dict, got {type(message).__name__}"
        )
    return message


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one frame from a blocking binary stream.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    the connection); raises :class:`ServiceProtocolError` on a truncated
    frame or a malformed header.  Works on anything with a ``read(n)``
    method — the synchronous client uses a buffered socket file.
    """
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ServiceProtocolError("truncated frame header")
    codec_byte, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ServiceProtocolError("truncated frame payload")
        payload += chunk
    return decode_payload(codec_byte, payload)


# -- task / record / stats codecs -------------------------------------------
def encode_task(task: DivisibleTask) -> dict[str, Any]:
    """A task as a wire dict of its four defining fields."""
    return {
        "task_id": task.task_id,
        "arrival": task.arrival,
        "sigma": task.sigma,
        "deadline": task.deadline,
    }


def decode_task(obj: dict[str, Any]) -> DivisibleTask:
    """Rebuild a task from its wire dict (re-validated on construction)."""
    try:
        return DivisibleTask(
            task_id=int(obj["task_id"]),
            arrival=float(obj["arrival"]),
            sigma=float(obj["sigma"]),
            deadline=float(obj["deadline"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceProtocolError(f"malformed task payload: {exc}") from exc


def encode_record(record: TaskRecord) -> dict[str, Any]:
    """A :class:`TaskRecord` as a wire dict (exact float round-trip)."""
    return {
        "task": encode_task(record.task),
        "outcome": record.outcome.value,
        "est_completion": record.est_completion,
        "actual_completion": record.actual_completion,
        "n_nodes": record.n_nodes,
        "node_ids": list(record.node_ids),
        "started_at": record.started_at,
    }


def decode_record(obj: dict[str, Any]) -> TaskRecord:
    """Rebuild a :class:`TaskRecord` that compares equal to the original."""
    try:
        return TaskRecord(
            task=decode_task(obj["task"]),
            outcome=TaskOutcome(obj["outcome"]),
            est_completion=obj["est_completion"],
            actual_completion=obj["actual_completion"],
            n_nodes=obj["n_nodes"],
            node_ids=tuple(obj["node_ids"]),
            started_at=obj["started_at"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceProtocolError(f"malformed record payload: {exc}") from exc


#: SchedulerStats counter fields, in wire order.
_STATS_FIELDS = (
    "arrivals",
    "accepted",
    "rejected",
    "admission_tests",
    "replanned_tasks",
    "cancelled",
    "displaced",
    "readmitted",
    "fault_missed",
)


def encode_stats(stats: SchedulerStats) -> dict[str, int]:
    """Scheduler counters as a wire dict."""
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def decode_stats(obj: dict[str, Any]) -> SchedulerStats:
    """Rebuild a :class:`SchedulerStats` equal to the original."""
    try:
        return SchedulerStats(**{name: int(obj[name]) for name in _STATS_FIELDS})
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceProtocolError(f"malformed stats payload: {exc}") from exc


def encode_output(output: Any) -> dict[str, Any]:
    """One member's :class:`~repro.sim.cluster_sim.SimulationOutput` as a dict.

    Records are emitted in task-id order; the busy/allocated vectors ride
    along as float lists.  Together with :func:`encode_stats` this is the
    whole payload the loopback check compares record by record.
    """
    return {
        "algorithm": output.algorithm,
        "horizon": output.horizon,
        "records": [
            encode_record(output.records[tid]) for tid in sorted(output.records)
        ],
        "stats": encode_stats(output.stats),
        "node_busy_time": [float(v) for v in output.node_busy_time],
        "node_allocated_time": [float(v) for v in output.node_allocated_time],
        "validation": output.validation.summary(),
    }
