"""Simulation backends behind the live admission service.

The server (:mod:`repro.serve.server`) is transport + ordering; all
simulation state lives in one of the two backends here, which present the
same five-operation surface over the incremental drivers grown for this
purpose:

* :class:`ClusterBackend` — one
  :class:`~repro.sim.cluster_sim.ClusterSimulation` (a single head node);
* :class:`FleetBackend` — one
  :class:`~repro.fleet.sim.FleetSimulation` (an ingress router over
  member clusters, static or bandit routing).

Loopback guarantee
------------------
``submit`` drives exactly the per-task sequence the offline drivers
compose their one-shot ``run()`` from (submit the arrival, advance the
clock to it), so feeding the offline task stream through a backend —
whatever the transport interleaving upstream — finalizes into an output
*bit-identical* to ``run()`` on the same scenario: same records, same
counters, same busy vectors.  ``tests/test_serve.py`` asserts this for
both backends, both admission engines and several routing policies.

``probe`` is the one advisory operation: it runs the schedulability test
against the current committed state at ``max(clock, arrival)`` without
advancing the clock or committing anything.  For deterministic
partitioners a probe is invisible to the loopback guarantee (the fast
engine's memo makes a probe-then-submit reuse exact); a *stochastic*
partitioner (User-Split) draws from its RNG per probe, so interleaving
probes into a replay perturbs later draws — documented, not defended.
"""

from __future__ import annotations

from typing import Any

from repro.core.algorithms import make_algorithm
from repro.core.errors import InvalidParameterError, ReproError
from repro.core.task import DivisibleTask, TaskOutcome
from repro.fleet.scenario import FleetScenario
from repro.fleet.sim import FleetSimulation
from repro.obs import Observability, merge_snapshots
from repro.serve.protocol import encode_output
from repro.sim.cluster_sim import ClusterSimulation
from repro.workload.scenario import Scenario

__all__ = ["ClusterBackend", "FleetBackend", "make_backend"]


def _probe_cluster(sim: ClusterSimulation, task: DivisibleTask) -> float | None:
    """What-if admission against one cluster's committed state.

    Mirrors the fleet router's probe: the schedulability test runs at
    ``max(clock, arrival)`` against the live reservations and waiting
    queue, commits nothing, and fires no events.  Returns the estimated
    completion on acceptance, ``None`` on rejection.
    """
    scheduler = sim.scheduler
    now = max(sim.engine.now, task.arrival)
    decision = scheduler.test.try_admit(
        task, list(scheduler.waiting.values()), scheduler.reservations, now
    )
    if not decision.accepted:
        return None
    return decision.plans[task.task_id].est_completion


def _decision_fields(sim: ClusterSimulation, task_id: int) -> dict[str, Any]:
    """The admission decision of one just-submitted task.

    The scheduler stamps ``est_completion`` on the record only when the
    task *starts*; a freshly admitted task that is still waiting carries
    its estimate in the committed plan, so the decision reports that —
    the same number a ``probe`` of the same task would have returned.
    """
    scheduler = sim.scheduler
    record = scheduler.records[task_id]
    accepted = record.outcome is TaskOutcome.ACCEPTED
    est = record.est_completion
    if est is None and accepted:
        plan = scheduler.committed_plans.get(task_id)
        if plan is not None:
            est = plan.est_completion
    return {"accepted": accepted, "est_completion": est}


class ClusterBackend:
    """Live admission control over a single simulated cluster.

    Parameters
    ----------
    scenario:
        Cluster + horizon + seed (the workload component only matters to
        offline checks; the backend consumes tasks from the wire).
    algorithm:
        Scheduling algorithm name; its RNG comes from the scenario's
        dedicated algorithm stream, exactly as in
        :func:`repro.experiments.runner.simulate`.
    node_order / admission_engine / eager_release / shared_head_link /
    validate:
        Forwarded to the underlying simulation.  ``admission_engine``
        defaults to ``"batch"`` — the fastest engine on admission-heavy
        streams (decisions are bit-identical across engines, so a live
        service always wants the quick one).
    """

    #: Backend kind tag carried in ``hello`` and finalize payloads.
    kind = "cluster"

    def __init__(
        self,
        scenario: Scenario,
        algorithm: str,
        *,
        node_order: str = "availability",
        admission_engine: str = "batch",
        eager_release: bool = False,
        shared_head_link: bool = False,
        validate: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        instance = make_algorithm(
            algorithm, rng=scenario.algorithm_rng(), node_order=node_order
        )
        self.sim = ClusterSimulation(
            scenario.cluster,
            instance,
            horizon=scenario.total_time,
            validate=validate,
            eager_release=eager_release,
            shared_head_link=shared_head_link,
            admission_engine=admission_engine,
            faults=scenario.fault_plan(),
            obs=obs,
        )

    def submit(self, task: DivisibleTask) -> dict[str, Any]:
        """Admit or reject one arrival; the decision is final and visible.

        Submits the arrival and advances the clock to it, the exact
        per-task step ``ClusterSimulation.run`` is composed of, then
        reads the decision off the scheduler's record.
        """
        self.sim.submit(task)
        self.sim.advance_to(task.arrival)
        return {**_decision_fields(self.sim, task.task_id), "member": None}

    def submit_many(
        self, tasks: list[DivisibleTask]
    ) -> list[dict[str, Any] | ReproError]:
        """Admit a coalesced run of merged arrivals in one backend pass.

        Semantically identical to calling :meth:`submit` once per task in
        order — same per-task submit-then-advance step, same decisions.
        A per-task :class:`ReproError` becomes that slot's return value,
        exactly as serial dispatch reported it per request, so one bad
        task cannot void its batchmates' decisions.
        """
        results: list[dict[str, Any] | ReproError] = []
        submit = self.submit
        for task in tasks:
            try:
                results.append(submit(task))
            except ReproError as exc:
                results.append(exc)
        return results

    def probe(self, task: DivisibleTask) -> dict[str, Any]:
        """Advisory what-if admission (no commitment, no clock advance)."""
        est = _probe_cluster(self.sim, task)
        return {"accepted": est is not None, "est_completion": est, "member": None}

    def cancel(self, task_id: int) -> bool:
        """Withdraw a waiting task; ``False`` when it is too late."""
        return self.sim.cancel(task_id)

    def task_status(self, task_id: int) -> dict[str, Any]:
        """Live status dict of one task id."""
        return self.sim.task_status(task_id)

    def snapshot(self) -> dict[str, Any]:
        """Live aggregate state (clock, counters, queue occupancy)."""
        return self.sim.snapshot()

    def metrics(self) -> dict[str, Any]:
        """Live :mod:`repro.obs` registry snapshot (wall instruments too)."""
        return self.sim.obs.registry.snapshot(include_wall=True)

    def finalize(self) -> dict[str, Any]:
        """Drain the simulation and return the full output payload."""
        output = self.sim.finalize()
        return {"kind": self.kind, **encode_output(output)}

    def describe(self) -> dict[str, Any]:
        """Config fingerprint for the ``hello`` handshake."""
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "scenario": self.scenario.describe(),
        }


class FleetBackend:
    """Live admission control over a routed fleet of clusters.

    Same surface as :class:`ClusterBackend`; ``submit`` additionally
    reports the member index the routing policy chose, and ``probe``
    reports every member's estimate (the router's own view of the fleet).
    """

    #: Backend kind tag carried in ``hello`` and finalize payloads.
    kind = "fleet"

    def __init__(
        self,
        scenario: FleetScenario,
        algorithm: str,
        *,
        node_order: str = "availability",
        admission_engine: str = "batch",
        eager_release: bool = False,
        shared_head_link: bool = False,
        validate: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        self.sim = FleetSimulation(
            scenario,
            algorithm,
            validate=validate,
            eager_release=eager_release,
            shared_head_link=shared_head_link,
            node_order=node_order,
            admission_engine=admission_engine,
            obs=obs,
        )

    def submit(self, task: DivisibleTask) -> dict[str, Any]:
        """Route and admit one arrival; reports the chosen member too."""
        index = self.sim.submit(task)
        return {
            **_decision_fields(self.sim.sims[index], task.task_id),
            "member": index,
        }

    def submit_many(
        self, tasks: list[DivisibleTask]
    ) -> list[dict[str, Any] | ReproError]:
        """Admit a coalesced run of merged arrivals in one backend pass.

        Same contract as :meth:`ClusterBackend.submit_many`: per-task
        route-and-admit in merged order, per-task errors in-slot.
        """
        results: list[dict[str, Any] | ReproError] = []
        submit = self.submit
        for task in tasks:
            try:
                results.append(submit(task))
            except ReproError as exc:
                results.append(exc)
        return results

    def probe(self, task: DivisibleTask) -> dict[str, Any]:
        """Advisory what-if admission against every member.

        ``members`` lists each member's estimate (``None`` = it would
        reject); ``member`` / ``est_completion`` report the earliest
        accepting member.  Probing does not consult the routing policy —
        a later ``submit`` may route elsewhere.
        """
        estimates = [_probe_cluster(sim, task) for sim in self.sim.sims]
        best_index: int | None = None
        best: float | None = None
        for i, est in enumerate(estimates):
            if est is not None and (best is None or est < best):
                best_index, best = i, est
        return {
            "accepted": best is not None,
            "est_completion": best,
            "member": best_index,
            "members": estimates,
        }

    def cancel(self, task_id: int) -> bool:
        """Withdraw a routed, still-waiting task from its member."""
        return self.sim.cancel(task_id)

    def task_status(self, task_id: int) -> dict[str, Any]:
        """Live status dict of one task id (with its ``member`` index)."""
        return self.sim.task_status(task_id)

    def snapshot(self) -> dict[str, Any]:
        """Live pooled state plus per-member snapshots."""
        return self.sim.snapshot()

    def metrics(self) -> dict[str, Any]:
        """Live merged registry snapshot: every member plus the fleet.

        Member registries are merged cellwise with the fleet's own
        (routing shares, probe cache), so one flat snapshot describes
        the whole service — the shape ``summarize_pooled`` attaches to
        the offline :class:`~repro.metrics.collector.MetricsSummary`.
        """
        snaps = [
            member.obs.registry.snapshot(include_wall=True)
            for member in self.sim.sims
        ]
        snaps.append(self.sim.obs.registry.snapshot(include_wall=True))
        return merge_snapshots(snaps)

    def finalize(self) -> dict[str, Any]:
        """Drain every member and return the full fleet output payload."""
        output = self.sim.finalize()
        payload: dict[str, Any] = {
            "kind": self.kind,
            "algorithm": output.algorithm,
            "policy": self.scenario.policy,
            "assignments": list(output.assignments),
            "outputs": [encode_output(o) for o in output.outputs],
            "reject_ratio": output.reject_ratio,
        }
        if output.learning is not None:
            payload["learning"] = {
                "reward_model": output.learning.reward_model,
                "best_arm": output.learning.best_arm,
                "cumulative_regret": output.learning.cumulative_regret,
            }
        return payload

    def describe(self) -> dict[str, Any]:
        """Config fingerprint for the ``hello`` handshake."""
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "scenario": self.scenario.describe(),
        }


def make_backend(
    scenario: FleetScenario,
    algorithm: str,
    **kwargs: Any,
) -> ClusterBackend | FleetBackend:
    """Backend for a fleet description: 1 cluster → cluster, else fleet.

    A 1-cluster fleet routes every task to its only member, so serving it
    through the plain :class:`ClusterBackend` is behaviorally identical
    and skips the routing layer; the member-0 scenario keeps the fleet
    seed, preserving the single-cluster offline equivalence anchor.
    ``kwargs`` are the shared backend options (``node_order``,
    ``admission_engine``, …).
    """
    if not isinstance(scenario, FleetScenario):
        raise InvalidParameterError(
            f"make_backend expects a FleetScenario, got {scenario!r}"
        )
    if scenario.n_clusters == 1:
        return ClusterBackend(scenario.member_scenario(0), algorithm, **kwargs)
    return FleetBackend(scenario, algorithm, **kwargs)
