"""The live admission server: asyncio transport + deterministic merge.

:class:`AdmissionServer` listens on a TCP socket, speaks the framed
protocol of :mod:`repro.serve.protocol`, and drives exactly one backend
(:mod:`repro.serve.backend`).  All simulation work happens on a single
dispatcher task, so concurrency never races the simulation itself — the
interesting problem is *ordering*: when several clients submit tasks
concurrently, which submission does the backend see first?

Watermark merge
---------------
Each connection's requests form a strict FIFO queue.  A connection with
an *open stream* (explicit ``stream_open``, or implicit on its first
``submit``) is a declared submitter.  The dispatcher repeats two steps:

1. **Control first** — any non-``submit`` request at the head of any
   queue is handled immediately (probe / status / cancel never wait on
   the barrier).
2. **Barrier merge** — a ``submit`` dispatches only when *every* open
   stream has a ``submit`` at its head (or has ended); among the heads,
   the one with the smallest ``(arrival, task_id)`` wins.

Submissions released at the same watermark are **coalesced**: once the
barrier holds, the dispatcher keeps popping the smallest head for as
long as every open stream still shows a ``submit`` at its head, and
hands the whole run to the backend as one ``submit_many`` pass.  The
batch boundary is exactly where the serial loop would have stopped
submitting (a control surfaced, or a queue ran dry), so the merged
order — and therefore every decision — is identical to one-at-a-time
dispatch; what coalescing saves is the per-submit barrier re-scan and
one response write+drain per request (batched frames, one drain per
connection per batch).

The merged submission order therefore depends only on the tasks
themselves, never on network timing — N clients replaying disjoint
shards of a trace produce the exact submission sequence of one client
replaying the whole trace, which is what makes the loopback guarantee
hold under concurrency (``tests/test_serve.py`` asserts it).  The cost
is a liveness obligation: an open stream that stops submitting without
``stream_end`` stalls every other submitter (disconnecting releases the
barrier too, discarding the connection's unprocessed requests).

``--once`` mode (the replay harness) stops the server after the first
successful ``finalize``; a ``shutdown`` request stops it on demand.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
from collections import deque
from time import perf_counter
from typing import Any

from repro.core.errors import InvalidParameterError, ReproError
from repro.obs import Observability, merge_snapshots, render_prometheus
from repro.obs.metrics import LATENCY_BUCKETS
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    available_codecs,
    decode_payload,
    decode_task,
    encode_frame,
)

__all__ = ["AdmissionServer", "BackgroundServer"]

_HEADER_SIZE = 5  # codec byte + 4-byte length

#: Bucket bounds for the coalesced-batch-size histogram (batch sizes are
#: small integers; the top bucket catches wide-open 16-client barriers).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class _Connection:
    """Per-connection state: FIFO request queue, codec, stream flag."""

    __slots__ = ("queue", "writer", "codec", "stream_open", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.queue: deque[dict[str, Any]] = deque()
        self.writer = writer
        self.codec = "json"
        self.stream_open = False
        self.closed = False


class AdmissionServer:
    """One backend served over TCP with deterministic submission merging.

    Parameters
    ----------
    backend:
        A :class:`~repro.serve.backend.ClusterBackend` or
        :class:`~repro.serve.backend.FleetBackend`.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    once:
        Stop the server after the first successful ``finalize`` — the
        replay harness's fire-and-forget mode.
    obs:
        Optional :class:`repro.obs.Observability` bundle for the server
        itself (request counters per op, wall-clock request latency, and
        — when its tracer is set — request-lifecycle spans).  Distinct
        from the backend's simulation registry; the ``metrics`` op and
        the Prometheus endpoint merge both.
    metrics_port:
        When given, additionally serve the merged registry snapshot in
        Prometheus text exposition format over plain HTTP on this port
        (``GET`` anything; port ``0`` picks an ephemeral one, read back
        from :attr:`metrics_address`).
    """

    def __init__(
        self,
        backend: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        once: bool = False,
        obs: Observability | None = None,
        metrics_port: int | None = None,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self.once = once
        self.obs = obs if obs is not None else Observability()
        self.metrics_port = metrics_port
        self._latency = self.obs.registry.histogram(
            "serve_request_seconds",
            LATENCY_BUCKETS,
            "Wall-clock time spent handling each request.",
            wall=True,
        )
        self._batch_sizes = self.obs.registry.histogram(
            "serve_coalesced_batch_size",
            _BATCH_SIZE_BUCKETS,
            "Submissions dispatched per coalesced backend pass.",
            wall=True,
        )
        #: Per-op request counters, resolved once — the get-or-create
        #: registry lookup (name mangling + type check) is too slow for
        #: the per-submit hot path.
        self._op_counters: dict[str, Any] = {}
        #: Monotone logical clock for serve-side trace timestamps (the
        #: service has no simulation clock of its own).
        self._trace_clock = 0
        self._conns: list[_Connection] = []
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._stopping = False
        self._server: asyncio.base_events.Server | None = None
        self._metrics_server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise InvalidParameterError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The Prometheus endpoint's ``(host, port)``; ``None`` when off."""
        if self._metrics_server is None:
            return None
        sock = self._metrics_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listening socket and launch the dispatcher task."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def wait_closed(self) -> None:
        """Block until the server has fully stopped."""
        await self._stopped.wait()

    def request_stop(self) -> None:
        """Ask the dispatcher to shut the server down (idempotent)."""
        self._stopping = True
        self._wake.set()

    # -- connection reader --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames into the connection's FIFO queue until EOF."""
        conn = _Connection(writer)
        self._conns.append(conn)
        try:
            while not self._stopping:
                try:
                    header = await reader.readexactly(_HEADER_SIZE)
                except asyncio.IncompleteReadError:
                    break
                length = int.from_bytes(header[1:5], "big")
                payload = await reader.readexactly(length)
                try:
                    message = decode_payload(header[0], payload)
                    if message.get("op") == "submit":
                        # Decode eagerly: the merge needs (arrival, id)
                        # before dispatch, and a malformed task must not
                        # poison the queue.
                        message["task"] = decode_task(message.get("task", {}))
                except ReproError as exc:
                    await self._send(
                        conn,
                        {
                            "seq": None,
                            "ok": False,
                            "error": str(exc),
                            "error_type": type(exc).__name__,
                        },
                    )
                    continue
                conn.queue.append(message)
                if self.obs.tracer is not None:
                    # Decode done, dispatch pending: the gap between this
                    # event and the request's span is the barrier wait.
                    self._trace_clock += 1
                    self.obs.tracer.event(
                        "serve.enqueued",
                        "serve",
                        float(self._trace_clock),
                        op=message.get("op"),
                        seq=message.get("seq"),
                    )
                self._wake.set()
        except (ConnectionError, OSError):  # pragma: no cover - peer races
            pass
        finally:
            conn.closed = True
            conn.stream_open = False
            conn.queue.clear()  # unprocessed requests die with the peer
            self._wake.set()
            try:
                writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _write(self, conn: _Connection, message: dict[str, Any]) -> None:
        """Buffer one response frame (no-op once the peer is gone)."""
        if conn.closed:
            return
        try:
            conn.writer.write(encode_frame(message, conn.codec))
        except (ConnectionError, OSError):  # pragma: no cover - peer races
            conn.closed = True

    async def _flush(self, conn: _Connection) -> None:
        """Drain a connection's buffered frames to the transport."""
        if conn.closed:
            return
        try:
            await conn.writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer races
            conn.closed = True

    async def _send(self, conn: _Connection, message: dict[str, Any]) -> None:
        """Write one response frame and drain it immediately."""
        self._write(conn, message)
        await self._flush(conn)

    # -- dispatcher ---------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Single-task event loop: control first, then the barrier merge."""
        try:
            while not self._stopping:
                self._wake.clear()
                progressed = await self._drain_ready()
                if self._stopping:
                    break
                if not progressed:
                    await self._wake.wait()
        finally:
            await self._shutdown()

    async def _drain_ready(self) -> bool:
        """Process everything currently dispatchable; report progress."""
        progressed = False
        while not self._stopping:
            did = False
            for conn in list(self._conns):
                if conn.closed:
                    self._conns.remove(conn)
                    did = True
                    continue
                while (
                    conn.queue
                    and conn.queue[0].get("op") != "submit"
                    and not self._stopping
                ):
                    await self._handle_control(conn, conn.queue.popleft())
                    did = True
            if self._stopping:
                return True
            # Implicit stream open: a submit reaching its queue head
            # declares the connection a submitter.
            for conn in self._conns:
                if conn.queue and conn.queue[0].get("op") == "submit":
                    conn.stream_open = True
            open_conns = [c for c in self._conns if c.stream_open]
            heads = [
                c
                for c in open_conns
                if c.queue and c.queue[0].get("op") == "submit"
            ]
            if open_conns and len(heads) == len(open_conns):
                # Coalesce: keep popping the smallest head while every
                # open stream still has a submit at its head — exactly
                # the run of submissions the serial loop would dispatch
                # back to back, in the identical merged order.  A heap
                # over the heads makes each pop O(log clients); the index
                # tie-breaker can never decide a winner ((arrival,
                # task_id) keys are unique) — it only keeps the heap from
                # ever comparing two _Connection objects.
                merge: list[tuple[float, int, int, _Connection]] = []
                for index, conn in enumerate(heads):
                    task = conn.queue[0]["task"]
                    merge.append((task.arrival, task.task_id, index, conn))
                heapq.heapify(merge)
                batch: list[tuple[_Connection, dict[str, Any]]] = []
                while True:
                    _, _, index, conn = merge[0]
                    batch.append((conn, conn.queue.popleft()))
                    head = conn.queue[0] if conn.queue else None
                    if head is None or head.get("op") != "submit":
                        break
                    task = head["task"]
                    heapq.heapreplace(
                        merge, (task.arrival, task.task_id, index, conn)
                    )
                await self._handle_submit_batch(batch)
                did = True
            if not did:
                return progressed
            progressed = True
        return progressed

    def merged_metrics(self) -> dict[str, Any]:
        """One flat snapshot: backend simulation metrics plus the server's.

        This is what the ``metrics`` op returns and what the Prometheus
        endpoint renders — the backend's live registry (the same
        instruments an offline run snapshots onto its summary) merged
        with the server's request counters and latency histogram.
        """
        return merge_snapshots(
            [
                self.backend.metrics(),
                self.obs.registry.snapshot(include_wall=True),
            ]
        )

    def _finish_request(self, op: str, started: float) -> None:
        """Count one handled request and record its wall-clock latency."""
        counter = self._op_counters.get(op)
        if counter is None:
            counter = self.obs.registry.counter(
                "serve_requests_total",
                "Requests handled, by operation.",
                labels={"op": op},
            )
            self._op_counters[op] = counter
        counter.inc()
        self._latency.observe(perf_counter() - started)

    async def _handle_submit_batch(
        self, batch: list[tuple[_Connection, dict[str, Any]]]
    ) -> None:
        """Run one coalesced run of merged submissions through the backend.

        The batch is already in merged ``(arrival, task_id)`` order; the
        backend applies each submission with the identical per-task step
        serial dispatch used, so decisions are unchanged.  Responses are
        buffered per connection and drained once per connection — the
        other half of the coalescing win.
        """
        started = perf_counter()
        tracer = self.obs.tracer
        self._trace_clock += 1
        tasks = [request["task"] for _conn, request in batch]
        if tracer is None:
            results = self.backend.submit_many(tasks)
        else:
            with tracer.span(
                "serve.submit_batch",
                "serve",
                float(self._trace_clock),
                size=len(batch),
                first_task=tasks[0].task_id,
            ):
                results = self.backend.submit_many(tasks)
        self._batch_sizes.observe(float(len(batch)))
        pending: list[_Connection] = []
        for (conn, request), result in zip(batch, results):
            seq = request.get("seq")
            self._finish_request("submit", started)
            if isinstance(result, ReproError):
                message: dict[str, Any] = {
                    "seq": seq,
                    "ok": False,
                    "error": str(result),
                    "error_type": type(result).__name__,
                }
            else:
                message = {"seq": seq, "ok": True, **result}
            self._write(conn, message)
            if conn not in pending:
                pending.append(conn)
        for conn in pending:
            await self._flush(conn)

    async def _handle_control(
        self, conn: _Connection, request: dict[str, Any]
    ) -> None:
        """Handle one non-submit request at a queue head."""
        seq = request.get("seq")
        op = request.get("op")
        started = perf_counter()
        tracer = self.obs.tracer
        self._trace_clock += 1
        span = None
        if tracer is not None:
            span = tracer.span(
                "serve.control", "serve", float(self._trace_clock), op=op, seq=seq
            )
            span.__enter__()
        try:
            if op == "hello":
                wanted = request.get("codec")
                if wanted in available_codecs():
                    conn.codec = wanted
                await self._send(
                    conn,
                    {
                        "seq": seq,
                        "ok": True,
                        "protocol": PROTOCOL_VERSION,
                        "codec": conn.codec,
                        "codecs": list(available_codecs()),
                        "server": self.backend.describe(),
                    },
                )
            elif op == "stream_open":
                conn.stream_open = True
                await self._send(conn, {"seq": seq, "ok": True})
            elif op == "stream_end":
                conn.stream_open = False
                await self._send(conn, {"seq": seq, "ok": True})
            elif op == "probe":
                result = self.backend.probe(decode_task(request.get("task", {})))
                await self._send(conn, {"seq": seq, "ok": True, **result})
            elif op == "status":
                task_id = request.get("task_id")
                status = (
                    self.backend.snapshot()
                    if task_id is None
                    else self.backend.task_status(int(task_id))
                )
                await self._send(conn, {"seq": seq, "ok": True, "status": status})
            elif op == "cancel":
                cancelled = self.backend.cancel(int(request["task_id"]))
                await self._send(
                    conn, {"seq": seq, "ok": True, "cancelled": cancelled}
                )
            elif op == "finalize":
                open_streams = sum(1 for c in self._conns if c.stream_open)
                if open_streams:
                    raise InvalidParameterError(
                        f"cannot finalize with {open_streams} stream(s) still "
                        "open; every submitter must stream_end first"
                    )
                result = self.backend.finalize()
                await self._send(
                    conn, {"seq": seq, "ok": True, "result": result}
                )
                if self.once:
                    self.request_stop()
            elif op == "metrics":
                await self._send(
                    conn,
                    {"seq": seq, "ok": True, "metrics": self.merged_metrics()},
                )
            elif op == "shutdown":
                await self._send(conn, {"seq": seq, "ok": True})
                self.request_stop()
            else:
                raise InvalidParameterError(f"unknown op {op!r}")
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            await self._send_error(conn, seq, exc)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
            self._finish_request(str(op), started)

    async def _send_error(
        self, conn: _Connection, seq: Any, exc: Exception
    ) -> None:
        """Report a failed request without dropping the connection."""
        await self._send(
            conn,
            {
                "seq": seq,
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            },
        )

    # -- metrics endpoint ---------------------------------------------------
    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one Prometheus scrape (one HTTP/1.0 response, then close).

        The handler runs on the same event loop as the dispatcher, so it
        reads the backend's registries between dispatch steps — never
        mid-submission.
        """
        try:
            while True:  # consume the request line + headers
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = render_prometheus(self.merged_metrics()).encode()
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer races
            pass
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    async def _shutdown(self) -> None:
        """Close every connection and the listening socket."""
        for conn in self._conns:
            conn.closed = True
            try:
                conn.writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._conns.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        self._stopped.set()


class BackgroundServer:
    """Run an :class:`AdmissionServer` on a daemon thread.

    The in-process harness the tests and the decisions/sec benchmark use:
    the server gets its own event loop on its own thread, the caller gets
    a bound address to point synchronous clients at, and ``stop()`` (or
    leaving the context manager) tears everything down::

        with BackgroundServer(backend) as bg:
            client = AdmissionClient(*bg.address)
            ...
    """

    def __init__(
        self,
        backend: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        obs: Observability | None = None,
        metrics_port: int | None = None,
    ) -> None:
        self._backend = backend
        self._host = host
        self._port = port
        self._obs = obs
        self._metrics_port = metrics_port
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: AdmissionServer | None = None
        self._startup_error: BaseException | None = None
        self.address: tuple[str, int] = ("", 0)
        #: Bound Prometheus endpoint address (set when ``metrics_port``
        #: was requested).
        self.metrics_address: tuple[str, int] | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "BackgroundServer":
        """Start the server thread and wait for the bound address."""
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise InvalidParameterError("background server failed to start")
        if self._startup_error is not None:
            raise InvalidParameterError(
                f"background server failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Stop the server and join its thread."""
        self.stop()

    def stop(self) -> None:
        """Request shutdown and wait for the server thread to finish."""
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_stop)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread.is_alive():
            self._thread.join(timeout=30.0)

    def _run(self) -> None:
        """Thread body: own event loop, serve until stopped."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup races
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        """Start the server, publish the address, serve until stopped."""
        self._loop = asyncio.get_running_loop()
        self._server = AdmissionServer(
            self._backend,
            host=self._host,
            port=self._port,
            obs=self._obs,
            metrics_port=self._metrics_port,
        )
        await self._server.start()
        self.address = self._server.address
        if self._metrics_port is not None:
            self.metrics_address = self._server.metrics_address
        self._ready.set()
        await self._server.wait_closed()
