"""Replay driver: stream a task list through a live server and verify it.

The loopback harness of :mod:`repro.serve`: :func:`replay_tasks` pushes
an arrival-ordered task list through an
:class:`~repro.serve.client.AdmissionClient` with a bounded pipeline
window, and :func:`loopback_diff` compares the server's ``finalize``
payload against an offline run of the same scenario — record by record,
counter by counter, float by float.  An empty diff *is* the headline
guarantee: the service added transport, batching and concurrency without
perturbing a single bit of the simulation.

``repro replay --server HOST:PORT --check-offline`` is the CLI face of
this module; the CI smoke step replays ``examples/sample_arrivals.csv``
against a freshly started ``repro serve`` and fails on any diff line.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Sequence

import numpy as np

from repro.core.task import DivisibleTask
from repro.fleet.sim import FleetOutput
from repro.serve.client import AdmissionClient
from repro.serve.protocol import decode_record, decode_stats, encode_output
from repro.sim.cluster_sim import SimulationOutput

__all__ = ["loopback_diff", "replay_tasks"]


def replay_tasks(
    client: AdmissionClient,
    tasks: Sequence[DivisibleTask],
    *,
    window: int = 64,
    end_stream: bool = True,
    latencies: list[float] | None = None,
) -> list[dict[str, Any]]:
    """Stream ``tasks`` through ``client``; return the decisions in order.

    Opens the client's stream, keeps at most ``window`` submissions in
    flight (pipelining hides the request/response round trip while
    keeping memory bounded), resolves every future, and ends the stream
    (set ``end_stream=False`` to keep the barrier held, e.g. between
    shards).  Decisions come back in submission order, one dict per task.

    Pass a list as ``latencies`` to additionally record each decision's
    client-observed wall-clock latency in seconds (submit to resolved
    response, pipeline wait included) — one entry per task, in
    submission order; ``repro replay`` reports the p50/p95/p99 of these.
    """
    if window < 1:
        window = 1
    client.open_stream()
    decisions: list[dict[str, Any]] = []
    pending: deque = deque()

    def resolve() -> None:
        future, started = pending.popleft()
        decisions.append(future.result())
        if latencies is not None:
            latencies.append(perf_counter() - started)

    try:
        for task in tasks:
            pending.append((client.submit(task), perf_counter()))
            while len(pending) >= window:
                resolve()
        while pending:
            resolve()
    finally:
        if end_stream:
            client.end_stream()
    return decisions


def _diff_member(
    label: str, payload: dict[str, Any], output: SimulationOutput
) -> list[str]:
    """Problem strings where one member payload differs from one output."""
    problems: list[str] = []
    expected = encode_output(output)
    if payload.get("algorithm") != expected["algorithm"]:
        problems.append(
            f"{label}: algorithm {payload.get('algorithm')!r} != "
            f"{expected['algorithm']!r}"
        )
    if decode_stats(payload.get("stats", {})) != output.stats:
        problems.append(
            f"{label}: stats {payload.get('stats')} != {expected['stats']}"
        )
    got_records = payload.get("records", [])
    if len(got_records) != len(expected["records"]):
        problems.append(
            f"{label}: {len(got_records)} records != "
            f"{len(expected['records'])} offline"
        )
    else:
        offline = [output.records[tid] for tid in sorted(output.records)]
        for obj, want_obj, record in zip(
            got_records, expected["records"], offline
        ):
            if decode_record(obj) != record:
                problems.append(
                    f"{label}: record {record.task.task_id} differs: "
                    f"{obj} != {want_obj}"
                )
                break
    for key in ("node_busy_time", "node_allocated_time"):
        got = np.asarray(payload.get(key, []), dtype=np.float64)
        want = np.asarray(expected[key], dtype=np.float64)
        if got.shape != want.shape or not np.array_equal(got, want):
            problems.append(f"{label}: {key} differs from the offline run")
    if payload.get("validation") != expected["validation"]:
        problems.append(
            f"{label}: validation {payload.get('validation')!r} != "
            f"{expected['validation']!r}"
        )
    return problems


def loopback_diff(
    payload: dict[str, Any], offline: SimulationOutput | FleetOutput
) -> list[str]:
    """Compare a server ``finalize`` payload with an offline run.

    Returns one problem string per difference; an empty list means the
    server-mediated replay was bit-identical to the offline simulation.
    Accepts either backend kind: a cluster payload against a
    :class:`SimulationOutput`, a fleet payload against a
    :class:`FleetOutput` (which also checks the routing assignments).
    """
    kind = payload.get("kind")
    if isinstance(offline, FleetOutput):
        if kind != "fleet":
            return [f"payload kind {kind!r} but offline run is a fleet"]
        problems: list[str] = []
        if list(payload.get("assignments", [])) != list(offline.assignments):
            problems.append("assignments differ from the offline run")
        member_payloads = payload.get("outputs", [])
        if len(member_payloads) != len(offline.outputs):
            problems.append(
                f"{len(member_payloads)} member outputs != "
                f"{len(offline.outputs)} offline"
            )
            return problems
        for i, (member, output) in enumerate(
            zip(member_payloads, offline.outputs)
        ):
            problems.extend(_diff_member(f"member {i}", member, output))
        return problems
    if kind != "cluster":
        return [f"payload kind {kind!r} but offline run is a single cluster"]
    return _diff_member("cluster", payload, offline)
