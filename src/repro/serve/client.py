"""Synchronous typed client for the live admission service.

:class:`AdmissionClient` is the blocking counterpart of the asyncio
server: it speaks the framed protocol of :mod:`repro.serve.protocol`
over one TCP connection and exposes each operation as a method.  The
two submission-shaped operations (``submit`` / ``probe``) return a
:class:`ReplyFuture` instead of blocking, so a replay driver can keep a
window of requests in flight — essential under the server's watermark
merge, where a submitter that stops sending stalls the other streams::

    with AdmissionClient(host, port) as client:
        client.open_stream()
        futures = [client.submit(t) for t in tasks]
        decisions = [f.result() for f in futures]
        client.end_stream()
        payload = client.finalize()

Responses are matched to requests by the ``seq`` correlation id; the
server answers a connection's requests in FIFO order, so resolving a
future only ever reads responses that earlier futures also need.  All
methods raise :class:`~repro.serve.protocol.ServiceProtocolError` when
the server reports a failure (the server-side error message and type are
preserved in the exception text).
"""

from __future__ import annotations

import socket
from typing import Any

from repro.core.task import DivisibleTask
from repro.serve.protocol import (
    CODEC_JSON,
    ServiceProtocolError,
    encode_frame,
    encode_task,
    read_frame,
)

__all__ = ["AdmissionClient", "ReplyFuture"]


class ReplyFuture:
    """A pending response: promise-style handle on one in-flight request.

    ``result()`` blocks until the server's response for this request's
    ``seq`` arrives (draining — and caching — any earlier responses on
    the way), then returns the response dict or raises
    :class:`ServiceProtocolError` if the server reported a failure.
    """

    __slots__ = ("_client", "_seq", "_response")

    def __init__(self, client: "AdmissionClient", seq: int) -> None:
        self._client = client
        self._seq = seq
        self._response: dict[str, Any] | None = None

    @property
    def seq(self) -> int:
        """The request's correlation id."""
        return self._seq

    def done(self) -> bool:
        """Whether the response has already been received (non-blocking)."""
        return self._response is not None or self._client._peek(self._seq)

    def result(self) -> dict[str, Any]:
        """Block for the response; raise on a server-reported failure."""
        if self._response is None:
            self._response = self._client._wait_for(self._seq)
        response = self._response
        if not response.get("ok", False):
            raise ServiceProtocolError(
                f"server error ({response.get('error_type', 'unknown')}): "
                f"{response.get('error', 'no detail')}"
            )
        return response


class AdmissionClient:
    """Blocking TCP client for one admission-service connection.

    Parameters
    ----------
    host / port:
        The server's bound address.
    codec:
        Wire codec for this client's request frames, negotiated with the
        server for its responses on :meth:`connect` (``"json"`` default;
        ``"msgpack"`` when the optional dependency is installed on both
        sides).
    timeout:
        Socket timeout in seconds for connect and each blocking read.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        codec: str = CODEC_JSON,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.codec = codec
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        self._next_seq = 0
        self._responses: dict[int, dict[str, Any]] = {}
        self.server_info: dict[str, Any] | None = None

    # -- lifecycle ----------------------------------------------------------
    def connect(self) -> dict[str, Any]:
        """Open the connection and perform the ``hello`` handshake.

        Returns the server's hello payload (protocol version, codecs,
        backend description), also cached as :attr:`server_info`.  The
        server echoes the codec it will answer in; if it cannot speak the
        requested one, this client falls back to JSON for its own frames
        too.
        """
        if self._sock is not None:
            raise ServiceProtocolError("client is already connected")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._rfile = self._sock.makefile("rb")
        hello = self._request({"op": "hello", "codec": self.codec}).result()
        if hello.get("codec") != self.codec:
            self.codec = str(hello.get("codec", CODEC_JSON))
        self.server_info = hello
        return hello

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock = None

    def __enter__(self) -> "AdmissionClient":
        """Context entry: connect (with handshake) and return self."""
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context exit: close the connection."""
        self.close()

    # -- plumbing -----------------------------------------------------------
    def _request(self, message: dict[str, Any]) -> ReplyFuture:
        """Send one request frame and return its pending future."""
        if self._sock is None:
            raise ServiceProtocolError("client is not connected")
        seq = self._next_seq
        self._next_seq += 1
        message = {**message, "seq": seq}
        self._sock.sendall(encode_frame(message, self.codec))
        return ReplyFuture(self, seq)

    def _peek(self, seq: int) -> bool:
        """Whether ``seq``'s response is already buffered."""
        return seq in self._responses

    def _wait_for(self, seq: int) -> dict[str, Any]:
        """Read frames until ``seq``'s response arrives; return it."""
        while seq not in self._responses:
            message = read_frame(self._rfile)
            if message is None:
                raise ServiceProtocolError(
                    "server closed the connection while responses were pending"
                )
            key = message.get("seq")
            if key is None:
                # Out-of-band error (e.g. a malformed frame report): with
                # no seq to pair it to, surface it on the caller.
                raise ServiceProtocolError(
                    f"server error ({message.get('error_type', 'unknown')}): "
                    f"{message.get('error', 'no detail')}"
                )
            self._responses[int(key)] = message
        return self._responses.pop(seq)

    # -- operations ---------------------------------------------------------
    def open_stream(self) -> None:
        """Declare this connection a submitter (joins the merge barrier)."""
        self._request({"op": "stream_open"}).result()

    def end_stream(self) -> None:
        """Leave the merge barrier (other submitters stop waiting on us)."""
        self._request({"op": "stream_end"}).result()

    def submit(self, task: DivisibleTask) -> ReplyFuture:
        """Submit one task for admission; resolves to the decision dict.

        The resolved dict carries ``accepted``, ``est_completion`` and
        ``member`` (the routed member index, ``None`` on a single
        cluster).  Pipelineable: keep several futures in flight and
        resolve them in submission order.
        """
        return self._request({"op": "submit", "task": encode_task(task)})

    def probe(self, task: DivisibleTask) -> ReplyFuture:
        """Advisory what-if admission; resolves like :meth:`submit`.

        Commits nothing server-side.  With a stochastic partitioner
        (User-Split) each probe consumes an RNG draw, perturbing replay
        determinism — see ``docs/serving.md``.
        """
        return self._request({"op": "probe", "task": encode_task(task)})

    def status(self, task_id: int | None = None) -> dict[str, Any]:
        """Live status: one task's record, or the whole-backend snapshot."""
        message: dict[str, Any] = {"op": "status"}
        if task_id is not None:
            message["task_id"] = task_id
        return self._request(message).result()["status"]

    def cancel(self, task_id: int) -> bool:
        """Withdraw a waiting task; ``False`` when it is too late."""
        return bool(self._request({"op": "cancel", "task_id": task_id}).result()[
            "cancelled"
        ])

    def metrics(self) -> dict[str, Any]:
        """The server's merged :mod:`repro.obs` metrics snapshot.

        Backend simulation instruments (the same registry an offline run
        snapshots onto its summary) merged with the server's own request
        counters and wall-clock latency histogram.
        """
        return self._request({"op": "metrics"}).result()["metrics"]

    def finalize(self) -> dict[str, Any]:
        """Drain the simulation; returns the full output payload.

        Fails while any stream (on any connection) is still open.
        """
        return self._request({"op": "finalize"}).result()["result"]

    def shutdown(self) -> None:
        """Ask the server to stop (it responds, then closes everything)."""
        self._request({"op": "shutdown"}).result()
