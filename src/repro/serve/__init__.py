"""Live admission-control service over the simulated schedulers.

The paper's admission controller is an *online* algorithm — every other
layer of this repo replays recorded task sets through it offline.  This
package puts the same schedulers behind a socket so admission decisions
can be requested live, while preserving the repo's central property:
**a server-mediated replay is bit-identical to the offline simulation**.

Layers (each its own module):

* :mod:`~repro.serve.protocol` — framed JSON/msgpack wire format and the
  exact task/record/stats codecs;
* :mod:`~repro.serve.backend` — the service surface over one
  :class:`~repro.sim.cluster_sim.ClusterSimulation` or one
  :class:`~repro.fleet.sim.FleetSimulation`;
* :mod:`~repro.serve.server` — asyncio server with the deterministic
  watermark merge over concurrent submitters;
* :mod:`~repro.serve.client` — blocking typed client with promise-style
  futures for pipelined submission;
* :mod:`~repro.serve.replay` — trace replay driver and the loopback
  differ backing the guarantee above.

Protocol, batching semantics and the loopback guarantee are specified in
``docs/serving.md``; ``repro serve`` / ``repro replay`` are the CLI
entry points.
"""

from repro.serve.backend import ClusterBackend, FleetBackend, make_backend
from repro.serve.client import AdmissionClient, ReplyFuture
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ServiceProtocolError,
    available_codecs,
)
from repro.serve.replay import loopback_diff, replay_tasks
from repro.serve.server import AdmissionServer, BackgroundServer

__all__ = [
    "AdmissionClient",
    "AdmissionServer",
    "BackgroundServer",
    "ClusterBackend",
    "FleetBackend",
    "PROTOCOL_VERSION",
    "ReplyFuture",
    "ServiceProtocolError",
    "available_codecs",
    "loopback_diff",
    "make_backend",
    "replay_tasks",
]
