"""Multi-cluster fleet layer: routed sharding of one workload stream.

The paper schedules one real-time divisible-load stream on a *single*
cluster whose nodes free up at different times.  This package scales the
same machinery out one level: a :class:`FleetScenario` describes several
member clusters behind an ingress router, a pluggable
:class:`~repro.fleet.routing.RoutingPolicy` decides which cluster's head
node receives each arrival, and a :class:`FleetSimulation` drives the
member clusters' independent discrete-event simulations in lockstep over
the shared seeded stream.

Layer map::

    FleetScenario  = [ClusterProfile, ...] + WorkloadModel + policy + seed
    FleetSimulation = N × ClusterSimulation + RoutingPolicy
    FleetOutput     = per-cluster SimulationOutput + pooled MetricsSummary

Fleet points ride the existing batch engine: put a ``FleetScenario`` in a
:class:`~repro.experiments.batch.RunSpec` and the
:class:`~repro.experiments.batch.BatchRunner` fans fleet runs out over
workers exactly like single-cluster runs;
:func:`~repro.fleet.sweep.run_fleet_sweep` builds policy × cluster-count
grids on top.  The routing registry also carries the *learning* policies
from :mod:`repro.learn` (``epsilon-greedy`` / ``ucb1`` / ``thompson``),
which consume per-task outcome feedback the simulation reports back.
See ``docs/fleet.md`` and ``docs/adaptive-routing.md`` for the guides.
"""

from __future__ import annotations

from repro.fleet.routing import (
    ROUTING_POLICIES,
    ClusterView,
    EarliestFinish,
    LeastLoaded,
    RandomWeighted,
    RoundRobin,
    RoutingPolicy,
    make_routing_policy,
    routing_policy_names,
    static_routing_policy_names,
)
from repro.fleet.scenario import FleetScenario, fleet_member_seed
from repro.fleet.sim import FleetOutput, FleetSimulation, simulate_fleet
from repro.fleet.sweep import FleetSweepResult, run_fleet_sweep

__all__ = [
    "ROUTING_POLICIES",
    "ClusterView",
    "EarliestFinish",
    "FleetOutput",
    "FleetScenario",
    "FleetSimulation",
    "FleetSweepResult",
    "LeastLoaded",
    "RandomWeighted",
    "RoundRobin",
    "RoutingPolicy",
    "fleet_member_seed",
    "make_routing_policy",
    "routing_policy_names",
    "run_fleet_sweep",
    "simulate_fleet",
    "static_routing_policy_names",
]
