"""Fleet experiment descriptions: one workload stream, many clusters.

A :class:`FleetScenario` is the multi-cluster analogue of a
:class:`~repro.workload.scenario.Scenario`::

    FleetScenario = [ClusterProfile, ...] + WorkloadModel + routing policy
                    + horizon + seed

One *shared* arrival stream — generated exactly like a single-cluster
scenario's, from the same seed-sequence discipline — is sharded across the
member clusters by a pluggable :class:`~repro.fleet.routing.RoutingPolicy`.
Each member cluster runs its own independent head-node scheduler (its own
:class:`~repro.sim.cluster_sim.ClusterSimulation`), so the fleet models a
federation of autonomous clusters behind one ingress router rather than one
giant cluster.

Reproducibility contract
------------------------
All randomness flows from ``FleetScenario.seed``:

* the shared stream uses the *identical* child-stream split as a
  single-cluster :class:`Scenario` with the same seed (streams 0-2), so a
  1-cluster fleet replays the exact same task set;
* member cluster ``0`` draws its algorithm randomness from the same stream
  a single-cluster run would (stream 3) — the bit-for-bit equivalence
  anchor — while members ``i >= 1`` use well-spread derived seeds;
* the routing policy's randomness (``random-weighted``) comes from one
  more derived stream, independent of everything above.

Scenarios are frozen and picklable, so fleet points fan out over the
parallel :class:`~repro.experiments.batch.BatchRunner` exactly like
single-cluster points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.faults import FAULT_SEED_SALT, FaultPlan, FaultProcess
from repro.workload.scenario import Scenario, WorkloadModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.learn.config import LearnConfig

__all__ = ["FleetScenario", "fleet_member_seed"]

#: Salt separating fleet-derived seed material from replication seeds.
_MEMBER_SALT = 0x666C6565  # "flee"
_ROUTING_SALT = 0x726F7574  # "rout"
_LEARN_SALT = 0x6C65726E  # "lern"


def fleet_member_seed(base_seed: int, member: int) -> int:
    """Deterministic, well-spread seed for member cluster ``member``.

    Member ``0`` keeps ``base_seed`` unchanged — that is what makes a
    1-cluster fleet bit-identical to the corresponding single-cluster
    run.  Higher members derive through a salted
    :class:`numpy.random.SeedSequence` so nearby bases or indices do not
    produce correlated algorithm streams.
    """
    if member == 0:
        return int(base_seed)
    ss = np.random.SeedSequence([int(base_seed), _MEMBER_SALT, int(member)])
    return int(ss.generate_state(1, dtype=np.uint32)[0])


@dataclass(frozen=True, slots=True)
class FleetScenario:
    """One fully specified fleet experiment.

    Parameters
    ----------
    clusters:
        Ordered member cluster profiles (at least one).  Cluster ``0`` is
        the *reference* cluster: deadline models that consult a cluster
        (``UniformDeadlines``/``ProportionalDeadlines``) calibrate against
        it, exactly as in a single-cluster scenario.
    workload:
        The shared arrival + size + deadline stream feeding the router.
    total_time:
        Arrival horizon (accepted work drains past it, as in
        :class:`~repro.sim.cluster_sim.ClusterSimulation`).
    seed:
        Root seed of the run (stream split documented in the module
        docstring).
    policy:
        Routing policy name from
        :data:`repro.fleet.routing.ROUTING_POLICIES` (static or
        learning — e.g. ``"epsilon-greedy"``).
    name:
        Free-form label carried into batch records and exports.
    learn:
        Learning hyper-parameters
        (:class:`~repro.learn.config.LearnConfig`) consumed when
        ``policy`` names a bandit; ``None`` = that bandit's defaults.
        Ignored by static policies.
    member_algorithms:
        Optional per-member scheduling-algorithm overrides: one entry per
        cluster, ``None`` meaning "use the fleet-wide algorithm".  Lets a
        fleet mix e.g. EDF-DLT and FIFO-OPR members.
    member_eager_release:
        Optional per-member ``eager_release`` overrides, same shape and
        ``None``-defaulting as ``member_algorithms``.
    faults:
        Optional fault injection: an explicit
        :class:`~repro.faults.model.FaultPlan` (events target members via
        their ``member`` field; ``None`` = member 0) or a seeded
        :class:`~repro.faults.process.FaultProcess` recipe materialized
        once per run from ``SeedSequence([seed, FAULT_SEED_SALT])``.
        Resolved by :meth:`fault_plan`; each member simulation receives
        its member-local sub-plan.
    """

    clusters: tuple[ClusterProfile, ...]
    workload: WorkloadModel
    total_time: float
    seed: int
    policy: str = "round-robin"
    name: str = ""
    learn: "LearnConfig | None" = None
    member_algorithms: tuple[str | None, ...] | None = None
    member_eager_release: tuple[bool | None, ...] | None = None
    faults: FaultPlan | FaultProcess | None = None

    def __post_init__(self) -> None:
        # Imported here: routing imports this module for type hints.
        from repro.fleet.routing import validate_routing_policy

        if not self.clusters:
            raise InvalidParameterError("a fleet needs at least one cluster")
        object.__setattr__(self, "clusters", tuple(self.clusters))
        for c in self.clusters:
            if not isinstance(c, ClusterProfile):
                raise InvalidParameterError(
                    f"every fleet member must be a ClusterProfile, got {c!r}"
                )
        if not isinstance(self.workload, WorkloadModel):
            raise InvalidParameterError(
                f"workload must be a WorkloadModel, got {self.workload!r}"
            )
        if not math.isfinite(self.total_time) or self.total_time <= 0:
            raise InvalidParameterError(
                f"total_time must be > 0, got {self.total_time}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise InvalidParameterError(f"seed must be an int >= 0, got {self.seed}")
        validate_routing_policy(self.policy)
        self._validate_learn()
        self._validate_member_overrides()
        if self.faults is not None:
            if not isinstance(self.faults, (FaultPlan, FaultProcess)):
                raise InvalidParameterError(
                    "faults must be a FaultPlan or FaultProcess, got "
                    f"{self.faults!r}"
                )
            if (
                isinstance(self.faults, FaultPlan)
                and self.faults
                and self.faults.max_member() >= self.n_clusters
            ):
                raise InvalidParameterError(
                    f"fault plan targets member {self.faults.max_member()} "
                    f"of a {self.n_clusters}-cluster fleet"
                )

    def _validate_learn(self) -> None:
        """Check the ``learn`` field is a LearnConfig (or None)."""
        if self.learn is None:
            return
        from repro.learn.config import LearnConfig

        if not isinstance(self.learn, LearnConfig):
            raise InvalidParameterError(
                f"learn must be a LearnConfig or None, got {self.learn!r}"
            )

    def _validate_member_overrides(self) -> None:
        """Normalize and validate the per-member override tuples."""
        from repro.core.algorithms import ALGORITHMS

        if self.member_algorithms is not None:
            algos = tuple(self.member_algorithms)
            object.__setattr__(self, "member_algorithms", algos)
            if len(algos) != self.n_clusters:
                raise InvalidParameterError(
                    f"member_algorithms must have one entry per cluster "
                    f"({self.n_clusters}), got {len(algos)}"
                )
            for a in algos:
                if a is not None and a not in ALGORITHMS:
                    raise InvalidParameterError(
                        f"unknown member algorithm {a!r}; "
                        f"valid: {', '.join(sorted(ALGORITHMS))}"
                    )
        if self.member_eager_release is not None:
            eager = tuple(self.member_eager_release)
            object.__setattr__(self, "member_eager_release", eager)
            if len(eager) != self.n_clusters:
                raise InvalidParameterError(
                    f"member_eager_release must have one entry per cluster "
                    f"({self.n_clusters}), got {len(eager)}"
                )
            for e in eager:
                if e is not None and not isinstance(e, bool):
                    raise InvalidParameterError(
                        f"member_eager_release entries must be bool or None, "
                        f"got {e!r}"
                    )

    # -- constructors ------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        *,
        n_clusters: int,
        system_load: float,
        total_time: float,
        seed: int,
        policy: str = "round-robin",
        nodes: int = 16,
        cms: float = 1.0,
        cps: float = 100.0,
        avg_sigma: float = 200.0,
        dc_ratio: float = 2.0,
        speed_spread: float = 0.0,
        cluster_spread: float = 0.0,
        name: str = "fleet",
        learn: "LearnConfig | None" = None,
    ) -> "FleetScenario":
        """A fleet of ``n_clusters`` paper-baseline-shaped clusters.

        ``system_load`` is the *per-cluster* offered load: the shared
        Poisson stream runs at ``n_clusters`` times the single-cluster
        rate, so each member sees the paper's load when routing spreads
        tasks evenly.  ``speed_spread`` applies *within* each cluster
        (per-node heterogeneity, :meth:`ClusterProfile.with_spread`);
        ``cluster_spread`` applies *across* clusters — member ``j``'s
        nominal processing cost spans ``[cps·(1-s/2), cps·(1+s/2)]``
        linearly (cluster 0 fastest), which is the axis where routing
        policy choice starts to matter.
        """
        if not isinstance(n_clusters, int) or n_clusters < 1:
            raise InvalidParameterError(
                f"n_clusters must be an int >= 1, got {n_clusters}"
            )
        if not math.isfinite(cluster_spread) or not 0.0 <= cluster_spread < 2.0:
            raise InvalidParameterError(
                f"cluster_spread must be in [0, 2), got {cluster_spread}"
            )
        if not math.isfinite(system_load) or system_load <= 0:
            raise InvalidParameterError(
                f"system_load must be > 0, got {system_load}"
            )

        members: list[ClusterProfile] = []
        for j in range(n_clusters):
            if cluster_spread == 0.0 or n_clusters == 1:
                nominal = cps
            else:
                lo = cps * (1.0 - cluster_spread / 2.0)
                nominal = lo + cps * cluster_spread * j / (n_clusters - 1)
            members.append(
                ClusterProfile.with_spread(
                    nodes, cms, nominal, speed_spread=speed_spread
                )
            )
        reference = members[0]
        workload = WorkloadModel.paper(
            system_load=system_load * n_clusters,
            avg_sigma=avg_sigma,
            dc_ratio=dc_ratio,
            cluster=reference,
        )
        return cls(
            clusters=tuple(members),
            workload=workload,
            total_time=total_time,
            seed=seed,
            policy=policy,
            name=name,
            learn=learn,
        )

    @classmethod
    def from_scenarios(
        cls,
        members: "tuple[Scenario, ...] | list[Scenario]",
        *,
        policy: str = "round-robin",
        name: str = "",
    ) -> "FleetScenario":
        """Build a fleet from existing single-cluster scenarios.

        The first member supplies the shared workload stream, horizon and
        seed (its cluster becomes the reference cluster); the remaining
        members contribute only their cluster profiles.  This is the
        one-line upgrade path from a `Scenario` to a fleet:
        ``FleetScenario.from_scenarios([s, s, s], policy="least-loaded")``.
        """
        members = tuple(members)
        if not members:
            raise InvalidParameterError("from_scenarios needs at least one member")
        for m in members:
            if not isinstance(m, Scenario):
                raise InvalidParameterError(
                    f"every member must be a Scenario, got {m!r}"
                )
        head = members[0]
        return cls(
            clusters=tuple(m.cluster for m in members),
            workload=head.workload,
            total_time=head.total_time,
            seed=head.seed,
            policy=policy,
            name=name or head.name,
        )

    # -- shape -------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        """Number of member clusters."""
        return len(self.clusters)

    @property
    def total_nodes(self) -> int:
        """Total processing nodes across the fleet."""
        return sum(c.nodes for c in self.clusters)

    # -- derived views -----------------------------------------------------
    def with_policy(self, policy: str) -> "FleetScenario":
        """The same fleet under a different routing policy."""
        return replace(self, policy=policy)

    def with_seed(self, seed: int) -> "FleetScenario":
        """The same fleet under a different seed."""
        return replace(self, seed=seed)

    def with_learn(self, learn: "LearnConfig | None") -> "FleetScenario":
        """The same fleet under different learning hyper-parameters."""
        return replace(self, learn=learn)

    def with_faults(
        self, faults: "FaultPlan | FaultProcess | None"
    ) -> "FleetScenario":
        """The same fleet under a different fault plan / process."""
        return replace(self, faults=faults)

    def with_member_overrides(
        self,
        *,
        algorithms: "tuple[str | None, ...] | list[str | None] | None" = None,
        eager_release: "tuple[bool | None, ...] | list[bool | None] | None" = None,
    ) -> "FleetScenario":
        """The same fleet with per-member algorithm/eager overrides set."""
        return replace(
            self,
            member_algorithms=tuple(algorithms) if algorithms is not None else None,
            member_eager_release=(
                tuple(eager_release) if eager_release is not None else None
            ),
        )

    def member_algorithm(self, index: int, default: str) -> str:
        """Member ``index``'s scheduling algorithm (override or default)."""
        if self.member_algorithms is None:
            return default
        override = self.member_algorithms[index]
        return default if override is None else override

    def member_eager(self, index: int, default: bool) -> bool:
        """Member ``index``'s ``eager_release`` flag (override or default)."""
        if self.member_eager_release is None:
            return default
        override = self.member_eager_release[index]
        return default if override is None else override

    def stream_scenario(self) -> Scenario:
        """The shared arrival stream as a single-cluster scenario.

        Uses the reference cluster (member 0), so its
        :meth:`~repro.workload.scenario.Scenario.generate_tasks` output is
        bit-identical to the corresponding single-cluster run — the whole
        fleet shards exactly that task list.
        """
        return Scenario(
            cluster=self.clusters[0],
            workload=self.workload,
            total_time=self.total_time,
            seed=self.seed,
            name=self.name,
        )

    def member_scenario(self, index: int) -> Scenario:
        """Member ``index``'s view as a single-cluster scenario.

        Carries the member's algorithm seed
        (:func:`fleet_member_seed`) — member 0 keeps the fleet seed, so
        its algorithm RNG stream matches the single-cluster run exactly.
        """
        if not 0 <= index < self.n_clusters:
            raise InvalidParameterError(
                f"member index {index} out of range [0, {self.n_clusters})"
            )
        plan = self.fault_plan()
        return Scenario(
            cluster=self.clusters[index],
            workload=self.workload,
            total_time=self.total_time,
            seed=fleet_member_seed(self.seed, index),
            name=f"{self.name}/cluster-{index}" if self.name else f"cluster-{index}",
            faults=plan.for_member(index) if plan is not None else None,
        )

    def fault_rng(self) -> np.random.Generator:
        """The RNG stream reserved for fault materialization.

        Salted with the same constant a single-cluster scenario uses
        (``SeedSequence([seed, FAULT_SEED_SALT])``), independent of the
        workload / algorithm / routing / learning streams: attaching a
        fault process never perturbs the task set or the routing draws.
        """
        return np.random.default_rng(
            np.random.SeedSequence([int(self.seed), FAULT_SEED_SALT])
        )

    def fault_plan(self) -> "FaultPlan | None":
        """The resolved fleet-wide fault plan for this run, or ``None``.

        An explicit plan passes through unchanged; a
        :class:`~repro.faults.process.FaultProcess` is materialized
        against :meth:`fault_rng` and the fleet's member/node shape.
        Per-member sub-plans come from
        :meth:`~repro.faults.model.FaultPlan.for_member` (and ride each
        :meth:`member_scenario`).
        """
        if self.faults is None:
            return None
        if isinstance(self.faults, FaultPlan):
            return self.faults
        return self.faults.materialize(
            self.fault_rng(),
            horizon=self.total_time,
            member_nodes=tuple(c.nodes for c in self.clusters),
        )

    def routing_rng(self) -> np.random.Generator:
        """The RNG stream reserved for routing-side randomness.

        Independent of the workload and algorithm streams, so swapping
        ``random-weighted`` in or out never perturbs the task set.
        """
        ss = np.random.SeedSequence([int(self.seed), _ROUTING_SALT])
        return np.random.default_rng(ss)

    def learning_rng(self) -> np.random.Generator:
        """The RNG stream reserved for learning-side randomness.

        Bandit policies draw their exploration randomness (ε-draws,
        posterior samples) from this dedicated stream — independent of
        the workload, algorithm and routing streams, so swapping a bandit
        in or out never perturbs the task set or a stochastic arm's
        routing draws.
        """
        ss = np.random.SeedSequence([int(self.seed), _LEARN_SALT])
        return np.random.default_rng(ss)

    def describe(self) -> dict[str, Any]:
        """A flat, JSON-friendly summary (used by batch exports).

        ``heterogeneous`` is 1 when any member is internally heterogeneous
        *or* the members differ from one another (a fleet of unequal
        uniform clusters is still a heterogeneous fleet).
        """
        heterogeneous = (
            any(not c.is_homogeneous for c in self.clusters)
            or len(set(self.clusters)) > 1
        )
        out: dict[str, Any] = {
            "name": self.name,
            "clusters": self.n_clusters,
            "nodes": self.total_nodes,
            "nodes_per_cluster": ",".join(str(c.nodes) for c in self.clusters),
            "policy": self.policy,
            "heterogeneous": int(heterogeneous),
            "arrivals": type(self.workload.arrivals).__name__,
            "sizes": type(self.workload.sizes).__name__,
            "deadlines": type(self.workload.deadlines).__name__,
            "total_time": self.total_time,
            "seed": self.seed,
        }
        if self.learn is not None:
            out.update(self.learn.describe())
        if self.member_algorithms is not None:
            out["member_algorithms"] = ",".join(
                a if a is not None else "-" for a in self.member_algorithms
            )
        if self.member_eager_release is not None:
            out["member_eager_release"] = ",".join(
                "-" if e is None else str(int(e))
                for e in self.member_eager_release
            )
        if self.faults is not None:
            out["faults"] = self.faults.describe_token()
        return out
