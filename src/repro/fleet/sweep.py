"""Fleet sweep driver: policy × cluster-count grids through the batch engine.

Fleet points are ordinary :class:`~repro.experiments.batch.RunSpec` rows —
a :class:`~repro.fleet.scenario.FleetScenario` in the ``scenario`` slot —
so one sweep flattens into a single :class:`BatchRunner` batch and fans
out over worker processes with bit-identical serial/parallel results,
exactly like the single-cluster panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.errors import InvalidParameterError
from repro.experiments.batch import BatchRunner, ResultSet, RunSpec
from repro.experiments.runner import replication_seed
from repro.fleet.routing import routing_policy_names
from repro.fleet.scenario import FleetScenario
from repro.metrics.collector import validate_metric
from repro.metrics.stats import ConfidenceInterval, mean_ci

if TYPE_CHECKING:  # pragma: no cover
    from repro.learn.config import LearnConfig

__all__ = ["FleetSweepResult", "run_fleet_sweep"]


@dataclass(frozen=True, slots=True)
class FleetSweepResult:
    """One policy × cluster-count sweep with replicated fleet points.

    ``table`` maps ``(policy, n_clusters)`` to the confidence interval of
    the swept metric; ``results`` keeps every raw
    :class:`~repro.experiments.batch.RunRecord` for custom slicing.
    """

    policies: tuple[str, ...]
    cluster_counts: tuple[int, ...]
    table: Mapping[tuple[str, int], ConfidenceInterval]
    metric: str
    results: ResultSet

    def ci(self, policy: str, n_clusters: int) -> ConfidenceInterval:
        """The metric's CI at one (policy, cluster-count) grid point."""
        try:
            return self.table[(policy, n_clusters)]
        except KeyError:
            raise InvalidParameterError(
                f"no grid point (policy={policy!r}, n_clusters={n_clusters})"
            ) from None

    def mean(self, policy: str, n_clusters: int) -> float:
        """The metric's mean at one (policy, cluster-count) grid point."""
        return self.ci(policy, n_clusters).mean

    def best_policy(self, n_clusters: int) -> str:
        """The policy with the lowest mean metric at one cluster count."""
        return min(self.policies, key=lambda p: self.mean(p, n_clusters))


def run_fleet_sweep(
    *,
    policies: Sequence[str] | None = None,
    cluster_counts: Sequence[int] = (4,),
    algorithm: str = "EDF-DLT",
    system_load: float = 0.6,
    nodes: int = 16,
    cms: float = 1.0,
    cps: float = 100.0,
    avg_sigma: float = 200.0,
    dc_ratio: float = 2.0,
    speed_spread: float = 0.0,
    cluster_spread: float = 0.0,
    replications: int = 3,
    total_time: float = 200_000.0,
    seed: int = 2007,
    metric: str = "reject_ratio",
    validate: bool = True,
    workers: int | None = None,
    workers_mode: str = "process",
    learn: "LearnConfig | None" = None,
) -> FleetSweepResult:
    """Sweep routing policies (× cluster counts) on uniform fleets.

    Every grid point builds :meth:`FleetScenario.uniform` with the same
    cluster parameters, so within one cluster count all policies shard the
    *identical* task stream at each replication (paired comparison);
    across cluster counts the stream rate scales with the fleet (the
    per-cluster offered load stays ``system_load``).  All runs flatten
    into one batch; ``workers`` fans them out.  ``policies`` may mix
    static and learning (bandit) policy names; ``learn`` supplies the
    hyper-parameters every learning policy in the grid runs with.
    """
    grid_policies = tuple(policies) if policies is not None else routing_policy_names()
    counts = tuple(int(k) for k in cluster_counts)
    if not grid_policies:
        raise InvalidParameterError("policies must be non-empty")
    if not counts:
        raise InvalidParameterError("cluster_counts must be non-empty")
    if replications < 1:
        raise InvalidParameterError(
            f"replications must be >= 1, got {replications}"
        )
    validate_metric(metric)

    specs: list[RunSpec] = []
    for ki, k in enumerate(counts):
        base = FleetScenario.uniform(
            n_clusters=k,
            system_load=system_load,
            total_time=total_time,
            seed=seed + 7919 * ki,  # distinct stream per cluster count
            nodes=nodes,
            cms=cms,
            cps=cps,
            avg_sigma=avg_sigma,
            dc_ratio=dc_ratio,
            speed_spread=speed_spread,
            cluster_spread=cluster_spread,
            name=f"fleet-{k}x{nodes}",
            learn=learn,
        )
        for policy in grid_policies:
            point = base.with_policy(policy)
            for rep in range(replications):
                specs.append(
                    RunSpec(
                        scenario=point.with_seed(
                            replication_seed(base.seed, rep)
                        ),
                        algorithm=algorithm,
                        labels={
                            "policy": policy,
                            "clusters": k,
                            "replication": rep,
                        },
                        validate=validate,
                    )
                )

    results = BatchRunner(workers=workers, workers_mode=workers_mode).run(specs)

    table: dict[tuple[str, int], ConfidenceInterval] = {}
    for k in counts:
        at_count = results.filter(clusters=k)
        for policy in grid_policies:
            samples = at_count.filter(policy=policy).values(metric)
            table[(policy, k)] = mean_ci(samples)
    return FleetSweepResult(
        policies=grid_policies,
        cluster_counts=counts,
        table=table,
        metric=metric,
        results=results,
    )
