"""Routing policies: which member cluster receives the next arrival.

The router sits in front of N independent cluster schedulers and decides,
*at each task's arrival instant*, which cluster's head node the task is
submitted to.  Policies range from state-blind (``round-robin``,
``random-weighted``) to state-aware (``least-loaded``) to model-aware
(``earliest-finish``, which runs each cluster's own admission analysis as
a what-if probe).  Multi-source DLT scheduling (Cao/Wu/Robertazzi) and RL
distribution-sequencing results both show this choice dominates
reject-ratio once clusters are heterogeneous — the policies here are the
classical deterministic ends of that spectrum.

Every policy is deterministic given the fleet seed: ``random-weighted``
draws from the scenario's dedicated routing stream, and all tie-breaks
fall back to the lowest cluster index.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

    from repro.learn.config import LearnConfig
    from repro.learn.feedback import RoutingFeedback

__all__ = [
    "ROUTING_POLICIES",
    "ClusterView",
    "EarliestFinish",
    "LeastLoaded",
    "RandomWeighted",
    "RoundRobin",
    "RoutingPolicy",
    "make_routing_policy",
    "routing_policy_names",
    "static_routing_policy_names",
    "validate_routing_policy",
]


@dataclass(frozen=True, slots=True)
class ClusterView:
    """Read-only snapshot of one member cluster at a routing instant.

    Attributes
    ----------
    index:
        Member position within the fleet (the value policies return).
    nodes:
        Cluster size ``N``.
    capacity:
        Aggregate processing capacity ``sum(1 / Cps_i)`` — work units per
        time unit with every node busy (the ``random-weighted`` weights).
    outstanding:
        Admitted-but-unfinished tasks (waiting + running) on this cluster.
    backlog:
        Mean reserved node-time beyond ``now`` (how far ahead the
        cluster's nodes are committed).
    busy_time:
        Actual link+CPU occupancy accumulated so far (node-time units).
    probe:
        ``probe(task)`` runs the cluster's own schedulability test as a
        what-if and returns the estimated completion time the cluster
        would commit to, or ``None`` when the cluster would reject the
        task.  Probes never touch scheduling state (reservations, queues,
        counters); for stochastic partitioners (User-Split) a probe may
        consume the member's per-task algorithm draw, which is
        deterministic — exactly one draw per stream task, in arrival
        order, reused if the task is then routed there.
    up:
        ``False`` while the member sits inside a fault blackout window
        (every node down).  State-aware policies steer around downed
        members; state-blind ones (``round-robin``) ignore it, which is
        exactly what makes them the baseline under churn.  Admission on a
        downed member still runs honestly — its node availability is
        floored at the recovery instant, so most submissions bounce.
    """

    index: int
    nodes: int
    capacity: float
    outstanding: int
    backlog: float
    busy_time: float
    probe: Callable[[DivisibleTask], float | None]
    up: bool = True


class RoutingPolicy(ABC):
    """Strategy interface: pick a member cluster for each arrival.

    Policies may keep per-run state (cycling counters, RNG streams); the
    fleet simulation builds a fresh instance per run via
    :func:`make_routing_policy`, so a scenario stays frozen and picklable.
    """

    #: Registry name of the policy (e.g. ``"round-robin"``).
    name: str = "abstract"

    #: Whether the policy consumes outcome feedback (:meth:`observe`).
    #: The fleet simulation skips the feedback machinery entirely for
    #: policies that leave this ``False``, so static routing stays as
    #: cheap as it was before the learning layer existed.
    learns: ClassVar[bool] = False

    @abstractmethod
    def route(self, task: DivisibleTask, views: Sequence[ClusterView]) -> int:
        """Return the index of the cluster that receives ``task``.

        ``views`` is ordered by member index and freshly snapshotted at
        the task's arrival time; implementations must return an index in
        ``range(len(views))`` and must not mutate cluster scheduling
        state (probing via :attr:`ClusterView.probe` is allowed — see its
        contract).
        """

    def observe(self, feedback: "RoutingFeedback") -> None:
        """Consume one per-task outcome report (no-op for static policies).

        The fleet simulation calls this with a
        :class:`~repro.learn.feedback.RoutingFeedback` after each routed
        task's admission test, and again when the task completes —
        learning policies (``learns = True``) update their arm statistics
        here; the default implementation ignores the feedback.
        """


class RoundRobin(RoutingPolicy):
    """Cycle through member clusters in index order, one task each.

    State-blind and load-blind: the right baseline, and near-optimal when
    clusters are identical and the stream is smooth.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, task: DivisibleTask, views: Sequence[ClusterView]) -> int:
        """Return the next cluster in the cycle."""
        index = self._next % len(views)
        self._next = index + 1
        return index


class RandomWeighted(RoutingPolicy):
    """Pick a cluster at random, weighted by processing capacity.

    The classic stateless sharder: cluster ``j`` receives a task with
    probability proportional to ``sum_i(1 / Cps_i)`` over its nodes, so a
    2× faster cluster absorbs 2× the stream on average.  Draws come from
    the fleet scenario's dedicated routing stream — same seed, same
    routing sequence, regardless of what happens inside the clusters.
    """

    name = "random-weighted"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()
        self._weights: "NDArray[np.float64] | None" = None

    def route(self, task: DivisibleTask, views: Sequence[ClusterView]) -> int:
        """Draw one cluster index from the capacity-weighted distribution."""
        if self._weights is None or self._weights.size != len(views):
            caps = np.asarray([v.capacity for v in views], dtype=np.float64)
            self._weights = caps / caps.sum()
        return int(self.rng.choice(len(views), p=self._weights))


class LeastLoaded(RoutingPolicy):
    """Route to the cluster with the fewest outstanding tasks.

    Joins the shortest queue: primary key is member health (up members
    beat blacked-out ones), then admitted-but-unfinished task count, ties
    broken by the smaller reserved backlog (mean committed node-time
    beyond now), then by cluster index.  Reacts to load imbalance — and,
    under fault injection, to member blackouts — without any model of the
    task itself.
    """

    name = "least-loaded"

    def route(self, task: DivisibleTask, views: Sequence[ClusterView]) -> int:
        """Return the argmin of (not up, outstanding, backlog, index)."""
        return min(
            views, key=lambda v: (not v.up, v.outstanding, v.backlog, v.index)
        ).index


class EarliestFinish(RoutingPolicy):
    """Route to the cluster whose admission analysis finishes the task first.

    For each cluster the router runs the *actual* schedulability test
    (policy order, partitioner, per-node availability — the full Figure 2
    machinery of that cluster) as a what-if and reads off the estimated
    completion the cluster would guarantee.  The task goes to the earliest
    estimate; clusters that would reject are skipped.  When every cluster
    would reject, the task falls back to the least-loaded choice — it is
    (almost certainly) rejected there, and the reject is counted on that
    cluster.

    This is the DLT-aware policy: it sees through heterogeneity (a fast
    cluster with a deep queue vs. a slow idle one) at the cost of N
    admission probes per arrival.
    """

    name = "earliest-finish"

    def route(self, task: DivisibleTask, views: Sequence[ClusterView]) -> int:
        """Return the admitting cluster with the earliest estimate."""
        best_index: int | None = None
        best_completion = np.inf
        for view in views:
            completion = view.probe(task)
            if completion is not None and completion < best_completion:
                best_completion = completion
                best_index = view.index
        if best_index is not None:
            return best_index
        return LeastLoaded().route(task, views)


#: Registry of routing policies, keyed by CLI/scenario name.  The
#: learning layer (``repro.learn.bandits``) registers its bandit policies
#: here on import; the accessors below trigger that import lazily so the
#: full registry is visible without callers importing ``repro.learn``.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    RoundRobin.name: RoundRobin,
    RandomWeighted.name: RandomWeighted,
    LeastLoaded.name: LeastLoaded,
    EarliestFinish.name: EarliestFinish,
}


def _ensure_learning_policies() -> None:
    """Pull the bandit policies into the registry (idempotent)."""
    import repro.learn.bandits  # noqa: F401  (registers on import)


def routing_policy_names() -> tuple[str, ...]:
    """All registered routing-policy names (static + learning), sorted."""
    _ensure_learning_policies()
    return tuple(sorted(ROUTING_POLICIES))


def static_routing_policy_names() -> tuple[str, ...]:
    """The non-learning routing-policy names, sorted (the bandit arms)."""
    _ensure_learning_policies()
    return tuple(
        sorted(
            name
            for name, cls in ROUTING_POLICIES.items()
            if not getattr(cls, "learns", False)
        )
    )


def validate_routing_policy(name: str) -> str:
    """Return ``name`` if it names a routing policy, else raise."""
    _ensure_learning_policies()
    if name not in ROUTING_POLICIES:
        raise InvalidParameterError(
            f"unknown routing policy {name!r}; "
            f"valid: {', '.join(routing_policy_names())}"
        )
    return name


def make_routing_policy(
    name: str,
    *,
    rng: np.random.Generator | None = None,
    learn: "LearnConfig | None" = None,
    learning_rng: np.random.Generator | None = None,
) -> RoutingPolicy:
    """Instantiate a fresh, per-run routing policy by registry name.

    ``rng`` seeds stochastic policies (``random-weighted``) — and is the
    stream a bandit hands to its stochastic policy arms, so a bandit
    pinned to ``random-weighted`` replays the static run exactly.
    ``learn``/``learning_rng`` configure and seed bandit policies
    (ignored by static ones): the learning stream is dedicated, so bandit
    draws never perturb routing/workload/algorithm randomness.
    """
    validate_routing_policy(name)
    cls = ROUTING_POLICIES[name]
    if getattr(cls, "learns", False):
        return cls(config=learn, rng=learning_rng, routing_rng=rng)  # type: ignore[call-arg]
    if cls is RandomWeighted:
        return RandomWeighted(rng)
    return cls()
