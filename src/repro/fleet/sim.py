"""Fleet executor: shard one arrival stream across N cluster simulations.

:class:`FleetSimulation` owns one :class:`~repro.sim.cluster_sim.
ClusterSimulation` per member cluster and drives them in lockstep over the
shared task stream:

1. generate the stream once (bit-identical to the single-cluster path);
2. for each arrival, advance every member's clock to the arrival instant,
   snapshot per-cluster :class:`~repro.fleet.routing.ClusterView` state,
   ask the routing policy for a destination, and submit the task there;
3. when the stream ends, finalize every member (all accepted work drains)
   and pool the outputs into fleet-level metrics.

Routing used to be fire-and-forget; learning policies closed that loop.
When the active policy declares ``learns = True`` the simulation feeds
per-task outcomes back to it as
:class:`~repro.learn.feedback.RoutingFeedback`: an *admission* report
right after the routed task's schedulability test runs, and a
*completion* report when the task actually finishes (delivered before
the next routing decision whose arrival instant lies past the
completion, in deterministic ``(actual_completion, task_id)`` order).
Static policies skip this machinery entirely.

Because member clusters never interact — no task migration, no shared
links — each member's event sequence is exactly what a standalone
:class:`ClusterSimulation` would execute on its routed sub-stream.  A
1-cluster fleet is therefore *bit-identical* to the corresponding
single-cluster run under every routing policy (the test suite asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.algorithms import make_algorithm
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord
from repro.fleet.routing import ClusterView, RoutingPolicy, make_routing_policy
from repro.fleet.scenario import FleetScenario
from repro.learn.feedback import (
    PHASE_ADMISSION,
    PHASE_COMPLETION,
    PHASE_FAULT,
    LearningReport,
    RoutingFeedback,
)
from repro.metrics.collector import MetricsSummary, summarize, summarize_pooled
from repro.obs import Observability, Tracer, merge_snapshots
from repro.sim.cluster_sim import ClusterSimulation, SimulationOutput

__all__ = ["FleetOutput", "FleetSimulation", "simulate_fleet"]


@dataclass(frozen=True, slots=True)
class FleetOutput:
    """Everything one fleet run produced.

    ``outputs`` holds the raw per-member :class:`SimulationOutput` in
    member order; ``per_cluster`` the corresponding summaries;
    ``metrics`` the fleet-level pooled summary (total rejections over
    total arrivals, capacity-weighted utilization);
    ``assignments`` maps stream position → member index, so any slice of
    the routing decision sequence can be reconstructed;
    ``learning`` the bandit's :class:`~repro.learn.feedback.
    LearningReport` (``None`` for static routing policies) — its
    cumulative regret is also surfaced as ``metrics.learning_regret``.
    """

    algorithm: str
    scenario: FleetScenario
    outputs: tuple[SimulationOutput, ...]
    assignments: tuple[int, ...]
    metrics: MetricsSummary
    per_cluster: tuple[MetricsSummary, ...]
    learning: LearningReport | None = None
    #: Probes answered from the shared per-arrival probe cache vs probes
    #: that actually ran an admission walk (0/0 for non-probing policies).
    probe_cache_hits: int = 0
    probe_cache_misses: int = 0

    @property
    def reject_ratio(self) -> float:
        """Fleet-level Task Reject Ratio (rejections over all arrivals)."""
        return self.metrics.reject_ratio

    @property
    def routed_counts(self) -> tuple[int, ...]:
        """Number of stream tasks routed to each member cluster."""
        counts = [0] * len(self.outputs)
        for index in self.assignments:
            counts[index] += 1
        return tuple(counts)


class FleetSimulation:
    """One fleet run: a shared task stream routed across member clusters.

    Parameters
    ----------
    scenario:
        The fleet description (clusters + shared workload + policy + seed).
    algorithm:
        Fleet-wide scheduling algorithm name; individual members may
        override it through ``scenario.member_algorithms``.
    validate:
        Arm the Theorem-4 validator on every member.
    trace:
        Record chunk-level traces on every member (slower, more memory).
    eager_release / shared_head_link:
        Modelling switches forwarded to every member simulation
        (``eager_release`` is the fleet-wide default that
        ``scenario.member_eager_release`` entries override).
    node_order:
        Node-ordering policy forwarded to every member's partitioner.
    admission_engine:
        Admission-test engine (``"fast"`` default / ``"reference"``),
        forwarded to every member simulation.  With the fast engine a
        probe followed by a routed submission reuses the probe's plans
        instead of re-running the whole test (bit-identical outputs).
    obs:
        Optional :class:`repro.obs.Observability` bundle for the fleet.
        Each member gets its own registry (via
        :meth:`~repro.obs.Observability.member`, so member counters stay
        bit-identical to a standalone run) but shares the fleet tracer,
        writing spans onto its own track; the fleet itself keeps routing
        and probe-cache counters on the fleet registry and traces the
        per-arrival probe fan-out on one extra track.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        algorithm: str,
        *,
        validate: bool = True,
        trace: bool = False,
        eager_release: bool = False,
        shared_head_link: bool = False,
        node_order: str = "availability",
        admission_engine: str = "fast",
        obs: Observability | None = None,
    ) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        self.obs = obs if obs is not None else Observability()
        tracer = self.obs.tracer
        #: Fleet-level trace track — one past the member tracks, so
        #: routing spans never interleave with member event dispatch.
        self._trace = (
            tracer.track(scenario.n_clusters)
            if isinstance(tracer, Tracer)
            else tracer
        )
        self.sims: list[ClusterSimulation] = []
        #: Per-member fingerprint for the per-arrival probe cache, or
        #: ``None`` when probing the member is not repeatable (stochastic
        #: partitioners consume an RNG draw per first-contact probe, so
        #: their probes must all run).  Two members share a fingerprint
        #: exactly when the same probe against the same dynamic state must
        #: return the same estimate: same cluster costs and algorithm.
        self._probe_sigs: list[tuple[object, ...] | None] = []
        #: Per-member blackout windows ``(start, end)`` from the fault
        #: plan — the member counts as *down* over ``[start, end)`` for
        #: routing views and up/down transition feedback.
        self._down_windows: list[tuple[tuple[float, float], ...]] = []
        for i in range(scenario.n_clusters):
            member = scenario.member_scenario(i)
            member_algorithm = scenario.member_algorithm(i, algorithm)
            member_faults = member.fault_plan()
            instance = make_algorithm(
                member_algorithm,
                rng=member.algorithm_rng(),
                node_order=node_order,
            )
            self.sims.append(
                ClusterSimulation(
                    member.cluster,
                    instance,
                    horizon=scenario.total_time,
                    validate=validate,
                    trace=trace,
                    eager_release=scenario.member_eager(i, eager_release),
                    shared_head_link=shared_head_link,
                    admission_engine=admission_engine,
                    faults=member_faults,
                    obs=self.obs.member(i),
                )
            )
            self._down_windows.append(
                tuple(
                    (event.time, event.end)
                    for event in (member_faults.events if member_faults else ())
                    if event.kind == "blackout"
                )
            )
            self._probe_sigs.append(
                None
                if instance.spec.needs_rng
                else (
                    member_algorithm,
                    member.cluster.cms_vector,
                    member.cluster.cps_vector,
                )
            )
        self.policy: RoutingPolicy = make_routing_policy(
            scenario.policy,
            rng=scenario.routing_rng(),
            learn=scenario.learn,
            learning_rng=scenario.learning_rng(),
        )
        if self._trace is not None and getattr(self.policy, "learns", False):
            # Bandit policies carry an optional tracer attribute; arm
            # selection and reward resolution become trace events.
            self.policy.tracer = self._trace
        self._capacities = [
            float(np.sum(1.0 / c.cps_array)) for c in scenario.clusters
        ]
        #: Accepted tasks per member whose completion feedback is still
        #: owed to a learning policy.  Only populated when the policy
        #: learns *and* its reward model defers to the completion phase
        #: — admission-resolving rewards never pay the tracking cost.
        self._watch: list[set[int]] = [set() for _ in self.sims]
        self._track_completions = self.policy.learns and getattr(
            self.policy, "wants_completion_feedback", True
        )
        self._assignments: list[int] = []
        self._member_up = [True] * len(self.sims)
        self._routed: dict[int, int] = {}
        self._last_arrival = -np.inf
        self._done = False
        registry = self.obs.registry
        self._probe_hits = registry.counter(
            "fleet_probe_cache_hits_total",
            "Probes answered from the shared per-arrival probe cache.",
        )
        self._probe_misses = registry.counter(
            "fleet_probe_cache_misses_total",
            "Probes that actually ran an admission walk.",
        )
        self._routed_counters = [
            registry.counter(
                "fleet_routed_total",
                "Tasks routed to each member cluster.",
                labels={"member": str(i)},
            )
            for i in range(len(self.sims))
        ]

    # -- routing state ------------------------------------------------------
    def _is_up(self, index: int, now: float) -> bool:
        """Whether member ``index`` is outside every blackout window at ``now``.

        Windows are half-open ``[start, end)``: at the recovery instant
        the member already counts as up, matching the kernel's fault-end
        ordering (recovery fires before same-instant arrivals).
        """
        return not any(
            start <= now < end for start, end in self._down_windows[index]
        )

    def _fault_feedback(self, now: float) -> None:
        """Report member up/down flips since the last arrival to the policy.

        One :data:`PHASE_FAULT` report per flipped member, in member
        order, with a negative ``task_id`` sentinel (``-(member + 1)``)
        so per-task reward bookkeeping never confuses it with a routed
        task.  ``accepted`` carries the member's *new* state.
        """
        for j in range(len(self.sims)):
            up = self._is_up(j, now)
            if up == self._member_up[j]:
                continue
            self._member_up[j] = up
            self.policy.observe(
                RoutingFeedback(
                    task_id=-(j + 1),
                    cluster=j,
                    phase=PHASE_FAULT,
                    arrival=now,
                    sigma=0.0,
                    deadline=0.0,
                    accepted=up,
                )
            )

    def _view(
        self,
        index: int,
        now: float,
        probe_cache: dict[tuple, float | None] | None = None,
    ) -> ClusterView:
        """Snapshot member ``index`` for one routing decision.

        ``probe_cache`` is one arrival's shared what-if cache: when two
        members are in an identical probe-relevant state (same costs,
        algorithm, reservations and waiting queue — e.g. idle members of a
        uniform fleet), the second probe is answered from the first
        member's result instead of re-running the admission test.
        """
        sim = self.sims[index]
        scheduler = sim.scheduler
        release = scheduler.reservations.release_times
        # arr.sum()/n is np.mean minus the dispatch wrapper (same pairwise
        # reduction, bit-identical value) — this runs per member per task.
        over = np.maximum(release - now, 0.0)
        backlog = float(over.sum() / over.size)
        sig = self._probe_sigs[index]

        def probe(task: DivisibleTask, _sim: ClusterSimulation = sim) -> float | None:
            """What-if admission: the cluster's estimate, or None on reject."""
            key: tuple | None = None
            if probe_cache is not None and sig is not None:
                # ``release`` is this arrival's committed snapshot: no
                # events run between snapshotting and routing, so it is
                # exactly the state the probe tests.
                key = (sig, release.tobytes(), tuple(_sim.scheduler.waiting))
                if key in probe_cache:
                    self._probe_hits.inc()
                    return probe_cache[key]
            self._probe_misses.inc()
            test = _sim.scheduler.test
            probe_fn = getattr(test, "probe_completion", None)
            if probe_fn is not None:
                # The batch engine's member kernel: same walk, but it
                # returns just the earliest-finish estimate — no decision
                # or plan objects, which a probe discards anyway.
                result = probe_fn(
                    task,
                    list(_sim.scheduler.waiting.values()),
                    _sim.scheduler.reservations,
                    now,
                )
            else:
                decision = test.try_admit(
                    task,
                    list(_sim.scheduler.waiting.values()),
                    _sim.scheduler.reservations,
                    now,
                )
                result = (
                    decision.plans[task.task_id].est_completion
                    if decision.accepted
                    else None
                )
            if key is not None:
                probe_cache[key] = result
            return result

        return ClusterView(
            index=index,
            nodes=sim.cluster.nodes,
            capacity=self._capacities[index],
            outstanding=scheduler.waiting_count + scheduler.running_count,
            backlog=backlog,
            busy_time=sim.busy_time,
            probe=probe,
            up=self._is_up(index, now),
        )

    # -- learning feedback --------------------------------------------------
    def _admission_feedback(
        self, task: DivisibleTask, index: int, view: ClusterView
    ) -> None:
        """Report the routed task's admission outcome to the policy."""
        record = self.sims[index].scheduler.records.get(task.task_id)
        accepted = record is not None and record.outcome is TaskOutcome.ACCEPTED
        self.policy.observe(
            RoutingFeedback(
                task_id=task.task_id,
                cluster=index,
                phase=PHASE_ADMISSION,
                arrival=task.arrival,
                sigma=task.sigma,
                deadline=task.deadline,
                accepted=accepted,
                est_completion=record.est_completion if record else None,
                outstanding=view.outstanding,
                backlog=view.backlog,
            )
        )
        if accepted and self._track_completions:
            self._watch[index].add(task.task_id)

    def _drain_completions(self) -> None:
        """Report every newly completed task, in deterministic order.

        Completions are sorted by ``(actual_completion, task_id)`` across
        all members, so the learning policy sees the same reward sequence
        no matter how the members' event loops interleave.
        """
        due: list[tuple[float, int, int, TaskRecord]] = []
        for j, watched in enumerate(self._watch):
            records = self.sims[j].scheduler.records
            for tid in watched:
                record = records[tid]
                if record.actual_completion is not None:
                    due.append((record.actual_completion, tid, j, record))
        due.sort(key=lambda item: (item[0], item[1]))
        for completion, tid, j, record in due:
            self._watch[j].discard(tid)
            self.policy.observe(
                RoutingFeedback(
                    task_id=tid,
                    cluster=j,
                    phase=PHASE_COMPLETION,
                    arrival=record.task.arrival,
                    sigma=record.task.sigma,
                    deadline=record.task.deadline,
                    accepted=True,
                    est_completion=record.est_completion,
                    actual_completion=completion,
                    deadline_met=record.deadline_met,
                )
            )

    # -- incremental driver -------------------------------------------------
    # ``submit`` / ``advance_to`` / ``finalize`` mirror the incremental
    # ClusterSimulation API one level up: an external coordinator (the
    # admission service of :mod:`repro.serve`) can feed the fleet one task
    # at a time and still execute the exact event sequence ``run()`` would
    # — ``run()`` is just the composition of these primitives over the
    # scenario's generated stream.

    def submit(self, task: DivisibleTask) -> int:
        """Route and admit one arrival; return the chosen member index.

        Advances every member's clock to the arrival instant (completion
        feedback for a learning policy is drained here, exactly as in the
        one-shot driver), snapshots routing views, routes, submits to the
        chosen member and processes the arrival so the admission decision
        is visible immediately — to the caller via
        :meth:`task_status` and to the very next routing decision.

        Tasks must be submitted in arrival order with unique ids, like
        :meth:`ClusterSimulation.submit`.
        """
        if self._done:
            raise InvalidParameterError(
                "cannot submit tasks to a finalized fleet simulation"
            )
        if task.arrival < self._last_arrival:
            raise InvalidParameterError(
                "tasks must be submitted in arrival order "
                f"(task {task.task_id} at {task.arrival} after "
                f"{self._last_arrival})"
            )
        if task.task_id in self._routed:
            raise InvalidParameterError(f"duplicate task id {task.task_id}")
        n_members = len(self.sims)
        for sim in self.sims:
            sim.advance_to(task.arrival)
        if self._track_completions:
            self._drain_completions()
        if self.policy.learns:
            self._fault_feedback(task.arrival)
        probe_cache: dict[tuple, float | None] = {}
        if self._trace is None:
            views = [
                self._view(i, task.arrival, probe_cache) for i in range(n_members)
            ]
            index = self.policy.route(task, views)
        else:
            with self._trace.span(
                "fleet.route", "fleet", task.arrival, task=task.task_id
            ):
                views = [
                    self._view(i, task.arrival, probe_cache)
                    for i in range(n_members)
                ]
                index = self.policy.route(task, views)
            self._trace.event(
                "fleet.routed",
                "fleet",
                task.arrival,
                task=task.task_id,
                member=index,
            )
        if not 0 <= index < n_members:
            raise InvalidParameterError(
                f"routing policy {self.policy.name!r} returned cluster "
                f"{index}, valid range [0, {n_members})"
            )
        self._last_arrival = task.arrival
        self._assignments.append(index)
        self._routed_counters[index].inc()
        self._routed[task.task_id] = index
        target = self.sims[index]
        target.submit(task)
        # Process the arrival now so the admission decision is visible
        # to the very next routing decision (even at equal timestamps).
        target.advance_to(task.arrival)
        if self.policy.learns:
            self._admission_feedback(task, index, views[index])
        return index

    def advance_to(self, time: float) -> None:
        """Advance every member's clock to ``time`` (events fire).

        Learning feedback is *not* drained here — completion reports are
        delivered immediately before routing decisions (in
        :meth:`submit`) and at :meth:`finalize`, so the reward sequence is
        identical however callers interleave clock advances.
        """
        for sim in self.sims:
            sim.advance_to(time)

    def finalize(self) -> FleetOutput:
        """Drain every member and assemble the fleet output.

        A fleet simulation finalizes exactly once; no tasks may be
        submitted afterwards.
        """
        if self._done:
            raise InvalidParameterError("a FleetSimulation instance runs once")
        self._done = True
        learning = self.policy.learns
        outputs = tuple(sim.finalize() for sim in self.sims)
        report: LearningReport | None = None
        metrics = summarize_pooled(outputs)
        if learning:
            if self._track_completions:
                self._drain_completions()  # everything accepted has drained
            report = self.policy.report()  # type: ignore[attr-defined]
            metrics = replace(metrics, learning_regret=report.cumulative_regret)
        # Fold the fleet's own counters (routing shares, probe cache) into
        # the pooled member snapshot carried by the summary.
        metrics = replace(
            metrics,
            obs=merge_snapshots(
                [s for s in (metrics.obs, self.obs.registry.snapshot()) if s]
            ),
        )
        per_cluster = tuple(summarize(o) for o in outputs)
        return FleetOutput(
            algorithm=self.algorithm,
            scenario=self.scenario,
            outputs=outputs,
            assignments=tuple(self._assignments),
            metrics=metrics,
            per_cluster=per_cluster,
            learning=report,
            probe_cache_hits=int(self._probe_hits.value),
            probe_cache_misses=int(self._probe_misses.value),
        )

    # -- live introspection (the admission service's status/cancel hooks) --
    def member_of(self, task_id: int) -> int | None:
        """Member index a submitted task was routed to (``None`` if unknown)."""
        return self._routed.get(task_id)

    def cancel(self, task_id: int) -> bool:
        """Withdraw a routed task that has not started transmitting.

        Looks up the member the task was routed to and delegates to its
        :meth:`ClusterSimulation.cancel`.  Returns ``False`` for unknown
        tasks and for tasks past the point of no return.
        """
        index = self._routed.get(task_id)
        if index is None:
            return False
        return self.sims[index].cancel(task_id)

    def task_status(self, task_id: int) -> dict:
        """One task's live status dict, with the routed ``member`` index.

        Same keys as :meth:`ClusterSimulation.task_status` plus
        ``member`` (``None`` — with state ``"unknown"`` — for ids never
        routed here).
        """
        index = self._routed.get(task_id)
        if index is None:
            return {
                "task_id": task_id,
                "state": "unknown",
                "member": None,
                "est_completion": None,
                "actual_completion": None,
                "started_at": None,
                "deadline_met": None,
            }
        status = self.sims[index].task_status(task_id)
        status["member"] = index
        return status

    def snapshot(self) -> dict:
        """Aggregate live state: pooled counters plus per-member snapshots."""
        members = [sim.snapshot() for sim in self.sims]
        pooled = {
            key: sum(m[key] for m in members)
            for key in (
                "arrivals",
                "accepted",
                "rejected",
                "cancelled",
                "waiting",
                "running",
                "completed",
            )
        }
        out = {
            "clock": max((m["clock"] for m in members), default=0.0),
            **pooled,
            "busy_time": float(sum(m["busy_time"] for m in members)),
            "finalized": self._done,
            "policy": self.scenario.policy,
            "members": members,
        }
        faulted = [m["faults"] for m in members if "faults" in m]
        if faulted:
            # Same shape as a member's "faults" sub-dict, summed fleet-wide.
            out["faults"] = {
                key: sum(f[key] for f in faulted) for key in faulted[0]
            }
        return out

    # -- one-shot driver ----------------------------------------------------
    def run(self) -> FleetOutput:
        """Execute the whole shared stream and return the fleet output."""
        if self._done or self._assignments:
            raise InvalidParameterError("a FleetSimulation instance runs once")
        stream = self.scenario.stream_scenario()
        tasks: Sequence[DivisibleTask] = stream.generate_tasks()
        for task in tasks:
            self.submit(task)
        return self.finalize()


def simulate_fleet(
    scenario: FleetScenario,
    algorithm: str,
    *,
    validate: bool = True,
    trace: bool = False,
    eager_release: bool = False,
    shared_head_link: bool = False,
    node_order: str = "availability",
    admission_engine: str = "fast",
    obs: Observability | None = None,
) -> FleetOutput:
    """Run one fleet simulation of ``algorithm`` under ``scenario``.

    The shared stream depends only on the fleet seed — every routing
    policy and every algorithm shards the identical task set, so policy
    comparisons are paired exactly like the paper's algorithm comparisons.
    """
    return FleetSimulation(
        scenario,
        algorithm,
        validate=validate,
        trace=trace,
        eager_release=eager_release,
        shared_head_link=shared_head_link,
        node_order=node_order,
        admission_engine=admission_engine,
        obs=obs,
    ).run()
