"""Fleet executor: shard one arrival stream across N cluster simulations.

:class:`FleetSimulation` owns one :class:`~repro.sim.cluster_sim.
ClusterSimulation` per member cluster and drives them in lockstep over the
shared task stream:

1. generate the stream once (bit-identical to the single-cluster path);
2. for each arrival, advance every member's clock to the arrival instant,
   snapshot per-cluster :class:`~repro.fleet.routing.ClusterView` state,
   ask the routing policy for a destination, and submit the task there;
3. when the stream ends, finalize every member (all accepted work drains)
   and pool the outputs into fleet-level metrics.

Because member clusters never interact — no task migration, no shared
links — each member's event sequence is exactly what a standalone
:class:`ClusterSimulation` would execute on its routed sub-stream.  A
1-cluster fleet is therefore *bit-identical* to the corresponding
single-cluster run under every routing policy (the test suite asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.algorithms import make_algorithm
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask
from repro.fleet.routing import ClusterView, RoutingPolicy, make_routing_policy
from repro.fleet.scenario import FleetScenario
from repro.metrics.collector import MetricsSummary, summarize, summarize_pooled
from repro.sim.cluster_sim import ClusterSimulation, SimulationOutput

__all__ = ["FleetOutput", "FleetSimulation", "simulate_fleet"]


@dataclass(frozen=True, slots=True)
class FleetOutput:
    """Everything one fleet run produced.

    ``outputs`` holds the raw per-member :class:`SimulationOutput` in
    member order; ``per_cluster`` the corresponding summaries;
    ``metrics`` the fleet-level pooled summary (total rejections over
    total arrivals, capacity-weighted utilization);
    ``assignments`` maps stream position → member index, so any slice of
    the routing decision sequence can be reconstructed.
    """

    algorithm: str
    scenario: FleetScenario
    outputs: tuple[SimulationOutput, ...]
    assignments: tuple[int, ...]
    metrics: MetricsSummary
    per_cluster: tuple[MetricsSummary, ...]

    @property
    def reject_ratio(self) -> float:
        """Fleet-level Task Reject Ratio (rejections over all arrivals)."""
        return self.metrics.reject_ratio

    @property
    def routed_counts(self) -> tuple[int, ...]:
        """Number of stream tasks routed to each member cluster."""
        counts = [0] * len(self.outputs)
        for index in self.assignments:
            counts[index] += 1
        return tuple(counts)


class FleetSimulation:
    """One fleet run: a shared task stream routed across member clusters.

    Parameters
    ----------
    scenario:
        The fleet description (clusters + shared workload + policy + seed).
    algorithm:
        Per-cluster scheduling algorithm name (every member runs the same
        algorithm; heterogeneity lives in the cluster profiles).
    validate:
        Arm the Theorem-4 validator on every member.
    trace:
        Record chunk-level traces on every member (slower, more memory).
    eager_release / shared_head_link:
        Modelling switches forwarded to every member simulation.
    node_order:
        Node-ordering policy forwarded to every member's partitioner.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        algorithm: str,
        *,
        validate: bool = True,
        trace: bool = False,
        eager_release: bool = False,
        shared_head_link: bool = False,
        node_order: str = "availability",
    ) -> None:
        self.scenario = scenario
        self.algorithm = algorithm
        self.sims: list[ClusterSimulation] = []
        for i in range(scenario.n_clusters):
            member = scenario.member_scenario(i)
            instance = make_algorithm(
                algorithm, rng=member.algorithm_rng(), node_order=node_order
            )
            self.sims.append(
                ClusterSimulation(
                    member.cluster,
                    instance,
                    horizon=scenario.total_time,
                    validate=validate,
                    trace=trace,
                    eager_release=eager_release,
                    shared_head_link=shared_head_link,
                )
            )
        self.policy: RoutingPolicy = make_routing_policy(
            scenario.policy, rng=scenario.routing_rng()
        )
        self._capacities = [
            float(np.sum(1.0 / c.cps_array)) for c in scenario.clusters
        ]
        self._done = False

    # -- routing state ------------------------------------------------------
    def _view(self, index: int, now: float) -> ClusterView:
        """Snapshot member ``index`` for one routing decision."""
        sim = self.sims[index]
        scheduler = sim.scheduler
        release = scheduler.reservations.release_times
        backlog = float(np.mean(np.maximum(release - now, 0.0)))

        def probe(task: DivisibleTask, _sim: ClusterSimulation = sim) -> float | None:
            """What-if admission: the cluster's estimate, or None on reject."""
            decision = _sim.scheduler.test.try_admit(
                task,
                list(_sim.scheduler.waiting.values()),
                _sim.scheduler.reservations,
                now,
            )
            if not decision.accepted:
                return None
            return decision.plans[task.task_id].est_completion

        return ClusterView(
            index=index,
            nodes=sim.cluster.nodes,
            capacity=self._capacities[index],
            outstanding=scheduler.waiting_count + scheduler.running_count,
            backlog=backlog,
            busy_time=sim.busy_time,
            probe=probe,
        )

    # -- driver -------------------------------------------------------------
    def run(self) -> FleetOutput:
        """Execute the whole shared stream and return the fleet output."""
        if self._done:
            raise InvalidParameterError("a FleetSimulation instance runs once")
        self._done = True

        stream = self.scenario.stream_scenario()
        tasks: Sequence[DivisibleTask] = stream.generate_tasks()
        n_members = len(self.sims)
        assignments: list[int] = []
        for task in tasks:
            for sim in self.sims:
                sim.advance_to(task.arrival)
            views = [self._view(i, task.arrival) for i in range(n_members)]
            index = self.policy.route(task, views)
            if not 0 <= index < n_members:
                raise InvalidParameterError(
                    f"routing policy {self.policy.name!r} returned cluster "
                    f"{index}, valid range [0, {n_members})"
                )
            assignments.append(index)
            target = self.sims[index]
            target.submit(task)
            # Process the arrival now so the admission decision is visible
            # to the very next routing decision (even at equal timestamps).
            target.advance_to(task.arrival)

        outputs = tuple(sim.finalize() for sim in self.sims)
        per_cluster = tuple(summarize(o) for o in outputs)
        return FleetOutput(
            algorithm=self.algorithm,
            scenario=self.scenario,
            outputs=outputs,
            assignments=tuple(assignments),
            metrics=summarize_pooled(outputs),
            per_cluster=per_cluster,
        )


def simulate_fleet(
    scenario: FleetScenario,
    algorithm: str,
    *,
    validate: bool = True,
    trace: bool = False,
    eager_release: bool = False,
    shared_head_link: bool = False,
    node_order: str = "availability",
) -> FleetOutput:
    """Run one fleet simulation of ``algorithm`` under ``scenario``.

    The shared stream depends only on the fleet seed — every routing
    policy and every algorithm shards the identical task set, so policy
    comparisons are paired exactly like the paper's algorithm comparisons.
    """
    return FleetSimulation(
        scenario,
        algorithm,
        validate=validate,
        trace=trace,
        eager_release=eager_release,
        shared_head_link=shared_head_link,
        node_order=node_order,
    ).run()
