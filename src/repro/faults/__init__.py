"""Deterministic fault injection: plans, seeded processes, event model.

The paper's admission guarantee is only as strong as the availability
vector it reasons over.  This package supplies the missing robustness
axis: *faults* — node slowdown, link degradation, node churn and
whole-member blackouts — as first-class, timestamped events that the
simulation kernel applies mid-run, displacing in-flight work and
re-admitting it through the normal admission test.

Two ways to specify faults, both carried on a
:class:`~repro.workload.scenario.Scenario` /
:class:`~repro.fleet.scenario.FleetScenario` via their ``faults`` field:

* :class:`FaultPlan` — an explicit, validated list of
  :class:`FaultEvent` entries (reproducible by construction; JSON
  round-trip via :meth:`FaultPlan.from_json` / :meth:`FaultPlan.to_dict`).
* :class:`FaultProcess` — a seeded generator that materializes a
  :class:`FaultPlan` from a dedicated RNG stream
  (``SeedSequence([scenario_seed, FAULT_SEED_SALT])``), so the same
  scenario seed always yields the same fault stream, independent of the
  arrival / size / deadline / algorithm streams.

Determinism contract (asserted by ``tests/test_faults_properties.py``):
an empty plan is bit-identical to no faults at all; the same seed
replays the identical event stream; and generated plans never violate
the model invariants (positive durations, factors >= 1, node-level
kinds carry a node).  See ``docs/faults.md`` for the full event model
and re-admission semantics.
"""

from __future__ import annotations

from repro.faults.model import (
    FAULT_KINDS,
    FAULT_SEED_SALT,
    FaultEvent,
    FaultPlan,
)
from repro.faults.process import FaultProcess

__all__ = [
    "FAULT_KINDS",
    "FAULT_SEED_SALT",
    "FaultEvent",
    "FaultPlan",
    "FaultProcess",
]
