"""Fault event model: validated events, canonical plans, JSON IO.

A fault is a *window*: it opens at ``time`` and closes at
``time + duration``.  Four kinds exist (:data:`FAULT_KINDS`):

``slowdown``
    One node computes slower — its effective ``cps_i`` is multiplied by
    ``factor`` (>= 1) for the window.  Admission keeps planning with the
    *nominal* cost, so completions slip past their estimates and show up
    as honest deadline misses — never as re-planned successes.
``degrade``
    One head-node link transmits slower — effective ``cms_i`` multiplied
    by ``factor`` for the window (the link-degradation axis of the
    resource-sharing DLT literature).
``node_down``
    One node crashes and recovers at window close.  Running tasks with a
    chunk on that node are torn down and re-admitted with their original
    deadline; the node's availability is floored at the recovery time.
``blackout``
    Every node of the targeted member goes down at once — ``node_down``
    for the whole cluster (and the event that exercises mass
    cancellation in the event heap).

``member`` targets a fleet member index; ``None`` means member 0, so a
single-cluster plan needs no member bookkeeping and the same JSON file
drives ``run-scenario`` and ``fleet`` alike.  ``node`` indexes a node
within the member and is required exactly for the node-level kinds.

Plans are canonically ordered (time, kind priority, member, node) so
that identical plans schedule identical kernel event sequences no
matter how their event lists were assembled.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.core.errors import InvalidParameterError

__all__ = ["FAULT_KINDS", "FAULT_SEED_SALT", "FaultEvent", "FaultPlan"]

#: The four fault kinds, in canonical (same-timestamp priority) order:
#: capacity changes apply before outages so a node that is both slowed
#: and crashed at time ``t`` recovers to the slowed speed.
FAULT_KINDS = ("slowdown", "degrade", "node_down", "blackout")

#: Salt mixed with the scenario seed (``SeedSequence([seed, SALT])``) to
#: derive the dedicated fault-materialization stream — b"faul", in the
#: same spirit as the fleet's member/routing/learning salts.
FAULT_SEED_SALT = 0x6661756C

_KIND_RANK = {kind: rank for rank, kind in enumerate(FAULT_KINDS)}

#: Kinds whose target is a single node (``node`` required).
_NODE_KINDS = frozenset({"slowdown", "degrade", "node_down"})

#: Kinds that scale a per-node cost by ``factor``.
_FACTOR_KINDS = frozenset({"slowdown", "degrade"})


def _check_finite(name: str, value: float) -> float:
    """Coerce one scalar field to a finite float or raise."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise InvalidParameterError(f"{name} must be finite, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One fault window: ``kind`` hits its target over ``[time, end)``.

    Parameters
    ----------
    time:
        Window open (simulation time, >= 0, finite).
    kind:
        One of :data:`FAULT_KINDS`.
    duration:
        Window length (> 0, finite); the fault clears at :attr:`end`.
    node:
        Target node index within the member — required for the
        node-level kinds (``slowdown`` / ``degrade`` / ``node_down``),
        forbidden for ``blackout``.
    member:
        Fleet member index (``None`` = member 0 / the only cluster).
    factor:
        Multiplicative cost factor (>= 1) for ``slowdown`` / ``degrade``;
        must stay at its default 1.0 for the outage kinds.
    """

    time: float
    kind: str
    duration: float
    node: int | None = None
    member: int | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_RANK:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        time = _check_finite("fault time", self.time)
        if time < 0.0:
            raise InvalidParameterError(f"fault time must be >= 0, got {time}")
        duration = _check_finite("fault duration", self.duration)
        if duration <= 0.0:
            raise InvalidParameterError(
                f"fault duration must be > 0, got {duration}"
            )
        factor = _check_finite("fault factor", self.factor)
        if self.kind in _FACTOR_KINDS:
            if factor < 1.0:
                raise InvalidParameterError(
                    f"{self.kind} factor must be >= 1, got {factor}"
                )
        elif factor != 1.0:
            raise InvalidParameterError(
                f"{self.kind} does not take a factor (got {factor})"
            )
        if self.kind in _NODE_KINDS:
            if self.node is None:
                raise InvalidParameterError(f"{self.kind} requires a node index")
            if int(self.node) < 0:
                raise InvalidParameterError(
                    f"node index must be >= 0, got {self.node}"
                )
        elif self.node is not None:
            raise InvalidParameterError(
                f"{self.kind} targets a whole member, not node {self.node}"
            )
        if self.member is not None and int(self.member) < 0:
            raise InvalidParameterError(
                f"member index must be >= 0, got {self.member}"
            )
        object.__setattr__(self, "time", time)
        object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "factor", factor)
        if self.node is not None:
            object.__setattr__(self, "node", int(self.node))
        if self.member is not None:
            object.__setattr__(self, "member", int(self.member))

    @property
    def end(self) -> float:
        """Window close: ``time + duration`` (the recover / restore instant)."""
        return self.time + self.duration

    def sort_key(self) -> tuple:
        """Canonical plan order: time, kind priority, member, node, rest."""
        return (
            self.time,
            _KIND_RANK[self.kind],
            -1 if self.member is None else self.member,
            -1 if self.node is None else self.node,
            self.duration,
            self.factor,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (omits defaulted ``node``/``member``/``factor``)."""
        out: dict[str, Any] = {
            "time": self.time,
            "kind": self.kind,
            "duration": self.duration,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.member is not None:
            out["member"] = self.member
        if self.factor != 1.0:
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {"time", "kind", "duration", "node", "member", "factor"}
        extra = set(data) - known
        if extra:
            raise InvalidParameterError(
                f"unknown fault event keys: {sorted(extra)}"
            )
        if not {"time", "kind", "duration"} <= set(data):
            raise InvalidParameterError(
                "fault event needs at least time/kind/duration: " f"{data!r}"
            )
        return cls(
            time=data["time"],
            kind=data["kind"],
            duration=data["duration"],
            node=data.get("node"),
            member=data.get("member"),
            factor=data.get("factor", 1.0),
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An explicit, canonically ordered fault event list.

    Construction sorts the events into canonical order
    (:meth:`FaultEvent.sort_key`), so two plans with the same event *set*
    compare equal and schedule the identical kernel event sequence.  An
    empty plan is a valid value meaning "no faults" and is guaranteed to
    reproduce the fault-free run bit-for-bit.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events, key=FaultEvent.sort_key))
        for event in events:
            if not isinstance(event, FaultEvent):
                raise InvalidParameterError(
                    f"FaultPlan events must be FaultEvent, got {event!r}"
                )
        object.__setattr__(self, "events", events)

    def __bool__(self) -> bool:
        """Truthy iff the plan carries at least one event."""
        return bool(self.events)

    def __len__(self) -> int:
        """Number of fault events."""
        return len(self.events)

    def for_member(self, index: int) -> "FaultPlan":
        """The member-local sub-plan hitting fleet member ``index``.

        Events with ``member is None`` belong to member 0, so a plan
        written for a single cluster applies unchanged to the first
        member of a fleet (and :func:`~repro.serve.backend.make_backend`'s
        1-cluster collapse keeps seeing the same faults).  The returned
        events have their ``member`` field *stripped* (set to ``None``):
        a sub-plan is member-local, so it rides a single-cluster
        :class:`~repro.workload.scenario.Scenario` as-is.
        """
        return FaultPlan(
            tuple(
                FaultEvent(
                    time=event.time,
                    kind=event.kind,
                    duration=event.duration,
                    node=event.node,
                    member=None,
                    factor=event.factor,
                )
                for event in self.events
                if (event.member if event.member is not None else 0) == index
            )
        )

    def max_member(self) -> int:
        """Largest member index any event targets (0 for memberless plans)."""
        return max(
            (event.member if event.member is not None else 0)
            for event in self.events
        ) if self.events else 0

    def describe_token(self) -> str:
        """Short content digest for scenario fingerprints / handshakes."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict: ``{"events": [...]}``."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, dict) or "events" not in data:
            raise InvalidParameterError(
                'fault plan JSON must be an object with an "events" list'
            )
        events = data["events"]
        if not isinstance(events, list):
            raise InvalidParameterError('"events" must be a list')
        return cls(tuple(FaultEvent.from_dict(item) for item in events))

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        """Build from any iterable of events (canonical order applied)."""
        return cls(tuple(events))

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (see ``examples/sample_faults.json``)."""
        text = Path(path).read_text(encoding="utf-8")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"invalid fault plan JSON in {path}: {exc}"
            ) from None
        return cls.from_dict(data)

    def to_json(self, path: str | Path) -> None:
        """Write the plan as indented JSON (round-trips via :meth:`from_json`)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
