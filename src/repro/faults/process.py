"""Seeded fault generators: a process that materializes into a plan.

A :class:`FaultProcess` is a *recipe* — picklable, hashable, carried on
a scenario — that turns a dedicated RNG stream into an explicit
:class:`~repro.faults.model.FaultPlan` via :meth:`FaultProcess.materialize`.
Scenarios derive that stream as ``SeedSequence([seed, FAULT_SEED_SALT])``,
so the fault stream is (a) fully determined by the scenario seed and
(b) independent of the arrival / size / deadline / algorithm streams:
adding faults never perturbs the workload itself.

Replay guarantee: the same process materialized against the same seed,
horizon and member shape yields the identical plan — event for event —
which is property (b) of ``tests/test_faults_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import InvalidParameterError
from repro.faults.model import FAULT_KINDS, FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = ["FaultProcess"]


@dataclass(frozen=True, slots=True)
class FaultProcess:
    """A seeded Poisson stream of faults over a scenario horizon.

    Parameters
    ----------
    rate:
        Expected fault events per unit simulation time (> 0).  Horizons
        in this repo run ~1e4–1e6 time units, so rates around ``1e-4``
        yield a handful of windows per run.
    kinds:
        Fault kinds to draw from, uniformly (default: all four).
    min_factor / max_factor:
        Uniform range for the slowdown / degradation factor
        (``1 <= min_factor <= max_factor``).
    mean_duration:
        Mean fault window length, as a *fraction of the horizon*
        (exponential draw, capped at one horizon).
    """

    rate: float
    kinds: tuple[str, ...] = FAULT_KINDS
    min_factor: float = 1.5
    max_factor: float = 4.0
    mean_duration: float = 0.05

    def __post_init__(self) -> None:
        if not self.rate > 0.0 or self.rate != self.rate:
            raise InvalidParameterError(
                f"fault rate must be > 0, got {self.rate}"
            )
        kinds = tuple(self.kinds)
        if not kinds:
            raise InvalidParameterError("FaultProcess needs at least one kind")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise InvalidParameterError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
        if not 1.0 <= self.min_factor <= self.max_factor:
            raise InvalidParameterError(
                "need 1 <= min_factor <= max_factor, got "
                f"{self.min_factor} / {self.max_factor}"
            )
        if not self.mean_duration > 0.0:
            raise InvalidParameterError(
                f"mean_duration must be > 0, got {self.mean_duration}"
            )
        object.__setattr__(self, "kinds", kinds)

    def describe_token(self) -> str:
        """Stable parameter fingerprint for scenario ``describe()`` dicts."""
        return (
            f"process(rate={self.rate!r},kinds={','.join(self.kinds)},"
            f"factor=[{self.min_factor!r},{self.max_factor!r}],"
            f"mean_duration={self.mean_duration!r})"
        )

    def materialize(
        self,
        rng: "np.random.Generator",
        *,
        horizon: float,
        member_nodes: tuple[int, ...],
    ) -> FaultPlan:
        """Draw the explicit plan for one run.

        Parameters
        ----------
        rng:
            The dedicated fault stream (scenarios build it from
            ``SeedSequence([seed, FAULT_SEED_SALT])``).
        horizon:
            Scenario ``total_time``; events open in ``[0, horizon)``.
        member_nodes:
            Node count per fleet member — ``(n,)`` for a single cluster.
            Node-level events draw a node uniformly within the targeted
            member; single-member plans store ``member=None`` so they
            stay interchangeable with hand-written cluster plans.

        The draw order per event is fixed (time, kind, member, node,
        factor, duration), so one seed always replays one stream.
        """
        if not horizon > 0.0:
            raise InvalidParameterError(f"horizon must be > 0, got {horizon}")
        if not member_nodes or any(n < 1 for n in member_nodes):
            raise InvalidParameterError(
                f"member_nodes must be positive counts, got {member_nodes!r}"
            )
        n_members = len(member_nodes)
        count = int(rng.poisson(self.rate * horizon))
        mean_len = self.mean_duration * horizon
        events = []
        for _ in range(count):
            time = float(rng.uniform(0.0, horizon))
            kind = self.kinds[int(rng.integers(len(self.kinds)))]
            member_index = int(rng.integers(n_members)) if n_members > 1 else 0
            member = member_index if n_members > 1 else None
            node: int | None = None
            if kind != "blackout":
                node = int(rng.integers(member_nodes[member_index]))
            factor = 1.0
            if kind in ("slowdown", "degrade"):
                factor = float(rng.uniform(self.min_factor, self.max_factor))
            duration = min(float(rng.exponential(mean_len)), horizon)
            duration = max(duration, mean_len * 1e-6)
            events.append(
                FaultEvent(
                    time=time,
                    kind=kind,
                    duration=duration,
                    node=node,
                    member=member,
                    factor=factor,
                )
            )
        return FaultPlan(tuple(events))
