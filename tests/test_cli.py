"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.errors import InvalidParameterError


class TestListCommands:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "fig16h" in out

    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("EDF-DLT", "FIFO-OPR-MN", "EDF-UserSplit"):
            assert name in out


class TestRunPoint:
    def test_default_point(self, capsys):
        code = main(
            [
                "run-point",
                "--algorithm",
                "EDF-DLT",
                "--total-time",
                "30000",
                "--load",
                "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "task reject ratio" in out
        assert "all invariants held" in out

    def test_unknown_algorithm_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["run-point", "--algorithm", "EDF-NOPE"])

    def test_json_output(self, capsys):
        code = main(["run-point", "--total-time", "20000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "EDF-DLT"
        assert 0.0 <= payload["reject_ratio"] <= 1.0
        assert "invariants" in payload["validation"]

    def test_sim_flags_accepted(self, capsys):
        code = main(
            [
                "run-point",
                "--total-time",
                "20000",
                "--eager-release",
                "--shared-head-link",
                "--json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["arrivals"] > 0


class TestRunFigure:
    def test_table_output(self, capsys):
        code = main(
            [
                "run-figure",
                "fig3a",
                "--total-time",
                "30000",
                "--replications",
                "1",
                "--loads",
                "0.4",
                "0.8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert "EDF-OPR-MN" in out

    def test_csv_output(self, capsys):
        code = main(
            [
                "run-figure",
                "fig5a",
                "--csv",
                "--total-time",
                "30000",
                "--replications",
                "1",
                "--loads",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("system_load,")
        assert "EDF-UserSplit_mean" in out

    def test_unknown_panel(self):
        with pytest.raises(SystemExit):
            main(["run-figure", "fig99z"])

    def test_workers_option(self, capsys):
        code = main(
            [
                "run-figure",
                "fig3a",
                "--total-time",
                "20000",
                "--replications",
                "1",
                "--loads",
                "0.5",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "fig3a" in capsys.readouterr().out


class TestRunScenario:
    def test_default_table(self, capsys):
        code = main(
            [
                "run-scenario",
                "--total-time",
                "20000",
                "--replications",
                "2",
                "--load",
                "0.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PoissonProcess" in out
        assert "EDF-DLT" in out
        assert "reject_ratio" in out

    def test_multiple_algorithms_json(self, capsys):
        code = main(
            [
                "run-scenario",
                "--algorithm",
                "EDF-DLT",
                "--algorithm",
                "EDF-OPR-MN",
                "--total-time",
                "20000",
                "--replications",
                "2",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4
        assert {r["algorithm"] for r in rows} == {"EDF-DLT", "EDF-OPR-MN"}
        assert all("reject_ratio" in r for r in rows)

    def test_composed_models_csv(self, capsys):
        code = main(
            [
                "run-scenario",
                "--arrivals",
                "bursty",
                "--sizes",
                "pareto",
                "--deadlines",
                "proportional",
                "--total-time",
                "20000",
                "--replications",
                "2",
                "--workers",
                "2",
                "--csv",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3  # header + 2 replications
        assert "scenario_arrivals" in lines[0]
        assert "MMPPProcess" in lines[1]

    def test_trace_arrivals(self, capsys, tmp_path):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("100.0\n5000.0\n9000.0\n")
        code = main(
            [
                "run-scenario",
                "--arrivals",
                "trace",
                "--trace-file",
                str(trace),
                "--total-time",
                "20000",
                "--replications",
                "1",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["arrivals"] == 3

    def test_bad_metric_fails_fast(self):
        with pytest.raises(InvalidParameterError, match="valid metrics"):
            main(["run-scenario", "--metric", "not_a_metric", "--total-time", "20000"])

    def test_csv_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "arrivals.csv"
        trace.write_text("task_id,arrival_time\n0,100.0\n1,5000.0\n2,9000.0\n")
        code = main(
            [
                "run-scenario",
                "--arrivals",
                "trace",
                "--trace-file",
                str(trace),
                "--total-time",
                "20000",
                "--replications",
                "1",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["arrivals"] == 3


class TestHeterogeneousCli:
    def test_run_point_cps_vector(self, capsys):
        code = main(
            [
                "run-point",
                "--cps-vector",
                *(str(v) for v in (60, 80, 100, 120, 160, 200)),
                "--total-time",
                "20000",
                "--load",
                "0.5",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "all invariants held" in payload["validation"]

    def test_run_scenario_speed_spread(self, capsys):
        code = main(
            [
                "run-scenario",
                "--speed-spread",
                "0.8",
                "--total-time",
                "20000",
                "--replications",
                "1",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["scenario_heterogeneous"] == 1
        assert isinstance(rows[0]["scenario_cps"], str)  # vector export

    def test_vectors_exclusive_with_spread(self):
        with pytest.raises(InvalidParameterError, match="speed-spread"):
            main(
                [
                    "run-point",
                    "--cps-vector",
                    "50",
                    "100",
                    "--speed-spread",
                    "0.5",
                    "--total-time",
                    "20000",
                ]
            )

    def test_explicit_nodes_must_match_vector_length(self):
        with pytest.raises(InvalidParameterError, match="contradicts"):
            main(
                [
                    "run-point",
                    "--nodes",
                    "8",
                    "--cms-vector",
                    "1",
                    "1",
                    "1",
                    "--total-time",
                    "20000",
                ]
            )

    def test_mismatched_vector_lengths_rejected(self):
        with pytest.raises(InvalidParameterError, match="length"):
            main(
                [
                    "run-point",
                    "--cps-vector",
                    "50",
                    "100",
                    "--cms-vector",
                    "1",
                    "--total-time",
                    "20000",
                ]
            )


class TestSweepCommand:
    def test_spread_sweep_table(self, capsys):
        code = main(
            [
                "sweep",
                "--values",
                "0",
                "0.5",
                "--nodes",
                "6",
                "--total-time",
                "20000",
                "--replications",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spread" in out
        assert "EDF-DLT" in out and "EDF-OPR-MN" in out

    def test_spread_sweep_csv(self, capsys):
        code = main(
            [
                "sweep",
                "--values",
                "0",
                "1.0",
                "--nodes",
                "6",
                "--total-time",
                "20000",
                "--replications",
                "1",
                "--algorithm",
                "EDF-DLT",
                "--csv",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "speed_spread,EDF-DLT"
        assert len(lines) == 3


class TestNodeOrderSweepCli:
    def test_node_order_axis_table(self, capsys):
        code = main(
            [
                "sweep",
                "--axis",
                "node-order",
                "--values",
                "0",
                "0.8",
                "--nodes",
                "6",
                "--total-time",
                "15000",
                "--replications",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "axis=node-order" in out and "algorithm=EDF-DLT" in out
        for order in ("availability", "fastest-first", "bandwidth-first"):
            assert order in out

    def test_node_order_axis_csv(self, capsys):
        code = main(
            [
                "sweep",
                "--axis",
                "node-order",
                "--values",
                "0.5",
                "--nodes",
                "6",
                "--total-time",
                "15000",
                "--replications",
                "1",
                "--csv",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "speed_spread,availability,fastest-first,bandwidth-first"
        assert len(lines) == 2


class TestFleetLearnCli:
    _BASE = [
        "fleet",
        "--clusters",
        "2",
        "--nodes",
        "4",
        "--cluster-spread",
        "0.6",
        "--total-time",
        "15000",
        "--replications",
        "1",
    ]

    def test_bandit_policy_with_knobs(self, capsys):
        code = main(
            self._BASE
            + [
                "--policy",
                "epsilon-greedy",
                "--learn-epsilon",
                "0.2",
                "--learn-reward",
                "slack-weighted",
                "--learn-arms",
                "round-robin",
                "least-loaded",
                "--per-cluster",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epsilon-greedy" in out
        assert "learned[slack-weighted]" in out
        assert "round-robin:" in out and "least-loaded:" in out

    def test_bandit_json_carries_learn_coordinates(self, capsys):
        code = main(
            self._BASE + ["--policy", "ucb1", "--policy", "round-robin", "--json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        by_policy = {row["policy"]: row for row in rows}
        assert by_policy["ucb1"]["scenario_learn_mode"] == "policies"
        assert by_policy["ucb1"]["learning_regret"] >= 0.0
        assert by_policy["round-robin"]["learning_regret"] == 0.0

    def test_clusters_mode(self, capsys):
        code = main(
            self._BASE
            + ["--policy", "thompson", "--learn-mode", "clusters", "--per-cluster"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster-0" in out and "cluster-1" in out

    def test_learning_regret_metric(self, capsys):
        code = main(
            self._BASE + ["--policy", "ucb1", "--metric", "learning_regret"]
        )
        assert code == 0
        assert "learning_regret" in capsys.readouterr().out


class TestTraceSummaryCli:
    def test_table_output(self, capsys, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text(
            "arrival_time,sigma\n10.0,100.0\n20.0,200.0\n40.0,300.0\n",
            encoding="utf-8",
        )
        code = main(["trace-summary", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "arrivals             : 3" in out
        assert "burstiness" in out
        assert "sigma" in out

    def test_json_output(self, capsys, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text("5.0\n15.0\n35.0\n", encoding="utf-8")
        code = main(["trace-summary", str(trace), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 3
        assert payload["mean_gap"] == 15.0

    def test_custom_column(self, capsys, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text("t,other\n1.0,x\n2.0,y\n", encoding="utf-8")
        assert main(["trace-summary", str(trace), "--column", "t", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 2

    def test_bad_trace_raises(self, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text("5.0\n4.0\n", encoding="utf-8")
        with pytest.raises(InvalidParameterError):
            main(["trace-summary", str(trace)])
