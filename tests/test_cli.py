"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListCommands:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "fig16h" in out

    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("EDF-DLT", "FIFO-OPR-MN", "EDF-UserSplit"):
            assert name in out


class TestRunPoint:
    def test_default_point(self, capsys):
        code = main(
            [
                "run-point",
                "--algorithm",
                "EDF-DLT",
                "--total-time",
                "30000",
                "--load",
                "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "task reject ratio" in out
        assert "all invariants held" in out

    def test_unknown_algorithm_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["run-point", "--algorithm", "EDF-NOPE"])


class TestRunFigure:
    def test_table_output(self, capsys):
        code = main(
            [
                "run-figure",
                "fig3a",
                "--total-time",
                "30000",
                "--replications",
                "1",
                "--loads",
                "0.4",
                "0.8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert "EDF-OPR-MN" in out

    def test_csv_output(self, capsys):
        code = main(
            [
                "run-figure",
                "fig5a",
                "--csv",
                "--total-time",
                "30000",
                "--replications",
                "1",
                "--loads",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("system_load,")
        assert "EDF-UserSplit_mean" in out

    def test_unknown_panel(self):
        with pytest.raises(SystemExit):
            main(["run-figure", "fig99z"])
