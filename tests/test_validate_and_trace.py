"""Tests for the runtime validator and trace rendering."""

from __future__ import annotations

import pytest

from repro.core.errors import TheoremViolationError
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord
from repro.sim.trace import ChunkTrace, TaskTrace, render_gantt
from repro.sim.validate import ExecutionValidator


def record(est=100.0, actual=95.0, arrival=0.0, deadline=200.0):
    return TaskRecord(
        task=DivisibleTask(task_id=0, arrival=arrival, sigma=1.0, deadline=deadline),
        outcome=TaskOutcome.ACCEPTED,
        est_completion=est,
        actual_completion=actual,
    )


def chunk(task_id=0, node=0, pos=0, ts=0.0, te=1.0, ce=2.0, alpha=1.0):
    return ChunkTrace(
        task_id=task_id,
        node_id=node,
        position=pos,
        alpha=alpha,
        release=ts,
        trans_start=ts,
        trans_end=te,
        comp_end=ce,
    )


class TestValidator:
    def test_ok_path(self):
        v = ExecutionValidator(strict=True)
        v.check_completion(record())
        assert v.report.ok
        assert v.report.checked_tasks == 1
        assert "all invariants held" in v.report.summary()

    def test_theorem4_violation_strict_raises(self):
        v = ExecutionValidator(strict=True)
        with pytest.raises(TheoremViolationError, match="Theorem 4"):
            v.check_completion(record(est=100.0, actual=120.0))

    def test_theorem4_violation_nonstrict_records(self):
        v = ExecutionValidator(strict=False)
        v.check_completion(record(est=100.0, actual=120.0))
        assert not v.report.ok
        assert len(v.report.theorem4_violations) == 1
        assert "Theorem-4" in v.report.summary()

    def test_deadline_violation_detected(self):
        v = ExecutionValidator(strict=False)
        v.check_completion(record(est=100.0, actual=99.0, deadline=50.0))
        assert len(v.report.deadline_violations) == 1

    def test_float_tolerance(self):
        v = ExecutionValidator(strict=True)
        v.check_completion(record(est=100.0, actual=100.0 + 1e-9))  # within tol

    def test_overlap_detection(self):
        v = ExecutionValidator(strict=False)
        traces = [
            TaskTrace(task_id=0, method="opr", chunks=(chunk(ts=0.0, te=1.0, ce=5.0),)),
            TaskTrace(
                task_id=1, method="opr", chunks=(chunk(task_id=1, ts=3.0, te=4.0, ce=8.0),)
            ),
        ]
        v.check_traces(traces, nodes=1)
        assert len(v.report.overlap_violations) == 1

    def test_no_overlap_passes(self):
        v = ExecutionValidator(strict=True)
        traces = [
            TaskTrace(task_id=0, method="opr", chunks=(chunk(ts=0.0, te=1.0, ce=5.0),)),
            TaskTrace(
                task_id=1, method="opr", chunks=(chunk(task_id=1, ts=5.0, te=6.0, ce=9.0),)
            ),
        ]
        v.check_traces(traces, nodes=1)
        assert v.report.ok


class TestGantt:
    def test_empty(self):
        assert render_gantt([], nodes=2) == "(no executed chunks)"

    def test_renders_rows_per_node(self):
        traces = [
            TaskTrace(
                task_id=3,
                method="dlt-iit",
                chunks=(
                    chunk(task_id=3, node=0, ts=0.0, te=2.0, ce=6.0),
                    chunk(task_id=3, node=1, pos=1, ts=2.0, te=4.0, ce=8.0),
                ),
            )
        ]
        art = render_gantt(traces, nodes=2, width=40)
        lines = art.splitlines()
        assert len(lines) == 3  # header + 2 node rows
        assert lines[1].startswith("P1")
        assert "3" in lines[1]  # task id marker
        assert "#" in lines[1]  # computation
