"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind


class TestOrdering:
    def test_time_order(self):
        eng = SimulationEngine()
        seen = []
        for t in (3.0, 1.0, 2.0):
            eng.schedule(t, EventKind.GENERIC, lambda e, now: seen.append(now))
        eng.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_kind_priority_at_equal_time(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule(1.0, EventKind.ARRIVAL, lambda e, t: seen.append("arrival"))
        eng.schedule(1.0, EventKind.COMPLETION, lambda e, t: seen.append("completion"))
        eng.schedule(1.0, EventKind.START, lambda e, t: seen.append("start"))
        eng.run()
        assert seen == ["completion", "start", "arrival"]

    def test_insertion_order_within_kind(self):
        eng = SimulationEngine()
        seen = []
        for i in range(5):
            eng.schedule(1.0, EventKind.GENERIC, lambda e, t, i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=64))
    def test_monotone_clock(self, times):
        eng = SimulationEngine()
        stamps = []
        for t in times:
            eng.schedule(t, EventKind.GENERIC, lambda e, now: stamps.append(now))
        eng.run()
        assert stamps == sorted(stamps)


class TestScheduling:
    def test_schedule_in_past_raises(self):
        eng = SimulationEngine()
        eng.schedule(5.0, EventKind.GENERIC, lambda e, t: None)
        eng.run()
        assert eng.now == 5.0
        with pytest.raises(SimulationError):
            eng.schedule(4.0, EventKind.GENERIC, lambda e, t: None)

    def test_schedule_at_now_from_callback(self):
        eng = SimulationEngine()
        seen = []

        def first(e, t):
            e.schedule(t, EventKind.GENERIC, lambda e2, t2: seen.append(t2))

        eng.schedule(2.0, EventKind.GENERIC, first)
        eng.run()
        assert seen == [2.0]

    def test_nonfinite_time_rejected(self):
        eng = SimulationEngine()
        with pytest.raises(SimulationError):
            eng.schedule(float("inf"), EventKind.GENERIC, lambda e, t: None)
        with pytest.raises(SimulationError):
            eng.schedule(float("nan"), EventKind.GENERIC, lambda e, t: None)

    def test_cancel(self):
        eng = SimulationEngine()
        seen = []
        h = eng.schedule(1.0, EventKind.GENERIC, lambda e, t: seen.append("a"))
        eng.schedule(2.0, EventKind.GENERIC, lambda e, t: seen.append("b"))
        h.cancel()
        eng.run()
        assert seen == ["b"]
        assert eng.processed_events == 1

    def test_pending_count_excludes_cancelled(self):
        eng = SimulationEngine()
        h1 = eng.schedule(1.0, EventKind.GENERIC, lambda e, t: None)
        eng.schedule(2.0, EventKind.GENERIC, lambda e, t: None)
        h1.cancel()
        assert eng.pending_events == 1

    def test_cancel_is_idempotent_and_inert_after_execution(self):
        eng = SimulationEngine()
        h = eng.schedule(1.0, EventKind.GENERIC, lambda e, t: None)
        h.cancel()
        h.cancel()  # double-cancel counts once
        assert eng.pending_events == 0
        h2 = eng.schedule(2.0, EventKind.GENERIC, lambda e, t: None)
        eng.run()
        h2.cancel()  # cancelling an executed event must not corrupt the count
        assert eng.pending_events == 0
        assert eng.processed_events == 1


class TestCompaction:
    def test_heavy_cancellation_compacts_heap(self):
        from repro.sim.engine import COMPACT_MIN_EVENTS

        eng = SimulationEngine()
        n = 4 * COMPACT_MIN_EVENTS
        handles = [
            eng.schedule(float(i + 1), EventKind.GENERIC, lambda e, t: None)
            for i in range(n)
        ]
        cancelled = n // 2 + 1  # just past the >50% threshold
        for h in handles[:cancelled]:
            h.cancel()
        assert eng.pending_events == n - cancelled
        assert len(eng._heap) == n - cancelled  # dead entries physically gone

    def test_compaction_preserves_execution_order(self):
        from repro.sim.engine import COMPACT_MIN_EVENTS

        eng = SimulationEngine()
        n = 4 * COMPACT_MIN_EVENTS
        seen: list[float] = []
        handles = [
            eng.schedule(float(i + 1), EventKind.GENERIC, lambda e, t: seen.append(t))
            for i in range(n)
        ]
        for h in handles[::2]:  # every even-indexed event dies
            h.cancel()
        eng.run()
        assert seen == [float(i + 1) for i in range(1, n, 2)]
        assert eng.pending_events == 0

    def test_small_heaps_stay_lazy(self):
        from repro.sim.engine import COMPACT_MIN_EVENTS

        eng = SimulationEngine()
        n = COMPACT_MIN_EVENTS // 2
        handles = [
            eng.schedule(float(i + 1), EventKind.GENERIC, lambda e, t: None)
            for i in range(n)
        ]
        for h in handles:
            h.cancel()
        assert eng.pending_events == 0
        assert len(eng._heap) == n  # below the floor: drained lazily
        eng.run()
        assert eng.processed_events == 0


class TestRunUntil:
    def test_horizon_stops_before_later_events(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule(1.0, EventKind.GENERIC, lambda e, t: seen.append(t))
        eng.schedule(10.0, EventKind.GENERIC, lambda e, t: seen.append(t))
        eng.run(until=5.0)
        assert seen == [1.0]
        assert eng.now == 5.0
        eng.run()  # drain the rest
        assert seen == [1.0, 10.0]

    def test_until_in_past_raises(self):
        eng = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.run(until=5.0)

    def test_cascading_events(self):
        """Events scheduling events: a 1000-step chain runs to the end."""
        eng = SimulationEngine()
        counter = []

        def step(e, t):
            counter.append(t)
            if len(counter) < 1000:
                e.schedule(t + 1.0, EventKind.GENERIC, step)

        eng.schedule(0.0, EventKind.GENERIC, step)
        eng.run()
        assert len(counter) == 1000
        assert eng.now == 999.0

    def test_not_reentrant(self):
        eng = SimulationEngine()

        def evil(e, t):
            e.run()

        eng.schedule(1.0, EventKind.GENERIC, evil)
        with pytest.raises(SimulationError, match="not reentrant"):
            eng.run()
