"""Tests for the multi-round extension (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import ALGORITHMS, make_algorithm
from repro.core.cluster import ClusterSpec
from repro.core.errors import InvalidParameterError
from repro.core.task import DivisibleTask
from repro.ext.multiround import (
    MultiRoundPartitioner,
    register_multiround,
    simulate_rounds,
)
from repro.experiments.runner import simulate
from repro.sim.cluster_sim import ClusterSimulation
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import SimulationConfig


def task(tid=0, arrival=0.0, sigma=100.0, deadline=20_000.0):
    return DivisibleTask(task_id=tid, arrival=arrival, sigma=sigma, deadline=deadline)


CLUSTER = ClusterSpec(nodes=4, cms=1.0, cps=10.0)


class TestSimulateRounds:
    def test_single_round_single_node(self):
        chunks = simulate_rounds(100.0, np.array([5.0]), 1.0, 10.0, 1)
        assert len(chunks) == 1
        c = chunks[0]
        assert c.trans_start == pytest.approx(5.0)
        assert c.trans_end == pytest.approx(105.0)
        assert c.comp_end == pytest.approx(1105.0)

    def test_chunk_count(self):
        chunks = simulate_rounds(100.0, np.zeros(3), 1.0, 10.0, 4)
        assert len(chunks) == 12
        assert sum(c.alpha for c in chunks) == pytest.approx(1.0)

    def test_head_serialization(self):
        """Transmission windows never overlap (single head within task)."""
        chunks = simulate_rounds(100.0, np.array([0.0, 50.0]), 1.0, 10.0, 3)
        windows = sorted((c.trans_start, c.trans_end) for c in chunks)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1 - 1e-9

    def test_node_never_receives_while_computing(self):
        chunks = simulate_rounds(120.0, np.zeros(2), 1.0, 10.0, 5)
        per_node: dict[int, list] = {}
        for c in chunks:
            per_node.setdefault(c.position, []).append(c)
        for cs in per_node.values():
            cs.sort(key=lambda c: c.round_index)
            for a, b in zip(cs, cs[1:]):
                assert b.trans_start >= a.comp_end - 1e-9

    @given(
        sigma=st.floats(min_value=1, max_value=1000),
        rounds=st.integers(min_value=1, max_value=8),
        stagger=st.floats(min_value=0, max_value=500),
    )
    @settings(max_examples=100)
    def test_more_rounds_never_slower(self, sigma, rounds, stagger):
        """Extra rounds can only improve (or match) uniform completion."""
        releases = np.array([0.0, stagger, stagger * 2])
        done_1 = max(
            c.comp_end for c in simulate_rounds(sigma, releases, 1.0, 10.0, rounds)
        )
        done_2 = max(
            c.comp_end
            for c in simulate_rounds(sigma, releases, 1.0, 10.0, rounds * 2)
        )
        assert done_2 <= done_1 * (1 + 1e-9)

    def test_invalid_rounds(self):
        with pytest.raises(InvalidParameterError):
            simulate_rounds(10.0, np.zeros(2), 1.0, 10.0, 0)


class TestMultiRoundPartitioner:
    def test_plan_estimate_is_exact_in_execution(self):
        """The recursion is the dispatch ⇒ actual == estimate."""
        register_multiround(rounds=4)
        cfg = SimulationConfig(
            nodes=8,
            cms=1.0,
            cps=100.0,
            system_load=0.6,
            avg_sigma=100.0,
            dc_ratio=2.0,
            total_time=60_000.0,
            seed=9,
        )
        result = simulate(cfg, "EDF-MR-DLT", trace=True)
        assert result.output.validation.ok
        for rec in result.output.records.values():
            if rec.actual_completion is not None:
                assert rec.actual_completion == pytest.approx(
                    rec.est_completion, rel=1e-9
                )

    def test_rejects_infeasible(self):
        p = MultiRoundPartitioner(rounds=4)
        t = task(sigma=100.0, deadline=90.0)  # below sigma*cms
        assert p.place(t, np.zeros(4), CLUSTER, now=0.0) is None

    def test_register_idempotent(self):
        register_multiround(rounds=4)
        register_multiround(rounds=4)
        assert "EDF-MR-DLT" in ALGORITHMS
        assert "FIFO-MR-DLT" in ALGORITHMS
        inst = make_algorithm("EDF-MR-DLT")
        assert isinstance(inst.partitioner, MultiRoundPartitioner)

    def test_multiround_beats_single_round_equal_split(self):
        """With staggered releases, 4 rounds completes no later than 1."""
        releases = np.array([0.0, 0.0, 300.0, 300.0])
        p1 = MultiRoundPartitioner(rounds=1)
        p4 = MultiRoundPartitioner(rounds=4)
        t = task(sigma=200.0, deadline=30_000.0)
        avail = np.concatenate([releases, np.full(0, 0.0)])
        plan1 = p1.place(t, releases, CLUSTER, now=0.0)
        plan4 = p4.place(t, releases, CLUSTER, now=0.0)
        assert plan1 is not None and plan4 is not None
        assert plan4.est_completion <= plan1.est_completion * (1 + 1e-9)

    def test_shared_link_mode_rejected_for_explicit_plans(self):
        register_multiround(rounds=2)
        gen = WorkloadGenerator(
            SimulationConfig(
                nodes=4,
                cms=1.0,
                cps=100.0,
                system_load=0.5,
                avg_sigma=100.0,
                dc_ratio=3.0,
                total_time=30_000.0,
                seed=2,
            )
        )
        tasks = gen.generate()
        sim = ClusterSimulation(
            ClusterSpec(nodes=4, cms=1.0, cps=100.0),
            make_algorithm("EDF-MR-DLT"),
            tasks,
            horizon=30_000.0,
            shared_head_link=True,
        )
        if tasks:  # at least one task must start for the error to fire
            with pytest.raises(InvalidParameterError):
                sim.run()
