"""Tests for the three partitioning strategies (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dlt
from repro.core.cluster import ClusterSpec
from repro.core.errors import InvalidParameterError
from repro.core.partition import (
    DltIitPartitioner,
    OprPartitioner,
    PlacementPlan,
    UserSplitPartitioner,
    feasible_by,
)
from repro.core.task import DivisibleTask


def task(tid=0, arrival=0.0, sigma=100.0, deadline=10_000.0):
    return DivisibleTask(task_id=tid, arrival=arrival, sigma=sigma, deadline=deadline)


CLUSTER = ClusterSpec(nodes=8, cms=1.0, cps=100.0)
ALL_FREE = np.zeros(8)


class TestPlacementPlanValidation:
    def _kwargs(self):
        return dict(
            task=task(),
            method="opr",
            node_ids=(0, 1),
            release_times=(0.0, 0.0),
            dispatch_releases=(0.0, 0.0),
            alphas=(0.5, 0.5),
            est_completion=100.0,
        )

    def test_valid(self):
        plan = PlacementPlan(**self._kwargs())
        assert plan.n == 2
        assert plan.start_time == 0.0
        assert plan.rn == 0.0

    def test_duplicate_nodes_rejected(self):
        kw = self._kwargs()
        kw["node_ids"] = (1, 1)
        with pytest.raises(InvalidParameterError):
            PlacementPlan(**kw)

    def test_mismatched_lengths_rejected(self):
        kw = self._kwargs()
        kw["alphas"] = (1.0,)
        with pytest.raises(InvalidParameterError):
            PlacementPlan(**kw)

    def test_empty_rejected(self):
        kw = self._kwargs()
        kw["node_ids"] = ()
        kw["release_times"] = ()
        kw["dispatch_releases"] = ()
        kw["alphas"] = ()
        with pytest.raises(InvalidParameterError):
            PlacementPlan(**kw)


class TestFeasibleBy:
    def test_exact_boundary_passes(self):
        assert feasible_by(100.0, 100.0)

    def test_ulp_over_passes(self):
        assert feasible_by(100.0 + 1e-10, 100.0)

    def test_clearly_over_fails(self):
        assert not feasible_by(100.1, 100.0)


class TestDltIitPartitioner:
    def test_all_free_reduces_to_opr_estimate(self):
        """No stagger ⇒ DLT-IIT estimate equals OPR's r_n + E."""
        p = DltIitPartitioner()
        t = task(sigma=200.0, deadline=5000.0)
        plan = p.place(t, ALL_FREE, CLUSTER, now=0.0)
        assert plan is not None
        e = dlt.execution_time(200.0, plan.n, 1.0, 100.0)
        assert plan.est_completion == pytest.approx(e, rel=1e-9)

    def test_uses_ntilde_min_nodes(self):
        t = task(sigma=200.0, deadline=5000.0)
        plan = DltIitPartitioner().place(t, ALL_FREE, CLUSTER, now=0.0)
        want = dlt.min_nodes(200.0, 1.0, 100.0, 5000.0, max_nodes=8)
        assert plan is not None and plan.n == want

    def test_staggered_beats_opr_estimate(self):
        """With staggered releases DLT's estimate is strictly below OPR's."""
        # sigma=200, deadline 2950 ⇒ ñ_min = 8 (E(200,8) ≈ 2611 <= 2950
        # < E(200,7) ≈ 2972); three nodes free now, five free at t=100.
        avail = np.array([0.0, 0.0, 0.0, 100.0, 100.0, 100.0, 100.0, 100.0])
        t = task(sigma=200.0, deadline=2950.0)
        dlt_plan = DltIitPartitioner().place(t, avail, CLUSTER, now=0.0)
        opr_plan = OprPartitioner().place(t, avail, CLUSTER, now=0.0)
        assert dlt_plan is not None and opr_plan is not None
        assert dlt_plan.n == opr_plan.n == 8
        assert dlt_plan.rn == pytest.approx(100.0)
        assert dlt_plan.est_completion < opr_plan.est_completion

    def test_accepts_where_opr_rejects(self):
        """The paper's headline mechanism: Ê <= E flips marginal tasks.

        Build a scenario where r_n + Ê <= A + D < r_n + E.
        """
        cluster = ClusterSpec(nodes=4, cms=1.0, cps=100.0)
        sigma = 200.0
        # ñ_min(now) = 4 requires budget between E(σ,4) and E(σ,3).
        e4 = dlt.execution_time(sigma, 4, 1.0, 100.0)
        deadline = e4 * 1.02  # needs all 4 nodes, tiny slack
        # Three nodes free now, the fourth frees a bit later: OPR's start
        # waits for it and blows the deadline; DLT works during the wait.
        for wait in np.linspace(5.0, e4 * 0.02 + 50.0, 10):
            avail = np.array([0.0, 0.0, 0.0, wait])
            t = task(sigma=sigma, deadline=float(deadline))
            d = DltIitPartitioner().place(t, avail, cluster, now=0.0)
            o = OprPartitioner().place(t, avail, cluster, now=0.0)
            if d is not None and o is None:
                return  # found the paper's flip
        pytest.fail("no wait produced a DLT-accept / OPR-reject flip")

    def test_infeasible_deadline_rejected(self):
        t = task(sigma=200.0, deadline=150.0)  # below sigma*cms
        assert DltIitPartitioner().place(t, ALL_FREE, CLUSTER, now=0.0) is None

    def test_needs_more_than_cluster_rejected(self):
        # Budget barely above transmission: ñ_min far beyond 8 nodes.
        t = task(sigma=200.0, deadline=210.0)
        assert DltIitPartitioner().place(t, ALL_FREE, CLUSTER, now=0.0) is None

    def test_picks_earliest_available_nodes(self):
        avail = np.array([50.0, 0.0, 10.0, 999.0, 0.0, 999.0, 999.0, 999.0])
        t = task(sigma=200.0, deadline=4000.0)
        plan = DltIitPartitioner().place(t, avail, CLUSTER, now=0.0)
        assert plan is not None
        # Node ids sorted by availability with id tie-break: 1, 4, 2, 0, ...
        assert list(plan.node_ids[: min(plan.n, 4)]) == [1, 4, 2, 0][: plan.n]
        assert list(plan.release_times) == sorted(plan.release_times)

    def test_release_times_floored_at_arrival(self):
        avail = np.zeros(8)
        t = task(arrival=100.0, sigma=100.0, deadline=10_000.0)
        plan = DltIitPartitioner().place(t, avail, CLUSTER, now=100.0)
        assert plan is not None
        assert all(r >= 100.0 for r in plan.release_times)

    def test_all_nodes_variant_uses_whole_cluster(self):
        t = task(sigma=200.0, deadline=5000.0)
        plan = DltIitPartitioner(assign_all_nodes=True).place(
            t, ALL_FREE, CLUSTER, now=0.0
        )
        assert plan is not None and plan.n == 8

    def test_fixed_point_mode_plans_are_feasible(self):
        """Every fixed-point plan meets the deadline; modes agree on an
        idle cluster (no queueing ⇒ no circularity to resolve)."""
        rng = np.random.default_rng(5)
        one_shot = DltIitPartitioner()
        fixed = DltIitPartitioner(fixed_point_node_count=True)
        agreements = 0
        for _ in range(200):
            avail = rng.uniform(0, 2000, size=8)
            t = task(
                sigma=float(rng.uniform(20, 600)),
                deadline=float(rng.uniform(500, 6000)),
            )
            fp = fixed.place(t, avail, CLUSTER, now=0.0)
            if fp is not None:
                assert fp.est_completion <= t.absolute_deadline * (1 + 1e-9)
            # Idle cluster: identical decisions and node counts.
            os_idle = one_shot.place(t, ALL_FREE, CLUSTER, now=0.0)
            fp_idle = fixed.place(t, ALL_FREE, CLUSTER, now=0.0)
            if os_idle is None:
                assert fp_idle is None
            else:
                assert fp_idle is not None and fp_idle.n == os_idle.n
                agreements += 1
        assert agreements > 0  # the comparison was not vacuous


class TestOprPartitioner:
    def test_simultaneous_dispatch(self):
        avail = np.array([0.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        t = task(sigma=400.0, deadline=8000.0)
        plan = OprPartitioner().place(t, avail, CLUSTER, now=0.0)
        assert plan is not None
        # All dispatch releases equal r_n: the nodes wait for the last one.
        assert len(set(plan.dispatch_releases)) == 1
        assert plan.dispatch_releases[0] == pytest.approx(plan.rn)

    def test_estimate_is_rn_plus_e(self):
        t = task(sigma=200.0, deadline=5000.0)
        plan = OprPartitioner().place(t, ALL_FREE, CLUSTER, now=0.0)
        assert plan is not None
        e = dlt.execution_time(200.0, plan.n, 1.0, 100.0)
        assert plan.est_completion == pytest.approx(e, rel=1e-12)

    def test_geometric_alphas(self):
        t = task(sigma=200.0, deadline=5000.0)
        plan = OprPartitioner().place(t, ALL_FREE, CLUSTER, now=0.0)
        assert plan is not None
        assert np.allclose(
            plan.alphas, dlt.opr_alphas(plan.n, 1.0, 100.0), rtol=1e-12
        )

    def test_all_nodes_variant(self):
        t = task(sigma=200.0, deadline=5000.0)
        plan = OprPartitioner(assign_all_nodes=True).place(
            t, ALL_FREE, CLUSTER, now=0.0
        )
        assert plan is not None and plan.n == 8

    @given(
        sigma=st.floats(min_value=10, max_value=1000),
        deadline=st.floats(min_value=100, max_value=50_000),
        busy=st.lists(
            st.floats(min_value=0, max_value=3000), min_size=8, max_size=8
        ),
    )
    @settings(max_examples=150)
    def test_never_beats_dlt_estimate(self, sigma, deadline, busy):
        """Ê <= E pointwise ⇒ whenever both place, DLT's estimate wins."""
        avail = np.asarray(busy)
        t = task(sigma=sigma, deadline=deadline)
        d = DltIitPartitioner().place(t, avail, CLUSTER, now=0.0)
        o = OprPartitioner().place(t, avail, CLUSTER, now=0.0)
        if o is not None:
            assert d is not None, "DLT rejected where OPR accepted"
            assert d.est_completion <= o.est_completion * (1 + 1e-9)


class TestUserSplitPartitioner:
    def _partitioner(self, seed=1, **kw):
        return UserSplitPartitioner(rng=np.random.default_rng(seed), **kw)

    def test_min_nodes_user_formula(self):
        # N_min = ceil(sigma*Cps / (D - sigma*Cms)).
        t = task(sigma=100.0, deadline=3000.0)
        got = UserSplitPartitioner.min_nodes_user(t, CLUSTER)
        assert got == int(np.ceil(100.0 * 100.0 / (3000.0 - 100.0)))

    def test_min_nodes_user_infeasible(self):
        assert (
            UserSplitPartitioner.min_nodes_user(
                task(sigma=100.0, deadline=100.0), CLUSTER
            )
            is None
        )
        # N_min > N ⇒ None.
        assert (
            UserSplitPartitioner.min_nodes_user(
                task(sigma=100.0, deadline=101.0), CLUSTER
            )
            is None
        )

    def test_equal_chunks(self):
        p = self._partitioner()
        t = task(sigma=100.0, deadline=20_000.0)
        plan = p.place(t, ALL_FREE, CLUSTER, now=0.0)
        assert plan is not None
        assert np.allclose(plan.alphas, 1.0 / plan.n)

    def test_draw_within_range_and_sticky(self):
        p = self._partitioner()
        t = task(sigma=100.0, deadline=20_000.0)
        p.on_task_arrival(t, CLUSTER)
        n1 = p.requested_nodes(0)
        n_min = UserSplitPartitioner.min_nodes_user(t, CLUSTER)
        assert n_min is not None and n_min <= n1 <= CLUSTER.nodes
        # Sticky across re-planning (default mode).
        for _ in range(5):
            plan = p.place(t, ALL_FREE, CLUSTER, now=0.0)
            assert plan is not None and plan.n == n1

    def test_redraw_mode_rerolls(self):
        p = self._partitioner(seed=3, redraw_on_replan=True)
        t = task(sigma=100.0, deadline=20_000.0)
        seen = set()
        for _ in range(40):
            plan = p.place(t, ALL_FREE, CLUSTER, now=0.0)
            assert plan is not None
            seen.add(plan.n)
        assert len(seen) > 1  # the request does get re-rolled

    def test_eq15_completion(self):
        """Hand-check the s_i recursion of Eq. 15."""
        p = self._partitioner()
        t = task(sigma=80.0, deadline=50_000.0)
        p._requested[t.task_id] = 4  # pin n for the hand computation
        avail = np.array([0.0, 0.0, 50.0, 100.0, 1e9, 1e9, 1e9, 1e9])
        plan = p.place(t, avail, CLUSTER, now=0.0)
        assert plan is not None
        chunk_cms = 80.0 * 1.0 / 4  # 20
        chunk_cps = 80.0 * 100.0 / 4  # 2000
        # s1=0, s2=max(0,20)=20, s3=max(50,40)=50, s4=max(100,70)=100.
        assert plan.est_completion == pytest.approx(100.0 + chunk_cms + chunk_cps)

    def test_infeasible_task_rejected_and_consumes_draw(self):
        p = self._partitioner()
        bad = task(tid=0, sigma=100.0, deadline=50.0)  # D < sigma*cms
        good = task(tid=1, sigma=100.0, deadline=20_000.0)
        p.on_task_arrival(bad, CLUSTER)
        p.on_task_arrival(good, CLUSTER)
        assert p.requested_nodes(0) is None
        assert p.place(bad, ALL_FREE, CLUSTER, now=0.0) is None
        assert p.place(good, ALL_FREE, CLUSTER, now=0.0) is not None

    def test_deadline_check_respects_queueing(self):
        p = self._partitioner()
        t = task(sigma=100.0, deadline=10_200.0)
        p._requested[t.task_id] = 1
        # One node: completion = r_1 + sigma*(cms+cps) = r_1 + 10100.
        assert p.place(t, np.zeros(8), CLUSTER, now=0.0) is not None
        late = np.full(8, 200.0)
        assert p.place(t, late, CLUSTER, now=0.0) is None  # 200+10100 > 10200
