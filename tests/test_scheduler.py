"""Tests for the online dynamic scheduler (arrival → start → completion)."""

from __future__ import annotations

import pytest

from repro.core.algorithms import make_algorithm
from repro.core.cluster import ClusterSpec
from repro.core.errors import ScheduleConsistencyError
from repro.core.scheduler import ClusterScheduler
from repro.core.task import DivisibleTask, TaskOutcome


def task(tid, arrival=0.0, sigma=100.0, deadline=20_000.0):
    return DivisibleTask(task_id=tid, arrival=arrival, sigma=sigma, deadline=deadline)


CLUSTER = ClusterSpec(nodes=4, cms=1.0, cps=100.0)


def make_scheduler(algorithm="EDF-DLT", **kw):
    inst = make_algorithm(algorithm)
    return ClusterScheduler(CLUSTER, inst.policy, inst.partitioner, **kw)


class TestArrival:
    def test_accept_produces_directives(self):
        s = make_scheduler()
        decision, directives = s.on_arrival(task(0), now=0.0)
        assert decision.accepted
        assert len(directives) == 1
        assert directives[0].task_id == 0
        assert directives[0].version == s.plan_version
        assert s.stats.accepted == 1 and s.stats.rejected == 0

    def test_reject_records_outcome(self):
        s = make_scheduler()
        decision, directives = s.on_arrival(task(0, deadline=50.0), now=0.0)
        assert not decision.accepted
        assert directives == []
        assert s.records[0].outcome is TaskOutcome.REJECTED
        assert s.stats.reject_ratio == pytest.approx(1.0)

    def test_duplicate_arrival_rejected(self):
        s = make_scheduler()
        s.on_arrival(task(0), now=0.0)
        with pytest.raises(ScheduleConsistencyError):
            s.on_arrival(task(0), now=1.0)

    def test_rejection_preserves_previous_plans(self):
        s = make_scheduler()
        _, d1 = s.on_arrival(task(0), now=0.0)
        v1 = s.plan_version
        s.on_arrival(task(1, deadline=50.0), now=1.0)  # rejected
        assert s.plan_version == v1  # old directives stay valid
        plan = s.on_start(0, d1[0].version, now=max(d1[0].start_time, 1.0))
        assert plan is not None

    def test_time_cannot_run_backwards(self):
        s = make_scheduler()
        s.on_arrival(task(0), now=10.0)
        with pytest.raises(ScheduleConsistencyError):
            s.on_arrival(task(1, arrival=5.0), now=5.0)


class TestStart:
    def test_start_locks_task_and_reserves_nodes(self):
        s = make_scheduler()
        _, directives = s.on_arrival(task(0), now=0.0)
        d = directives[0]
        plan = s.on_start(d.task_id, d.version, now=d.start_time)
        assert plan is not None
        assert s.waiting_count == 0 and s.running_count == 1
        for node in plan.node_ids:
            assert s.reservations.release_times[node] == pytest.approx(
                plan.est_completion
            )

    def test_stale_version_dropped(self):
        s = make_scheduler()
        _, d1 = s.on_arrival(task(0), now=0.0)
        s.on_arrival(task(1, deadline=30_000.0), now=1.0)  # bumps version
        assert s.on_start(0, d1[0].version, now=2.0) is None  # stale
        assert s.waiting_count == 2  # still waiting under the new plans

    def test_unknown_task_dropped(self):
        s = make_scheduler()
        _, d = s.on_arrival(task(0), now=0.0)
        assert s.on_start(99, d[0].version, now=0.0) is None

    def test_replan_changes_order_under_edf(self):
        """An urgent newcomer overtakes a waiting relaxed task."""
        s = make_scheduler("EDF-OPR-MN")
        # Fill the cluster so both tasks must queue.
        _, d0 = s.on_arrival(task(0, sigma=400.0, deadline=60_000.0), now=0.0)
        s.on_start(d0[0].task_id, d0[0].version, now=d0[0].start_time)
        _, d1 = s.on_arrival(task(1, deadline=50_000.0), now=1.0)
        _, d2 = s.on_arrival(task(2, deadline=20_000.0), now=2.0)
        assert {x.task_id for x in d2} == {1, 2}
        starts = {x.task_id: x.start_time for x in d2}
        assert starts[2] <= starts[1]


class TestComplete:
    def _run_one(self, s):
        _, directives = s.on_arrival(task(0), now=0.0)
        d = directives[0]
        plan = s.on_start(d.task_id, d.version, now=d.start_time)
        return plan

    def test_complete_records_actual(self):
        s = make_scheduler()
        plan = self._run_one(s)
        rec = s.on_complete(0, plan.est_completion - 1.0)
        assert rec.actual_completion == pytest.approx(plan.est_completion - 1.0)
        assert s.running_count == 0

    def test_complete_unknown_task_raises(self):
        s = make_scheduler()
        with pytest.raises(ScheduleConsistencyError):
            s.on_complete(5, 1.0)

    def test_default_release_keeps_estimate(self):
        s = make_scheduler()
        plan = self._run_one(s)
        s.on_complete(0, plan.est_completion - 50.0)
        for node in plan.node_ids:
            assert s.reservations.release_times[node] == pytest.approx(
                plan.est_completion
            )

    def test_eager_release_shrinks_to_actual(self):
        s = make_scheduler(eager_release=True)
        plan = self._run_one(s)
        ends = tuple(plan.est_completion - 10.0 for _ in plan.node_ids)
        s.on_complete(0, plan.est_completion - 10.0, ends)
        for node in plan.node_ids:
            assert s.reservations.release_times[node] == pytest.approx(
                plan.est_completion - 10.0
            )

    def test_start_before_plan_time_raises(self):
        s = make_scheduler("EDF-OPR-MN")
        _, d0 = s.on_arrival(task(0, sigma=400.0, deadline=60_000.0), now=0.0)
        s.on_start(d0[0].task_id, d0[0].version, now=d0[0].start_time)
        _, d1 = s.on_arrival(task(1), now=1.0)
        queued = next(x for x in d1 if x.task_id == 1)
        if queued.start_time > 1.0:
            with pytest.raises(ScheduleConsistencyError):
                s.on_start(1, queued.version, now=1.0)
