"""Property suite: the optimized admission engines are bit-identical to
the reference.

The contract of :mod:`repro.core.fastpath` *and*
:mod:`repro.core.batchpath` is *exact* equality — not "close", not "same
decisions": every :class:`AdmissionDecision`, every committed
:class:`PlacementPlan` field and every resulting :class:`TaskRecord`
must match the reference implementation bit for bit.  Hypothesis drives
the engines over random scenarios spanning all three partitioner
families, the fixed-point ablation variants, every node order,
homogeneous and spread clusters, both policies, and the eager-release
ablation; the fleet layer is covered through the probing
``earliest-finish`` router (where the probe cache, the batch engine's
``probe_completion`` kernel, and probe→admit reuse must not change a
single routing decision or record).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import SchedulabilityTest
from repro.core.algorithms import ALGORITHMS, AlgorithmInstance
from repro.core.cluster import ClusterProfile
from repro.core.fastpath import make_admission_test
from repro.core.partition import NODE_ORDERS, DltIitPartitioner, OprPartitioner
from repro.core.policies import EdfPolicy, FifoPolicy
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask
from repro.experiments.runner import simulate
from repro.fleet import FleetScenario, simulate_fleet
from repro.sim.cluster_sim import ClusterSimulation
from repro.workload.scenario import Scenario

#: Every named algorithm exercises a distinct partitioner configuration.
ALGORITHM_NAMES = sorted(ALGORITHMS)

#: The optimized engines under test; each is checked against "reference".
OPTIMIZED_ENGINES = ("fast", "batch")

scenario_strategy = st.builds(
    Scenario.paper_baseline,
    system_load=st.sampled_from([0.5, 1.5, 3.0]),
    total_time=st.just(40_000.0),
    seed=st.integers(min_value=0, max_value=10_000),
    nodes=st.sampled_from([4, 8]),
    dc_ratio=st.sampled_from([1.5, 4.0, 20.0]),
    speed_spread=st.sampled_from([0.0, 0.6, 1.2]),
)


def assert_same_run(scenario, algorithm, engine="fast", **kwargs):
    """One scenario through two engines: records and stats must match."""
    ref = simulate(scenario, algorithm, admission_engine="reference", **kwargs)
    opt = simulate(scenario, algorithm, admission_engine=engine, **kwargs)
    assert ref.output.stats == opt.output.stats
    assert set(ref.output.records) == set(opt.output.records)
    for tid, ref_record in ref.output.records.items():
        assert ref_record == opt.output.records[tid]
    assert ref.metrics == opt.metrics


class TestSingleClusterBitIdentical:
    @given(
        scenario=scenario_strategy,
        algorithm=st.sampled_from(ALGORITHM_NAMES),
        engine=st.sampled_from(OPTIMIZED_ENGINES),
        eager=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_algorithms(self, scenario, algorithm, engine, eager):
        """Every registered algorithm × heterogeneity × eager_release."""
        assert_same_run(scenario, algorithm, engine, eager_release=eager)

    @given(
        scenario=scenario_strategy,
        algorithm=st.sampled_from(["EDF-DLT", "EDF-OPR-MN", "EDF-UserSplit"]),
        engine=st.sampled_from(OPTIMIZED_ENGINES),
        node_order=st.sampled_from(NODE_ORDERS),
    )
    @settings(max_examples=20, deadline=None)
    def test_node_orders(self, scenario, algorithm, engine, node_order):
        """The tie-break orders flow through all engines identically."""
        assert_same_run(scenario, algorithm, engine, node_order=node_order)

    @given(
        scenario=scenario_strategy,
        partitioner_cls=st.sampled_from([DltIitPartitioner, OprPartitioner]),
        engine=st.sampled_from(OPTIMIZED_ENGINES),
        fifo=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_fixed_point_scan(self, scenario, partitioner_cls, engine, fifo):
        """The monotonicity-aware scan returns the reference's exact plan."""
        tasks = scenario.generate_tasks()
        records = []
        for engine_name in ("reference", engine):
            instance = AlgorithmInstance(
                spec=ALGORITHMS["EDF-DLT"],
                policy=FifoPolicy() if fifo else EdfPolicy(),
                partitioner=partitioner_cls(fixed_point_node_count=True),
            )
            sim = ClusterSimulation(
                scenario.cluster,
                instance,
                tasks,
                horizon=scenario.total_time,
                admission_engine=engine_name,
            )
            records.append(sim.run().records)
        ref, opt = records
        assert set(ref) == set(opt)
        for tid in ref:
            assert ref[tid] == opt[tid]


class TestDirectDecisions:
    @given(
        releases=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=2, max_size=10
        ),
        sigmas=st.lists(
            st.floats(min_value=10.0, max_value=400.0), min_size=1, max_size=6
        ),
        deadline_scale=st.floats(min_value=1.0, max_value=60.0),
        now=st.floats(min_value=0.0, max_value=600.0),
        spread=st.sampled_from([0.0, 0.8]),
        partitioner_cls=st.sampled_from([DltIitPartitioner, OprPartitioner]),
        engine=st.sampled_from(OPTIMIZED_ENGINES),
    )
    @settings(max_examples=60, deadline=None)
    def test_try_admit_decisions_match(
        self,
        releases,
        sigmas,
        deadline_scale,
        now,
        spread,
        partitioner_cls,
        engine,
    ):
        """Raw ``try_admit`` calls on arbitrary states agree exactly,
        including the failed task on rejection."""
        cluster = ClusterProfile.with_spread(
            len(releases), 1.0, 100.0, speed_spread=spread
        )
        reservations = NodeReservations.from_times(releases)
        tasks = [
            DivisibleTask(
                task_id=i,
                arrival=max(0.0, now - i),
                sigma=sigma,
                deadline=deadline_scale * sigma,
            )
            for i, sigma in enumerate(sigmas)
        ]
        new_task, waiting = tasks[-1], tasks[:-1]
        policy = EdfPolicy()
        partitioner = partitioner_cls()
        ref = SchedulabilityTest(policy, partitioner, cluster).try_admit(
            new_task, waiting, reservations, now
        )
        opt_test = make_admission_test(
            policy, partitioner, cluster, engine=engine
        )
        opt = opt_test.try_admit(new_task, waiting, reservations, now)
        assert ref == opt
        # Re-asking with identical state must replay from the memo, and
        # still be exactly equal (the probe→admit reuse path).
        again = opt_test.try_admit(new_task, waiting, reservations, now)
        assert again == ref
        # Committed state must never be touched by either engine.
        assert np.array_equal(
            reservations.release_times, np.asarray(releases, dtype=np.float64)
        )


class TestCheckpointInvalidation:
    """The prefix-checkpoint store is invisible in decisions.

    A random interleaving of admissions, dispatches (``assign``), early
    releases, fault floors (``floor_release``), cancellations and clock
    jumps drives the same engine instance three ways — checkpointed,
    checkpoint-ablated, and reference — and every decision must agree
    exactly.  This is the direct stress of the invalidation matrix: every
    mutation bumps the reservation epoch, every cancel/insert reshapes
    the queue prefix, and a stale restore anywhere would change a
    decision bit somewhere downstream.
    """

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        engine=st.sampled_from(OPTIMIZED_ENGINES),
        fifo=st.booleans(),
        spread=st.sampled_from([0.0, 0.8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_mutation_stream_bit_identical(
        self, seed, engine, fifo, spread
    ):
        rng = np.random.default_rng(seed)
        nodes = int(rng.integers(4, 9))
        cluster = ClusterProfile.with_spread(
            nodes, 1.0, 100.0, speed_spread=spread
        )
        policy = FifoPolicy() if fifo else EdfPolicy()
        partitioner = DltIitPartitioner()
        from repro.obs import Observability

        obs = Observability()
        reference = SchedulabilityTest(policy, partitioner, cluster)
        ckpt_on = make_admission_test(
            policy, partitioner, cluster, engine=engine, obs=obs, checkpoint=True
        )
        ckpt_off = make_admission_test(
            policy, partitioner, cluster, engine=engine, checkpoint=False
        )
        reservations = NodeReservations(nodes)
        waiting: list[DivisibleTask] = []
        now = 0.0
        next_id = 0

        def admit(task: DivisibleTask) -> None:
            ref = reference.try_admit(task, waiting, reservations, now)
            assert ckpt_on.try_admit(task, waiting, reservations, now) == ref
            assert ckpt_off.try_admit(task, waiting, reservations, now) == ref
            if rng.random() < 0.3:
                    # probe→submit: the identical immediate re-ask
                assert (
                    ckpt_on.try_admit(task, waiting, reservations, now) == ref
                )
            if ref.accepted:
                plan = ref.plans[task.task_id]
                if rng.random() < 0.3:
                    # dispatch: commit the newcomer's reservation
                    reservations.assign(
                        plan.node_ids, plan.est_completion, owner=task.task_id
                    )
                else:
                    waiting.append(task)

        # Warm-up: generous deadlines on a free cluster build a real
        # waiting queue, so every example exercises prefix restores (not
        # just cold walks) before the mutations start tearing them up.
        for _ in range(8):
            sigma = float(rng.uniform(50.0, 200.0))
            admit(
                DivisibleTask(
                    task_id=next_id, arrival=now, sigma=sigma,
                    deadline=80.0 * sigma,
                )
            )
            next_id += 1
        for _ in range(50):
            action = rng.random()
            if action < 0.5:
                sigma = float(rng.uniform(20.0, 400.0))
                admit(
                    DivisibleTask(
                        task_id=next_id,
                        arrival=now,
                        sigma=sigma,
                        deadline=float(rng.uniform(4.0, 60.0)) * sigma,
                    )
                )
                next_id += 1
            elif action < 0.65:
                # completion / eager release of random nodes
                ids = rng.choice(
                    nodes, size=int(rng.integers(1, nodes + 1)), replace=False
                )
                times = reservations.release_times[ids] * float(
                    rng.uniform(0.3, 1.0)
                )
                reservations.release_early(ids.tolist(), times.tolist())
            elif action < 0.75:
                # fault window: floor random nodes at a recovery instant
                ids = rng.choice(
                    nodes, size=int(rng.integers(1, nodes + 1)), replace=False
                )
                reservations.floor_release(
                    ids.tolist(), now + float(rng.uniform(10.0, 500.0))
                )
            elif action < 0.85 and waiting:
                # cancellation / displacement: drop a random queue member
                waiting.pop(int(rng.integers(len(waiting))))
            else:
                now += float(rng.uniform(0.0, 150.0))
        # The stream must actually have exercised the restore path — the
        # warm-up guarantees same-epoch prefix hits in every example.
        snap = obs.registry.snapshot()
        hits = snap[f'admission_ckpt_hits_total{{engine="{engine}"}}']["value"]
        assert hits >= 3, "checkpoint restore path was never exercised"


class TestFleetBitIdentical:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        policy=st.sampled_from(
            ["round-robin", "least-loaded", "earliest-finish", "ucb1"]
        ),
        clusters=st.sampled_from([1, 3]),
        spread=st.sampled_from([0.0, 0.8]),
        algorithm=st.sampled_from(["EDF-DLT", "EDF-UserSplit"]),
        engine=st.sampled_from(OPTIMIZED_ENGINES),
    )
    @settings(max_examples=15, deadline=None)
    def test_fleet_routing_and_records(
        self, seed, policy, clusters, spread, algorithm, engine
    ):
        """Routing decisions, per-member records and pooled metrics all
        match — the probe cache, the batch engine's ``probe_completion``
        kernel, and memo reuse are invisible in outputs."""
        scenario = FleetScenario.uniform(
            n_clusters=clusters,
            system_load=0.8,
            total_time=30_000.0,
            seed=seed,
            nodes=4,
            cluster_spread=spread,
            name="prop",
        ).with_policy(policy)
        ref = simulate_fleet(scenario, algorithm, admission_engine="reference")
        opt = simulate_fleet(scenario, algorithm, admission_engine=engine)
        assert ref.assignments == opt.assignments
        assert ref.metrics == opt.metrics
        for ref_out, opt_out in zip(ref.outputs, opt.outputs):
            assert ref_out.stats == opt_out.stats
            assert set(ref_out.records) == set(opt_out.records)
            for tid in ref_out.records:
                assert ref_out.records[tid] == opt_out.records[tid]
