"""Cross-cutting property tests over whole simulations.

These tie the paper's claims to the *system*, not just the formulas:
paired runs on identical task sets must preserve the dominance relations
the analysis predicts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import simulate
from repro.workload.spec import SimulationConfig

# Small horizons keep each example fast; hypothesis explores the
# (load, dc_ratio, seed) space.
config_strategy = st.builds(
    SimulationConfig,
    nodes=st.just(8),
    cms=st.just(1.0),
    cps=st.sampled_from([10.0, 100.0, 1000.0]),
    system_load=st.floats(min_value=0.2, max_value=1.0),
    avg_sigma=st.sampled_from([50.0, 100.0, 200.0]),
    dc_ratio=st.sampled_from([2.0, 3.0, 10.0]),
    total_time=st.just(25_000.0),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestPairedDominance:
    @given(cfg=config_strategy)
    @settings(max_examples=25, deadline=None)
    def test_dlt_never_worse_than_opr_mn(self, cfg):
        """The paper's Figure 3-4 claim, as a property over random configs.

        Per admission test the DLT estimate dominates (Ê <= E), but greedy
        admission is not globally optimal: accepting a *marginal* task
        (which only DLT can) occasionally blocks two later ones, so strict
        per-seed dominance is NOT a theorem — hypothesis finds seeds where
        DLT rejects 1-2 more tasks out of ~100 (the paper's "always
        better" claim is about replication-averaged curves, which the
        figure benches check).  Here we assert the per-seed anomaly stays
        bounded by a few tasks.
        """
        r_dlt = simulate(cfg, "EDF-DLT").metrics
        r_opr = simulate(cfg, "EDF-OPR-MN").metrics
        assert r_dlt.rejected <= r_opr.rejected + 4

    @given(cfg=config_strategy)
    @settings(max_examples=15, deadline=None)
    def test_validation_holds_for_all_algorithms(self, cfg):
        for alg in ("EDF-DLT", "FIFO-OPR-MN", "EDF-UserSplit"):
            result = simulate(cfg, alg)
            assert result.output.validation.ok
            assert result.metrics.deadline_misses == 0

    @given(cfg=config_strategy)
    @settings(max_examples=15, deadline=None)
    def test_policy_changes_order_not_safety(self, cfg):
        """EDF vs FIFO may admit different tasks, never unsafe ones."""
        for alg in ("EDF-DLT", "FIFO-DLT"):
            result = simulate(cfg, alg)
            assert result.metrics.deadline_misses == 0

    @given(cfg=config_strategy)
    @settings(max_examples=10, deadline=None)
    def test_work_conservation(self, cfg):
        """Busy node-seconds == Σ sigma_i (Cms+Cps) over executed tasks."""
        result = simulate(cfg, "EDF-DLT")
        total_sigma = sum(
            rec.task.sigma
            for rec in result.output.records.values()
            if rec.actual_completion is not None
        )
        expected = total_sigma * (cfg.cms + cfg.cps)
        assert result.output.node_busy_time.sum() == pytest.approx(
            expected, rel=1e-6
        )
