"""Tests for the algorithm registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHMS, algorithm_names, make_algorithm
from repro.core.partition import (
    DltIitPartitioner,
    OprPartitioner,
    UserSplitPartitioner,
)
from repro.core.policies import EdfPolicy, FifoPolicy

PAPER_SIX = [
    "EDF-DLT",
    "FIFO-DLT",
    "EDF-UserSplit",
    "FIFO-UserSplit",
    "EDF-OPR-MN",
    "FIFO-OPR-MN",
]


class TestRegistry:
    def test_paper_algorithms_present(self):
        for name in PAPER_SIX:
            assert name in ALGORITHMS

    def test_an_variants_present(self):
        for name in ("EDF-OPR-AN", "FIFO-OPR-AN", "EDF-DLT-AN", "FIFO-DLT-AN"):
            assert name in ALGORITHMS

    def test_iit_flags(self):
        assert ALGORITHMS["EDF-DLT"].utilizes_iits
        assert ALGORITHMS["EDF-UserSplit"].utilizes_iits
        assert not ALGORITHMS["EDF-OPR-MN"].utilizes_iits

    def test_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)

    def test_descriptions_nonempty(self):
        for spec in ALGORITHMS.values():
            assert spec.description


class TestMakeAlgorithm:
    @pytest.mark.parametrize("name", PAPER_SIX)
    def test_instantiation(self, name):
        inst = make_algorithm(name, rng=np.random.default_rng(0))
        assert inst.name == name
        policy_cls = EdfPolicy if name.startswith("EDF") else FifoPolicy
        assert isinstance(inst.policy, policy_cls)
        if "UserSplit" in name:
            assert isinstance(inst.partitioner, UserSplitPartitioner)
        elif "OPR" in name:
            assert isinstance(inst.partitioner, OprPartitioner)
        else:
            assert isinstance(inst.partitioner, DltIitPartitioner)

    def test_an_variants_configured(self):
        assert make_algorithm("EDF-OPR-AN").partitioner.assign_all_nodes
        assert make_algorithm("EDF-DLT-AN").partitioner.assign_all_nodes
        assert not make_algorithm("EDF-OPR-MN").partitioner.assign_all_nodes

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="EDF-DLT"):
            make_algorithm("TOTALLY-FAKE")

    def test_fresh_instances(self):
        """Each call returns independent state (no shared partitioner)."""
        a = make_algorithm("EDF-UserSplit", rng=np.random.default_rng(1))
        b = make_algorithm("EDF-UserSplit", rng=np.random.default_rng(1))
        assert a.partitioner is not b.partitioner

    def test_needs_rng_flag(self):
        assert ALGORITHMS["EDF-UserSplit"].needs_rng
        assert not ALGORITHMS["EDF-DLT"].needs_rng
