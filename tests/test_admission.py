"""Tests for the schedulability test of Figure 2."""

from __future__ import annotations

from repro.core.admission import SchedulabilityTest
from repro.core.cluster import ClusterSpec
from repro.core.partition import DltIitPartitioner, OprPartitioner
from repro.core.policies import EdfPolicy, FifoPolicy
from repro.core.reservations import NodeReservations
from repro.core.task import DivisibleTask


def task(tid, arrival=0.0, sigma=100.0, deadline=20_000.0):
    return DivisibleTask(task_id=tid, arrival=arrival, sigma=sigma, deadline=deadline)


CLUSTER = ClusterSpec(nodes=4, cms=1.0, cps=100.0)


def fresh_test(policy=None, partitioner=None):
    return SchedulabilityTest(
        policy or EdfPolicy(), partitioner or DltIitPartitioner(), CLUSTER
    )


class TestAcceptPaths:
    def test_single_task_on_idle_cluster(self):
        t = fresh_test()
        decision = t.try_admit(task(0), [], NodeReservations(4), now=0.0)
        assert decision.accepted
        assert set(decision.plans) == {0}

    def test_plans_cover_new_plus_waiting(self):
        t = fresh_test()
        waiting = [task(0, deadline=40_000.0), task(1, deadline=45_000.0)]
        decision = t.try_admit(
            task(2, deadline=50_000.0), waiting, NodeReservations(4), now=0.0
        )
        assert decision.accepted
        assert set(decision.plans) == {0, 1, 2}

    def test_committed_reservations_not_mutated(self):
        t = fresh_test()
        res = NodeReservations(4)
        before = list(res.release_times)
        t.try_admit(task(0), [], res, now=0.0)
        assert list(res.release_times) == before

    def test_tasks_placed_in_policy_order(self):
        """Under EDF the urgent task gets the earlier slot."""
        t = fresh_test(policy=EdfPolicy())
        relaxed = task(0, deadline=60_000.0)
        urgent = task(1, deadline=11_000.0)
        decision = t.try_admit(urgent, [relaxed], NodeReservations(4), now=0.0)
        assert decision.accepted
        assert (
            decision.plans[1].est_completion <= decision.plans[0].est_completion
        )


class TestRejectPaths:
    def test_infeasible_new_task_rejected(self):
        t = fresh_test()
        decision = t.try_admit(
            task(0, sigma=100.0, deadline=90.0), [], NodeReservations(4), now=0.0
        )
        assert not decision.accepted
        assert decision.failed_task_id == 0
        assert decision.plans == {}

    def test_newcomer_breaking_waiting_task_rejected(self):
        """An urgent newcomer that would starve a queued task fails the
        whole test (the queued task's guarantee survives).

        Constants: sigma=100, Cms=1, Cps=100 ⇒ E(100,4) ≈ 2544,
        E(100,3) ≈ 3383, so a deadline budget in [2544, 3383) forces
        n_min = 4 (the whole cluster), and the cluster frees at t=500.
        """
        t = fresh_test(policy=EdfPolicy(), partitioner=OprPartitioner())
        res = NodeReservations.from_times([500.0] * 4)
        # Queued alone: completes 500 + 2544 = 3044 <= 3360 → accepted.
        queued = task(0, arrival=0.0, sigma=100.0, deadline=3360.0)
        base = t.try_admit(queued, [], res, now=0.0)
        assert base.accepted
        # A newcomer with an earlier absolute deadline (3301) runs first
        # under EDF and pushes `queued` to 3044 + 2544 > 3360 ⇒ reject.
        newcomer = task(1, arrival=1.0, sigma=100.0, deadline=3300.0)
        decision = t.try_admit(newcomer, [queued], res, now=1.0)
        assert not decision.accepted
        assert decision.failed_task_id == 0  # the queued task is the casualty

    def test_fifo_rejects_newcomer_directly(self):
        """Under FIFO the newcomer is last, so it is its own casualty."""
        t = fresh_test(policy=FifoPolicy(), partitioner=OprPartitioner())
        res = NodeReservations.from_times([500.0] * 4)
        queued = task(0, arrival=0.0, sigma=100.0, deadline=3360.0)
        newcomer = task(1, arrival=1.0, sigma=100.0, deadline=3300.0)
        decision = t.try_admit(newcomer, [queued], res, now=1.0)
        assert not decision.accepted
        assert decision.failed_task_id == 1


class TestTempScheduleStacking:
    def test_sequential_tasks_stack_on_releases(self):
        """Two heavy tasks cannot overlap on a 4-node cluster; the second
        must be planned after the first's estimated completion."""
        t = fresh_test(partitioner=OprPartitioner())
        heavy0 = task(0, sigma=400.0, deadline=60_000.0)
        heavy1 = task(1, sigma=400.0, deadline=60_000.0)
        decision = t.try_admit(heavy1, [heavy0], NodeReservations(4), now=0.0)
        assert decision.accepted
        p0, p1 = decision.plans[0], decision.plans[1]
        # Both want many nodes; the second starts no earlier than the
        # first's completion on at least one node.
        assert p1.rn >= min(p0.est_completion, p1.est_completion) - 1e-9 or (
            p0.n + p1.n <= 4
        )

    def test_determinism(self):
        t = fresh_test()
        waiting = [task(0), task(1, deadline=30_000.0)]
        res = NodeReservations.from_times([0.0, 10.0, 20.0, 30.0])
        d1 = t.try_admit(task(2), waiting, res, now=5.0)
        d2 = t.try_admit(task(2), waiting, res, now=5.0)
        assert d1.accepted == d2.accepted
        for tid in d1.plans:
            assert d1.plans[tid].node_ids == d2.plans[tid].node_ids
            assert d1.plans[tid].est_completion == d2.plans[tid].est_completion
