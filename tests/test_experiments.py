"""Tests for the experiment harness: registry, runner, sweep, report."""

from __future__ import annotations

import pytest

from repro.experiments.figures import BASELINE, DEFAULT_LOADS, FIGURES, figure_ids
from repro.experiments.report import panel_to_csv, render_panel
from repro.experiments.runner import (
    replication_seed,
    run_replications,
    simulate,
)
from repro.experiments.sweep import run_panel
from repro.workload.spec import SimulationConfig


def fast_config(**kw):
    base = dict(
        nodes=8,
        cms=1.0,
        cps=100.0,
        system_load=0.5,
        avg_sigma=100.0,
        dc_ratio=2.0,
        total_time=50_000.0,
        seed=7,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestRegistry:
    def test_all_64_panels_present(self):
        """Figures 3-16 of the TR, panel by panel: fig3(2) fig4(4) fig5(2)
        fig6(4) fig7(4) fig8(6) fig9(4) fig10(4) fig11(4) fig12(6)
        fig13(4) fig14(8) fig15(4) fig16(8) = 64 (the TR re-prints some
        baseline panels in several figures; the registry keeps each id)."""
        assert len(FIGURES) == 64

    def test_ids_well_formed(self):
        for pid in figure_ids():
            assert pid.startswith("fig")
            assert FIGURES[pid].panel_id == pid

    def test_every_panel_has_two_known_algorithms(self):
        from repro.core.algorithms import ALGORITHMS

        for spec in FIGURES.values():
            assert len(spec.algorithms) == 2
            for a in spec.algorithms:
                assert a in ALGORITHMS

    def test_baseline_panels_use_section51_params(self):
        cfg = FIGURES["fig3a"].base_config(
            system_load=0.5, total_time=1000.0, seed=1
        )
        assert cfg.nodes == 16
        assert cfg.cms == 1.0
        assert cfg.cps == 100.0
        assert cfg.avg_sigma == 200.0
        assert cfg.dc_ratio == 2.0

    def test_override_panels(self):
        cfg = FIGURES["fig4c"].base_config(system_load=0.5, total_time=1.0, seed=1)
        assert cfg.dc_ratio == 20
        cfg = FIGURES["fig8f"].base_config(system_load=0.5, total_time=1.0, seed=1)
        assert cfg.cps == 10000
        cfg = FIGURES["fig16g"].base_config(system_load=0.5, total_time=1.0, seed=1)
        assert cfg.dc_ratio == 3

    def test_fifo_panels_use_fifo_algorithms(self):
        for pid in ("fig9a", "fig10b", "fig11c", "fig12d", "fig15a", "fig16h"):
            for alg in FIGURES[pid].algorithms:
                assert alg.startswith("FIFO-")

    def test_fig3b_shows_ci(self):
        assert FIGURES["fig3b"].show_ci
        assert not FIGURES["fig3a"].show_ci

    def test_default_loads_match_paper(self):
        assert DEFAULT_LOADS == tuple(round(0.1 * k, 1) for k in range(1, 11))

    def test_baseline_matches_section51(self):
        assert BASELINE["nodes"] == 16
        assert BASELINE["cms"] == 1.0
        assert BASELINE["cps"] == 100.0
        assert BASELINE["avg_sigma"] == 200.0
        assert BASELINE["dc_ratio"] == 2.0


class TestRunner:
    def test_simulate_is_deterministic(self):
        r1 = simulate(fast_config(), "EDF-DLT")
        r2 = simulate(fast_config(), "EDF-DLT")
        assert r1.metrics.reject_ratio == r2.metrics.reject_ratio

    def test_same_tasks_across_algorithms(self):
        """Paired comparison: all algorithms see identical arrivals."""
        r1 = simulate(fast_config(), "EDF-DLT")
        r2 = simulate(fast_config(), "EDF-UserSplit")
        assert r1.metrics.arrivals == r2.metrics.arrivals

    def test_replication_seed_spreads(self):
        seeds = {replication_seed(7, rep) for rep in range(100)}
        assert len(seeds) == 100

    def test_run_replications_aggregates(self):
        agg = run_replications(fast_config(), "EDF-DLT", 3)
        assert len(agg.samples) == 3
        assert agg.ci.n == 3
        assert agg.metric == "reject_ratio"
        assert min(agg.samples) <= agg.ci.mean <= max(agg.samples)

    def test_other_metric(self):
        agg = run_replications(fast_config(), "EDF-DLT", 2, metric="utilization")
        assert 0.0 <= agg.ci.mean <= 1.0

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            run_replications(fast_config(), "EDF-DLT", 0)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            simulate(fast_config(), "EDF-MAGIC")


class TestSweepAndReport:
    @pytest.fixture(scope="class")
    def panel_result(self):
        return run_panel(
            FIGURES["fig3a"],
            loads=(0.3, 0.8),
            replications=2,
            total_time=60_000.0,
            seed=11,
        )

    def test_series_shapes(self, panel_result):
        assert panel_result.loads == (0.3, 0.8)
        for alg in panel_result.spec.algorithms:
            assert len(panel_result.series[alg]) == 2
            for p in panel_result.series[alg]:
                assert 0.0 <= p.mean <= 1.0
                assert len(p.samples) == 2

    def test_reject_ratio_increases_with_load(self, panel_result):
        for alg in panel_result.spec.algorithms:
            curve = panel_result.mean_curve(alg)
            assert curve[0] <= curve[1] + 0.05  # monotone up to noise

    def test_render_contains_series(self, panel_result):
        text = render_panel(panel_result)
        assert "fig3a" in text
        assert "EDF-DLT" in text and "EDF-OPR-MN" in text
        assert "0.30" in text and "0.80" in text
        assert "mean gap" in text

    def test_render_with_ci(self, panel_result):
        text = render_panel(panel_result, show_ci=True)
        assert "±" in text

    def test_csv_round_trip(self, panel_result):
        csv = panel_to_csv(panel_result)
        lines = csv.strip().splitlines()
        assert lines[0] == (
            "system_load,EDF-DLT_mean,EDF-DLT_ci95,"
            "EDF-OPR-MN_mean,EDF-OPR-MN_ci95"
        )
        assert len(lines) == 3  # header + 2 loads

    def test_wins_and_gap_helpers(self, panel_result):
        a1, a2 = panel_result.spec.algorithms
        wins = panel_result.wins(a1)
        assert 0 <= wins <= len(panel_result.loads)
        gap = panel_result.mean_gap(a1, a2)
        assert isinstance(gap, float)
