"""Trace-summary report: marginals of recorded arrival traces."""

from __future__ import annotations

import importlib.util
import math

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.workload.trace_report import TraceSummary, summarize_trace


def write_csv(tmp_path, text: str, name: str = "trace.csv"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestBareTraces:
    def test_uniform_gaps_are_smooth(self, tmp_path):
        path = write_csv(tmp_path, "".join(f"{10.0 * i}\n" for i in range(1, 12)))
        s = summarize_trace(path)
        assert s.count == 11
        assert s.span == pytest.approx(100.0)
        assert s.rate == pytest.approx(0.1)
        assert s.mean_gap == pytest.approx(10.0)
        assert s.gap_cv2 == pytest.approx(0.0)
        assert s.min_gap == s.max_gap == pytest.approx(10.0)
        assert s.burstiness == "smooth"

    def test_poisson_trace_reads_poisson_like(self, tmp_path):
        rng = np.random.default_rng(7)
        times = np.cumsum(rng.exponential(50.0, size=2_000))
        path = write_csv(tmp_path, "".join(f"{t}\n" for t in times))
        s = summarize_trace(path)
        assert s.burstiness == "poisson-like"
        assert s.gap_cv2 == pytest.approx(1.0, abs=0.25)
        assert s.rate == pytest.approx(1.0 / 50.0, rel=0.1)

    def test_bursty_trace_reads_bursty(self, tmp_path):
        rng = np.random.default_rng(3)
        gaps = np.where(rng.random(size=1_000) < 0.1, 500.0, 1.0)
        times = np.cumsum(gaps + rng.random(size=1_000) * 0.1)
        path = write_csv(tmp_path, "".join(f"{t}\n" for t in times))
        s = summarize_trace(path)
        assert s.gap_cv2 > 2.0
        assert s.burstiness == "bursty"

    def test_single_arrival_degenerate(self, tmp_path):
        s = summarize_trace(write_csv(tmp_path, "42.0\n"))
        assert s.count == 1
        assert s.span == 0.0
        assert math.isinf(s.rate)
        assert s.mean_gap == 0.0
        # the JSON view must stay RFC-compliant: null, not bare Infinity
        assert s.as_dict()["rate"] is None
        import json

        json.loads(json.dumps(s.as_dict()))


class TestHeaderedTraces:
    def test_header_with_size_and_deadline_marginals(self, tmp_path):
        path = write_csv(
            tmp_path,
            "task_id,arrival_time,sigma,deadline\n"
            "0,10.0,100.0,500.0\n"
            "1,30.0,300.0,700.0\n"
            "2,60.0,200.0,600.0\n",
        )
        s = summarize_trace(path)
        assert s.count == 3
        assert s.sigma is not None and s.deadline is not None
        assert s.sigma.mean == pytest.approx(200.0)
        assert s.sigma.minimum == 100.0 and s.sigma.maximum == 300.0
        assert s.deadline.mean == pytest.approx(600.0)
        flat = s.as_dict()
        assert flat["sigma_mean"] == pytest.approx(200.0)
        assert flat["deadline_count"] == 3

    def test_size_alias_column(self, tmp_path):
        path = write_csv(
            tmp_path,
            "arrival_time,size\n1.0,10.0\n2.0,20.0\n",
        )
        s = summarize_trace(path)
        assert s.sigma is not None
        assert s.sigma.name == "sigma"
        assert s.sigma.mean == pytest.approx(15.0)

    def test_custom_arrival_column(self, tmp_path):
        path = write_csv(tmp_path, "t,x\n1.0,9\n2.0,9\n")
        s = summarize_trace(path, column="t")
        assert s.count == 2
        with pytest.raises(InvalidParameterError):
            summarize_trace(path)  # no arrival_time column

    def test_marginals_absent_without_columns(self, tmp_path):
        s = summarize_trace(write_csv(tmp_path, "arrival_time\n1.0\n2.0\n"))
        assert s.sigma is None and s.deadline is None
        assert "sigma_mean" not in s.as_dict()


class TestValidation:
    def test_same_validation_as_trace_arrivals(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            summarize_trace(write_csv(tmp_path, "5.0\n4.0\n"))  # decreasing
        with pytest.raises(InvalidParameterError):
            summarize_trace(write_csv(tmp_path, "-1.0\n2.0\n"))  # negative
        with pytest.raises(InvalidParameterError):
            summarize_trace(write_csv(tmp_path, ""))  # empty
        with pytest.raises(InvalidParameterError):
            summarize_trace(write_csv(tmp_path, "arrival_time\n"))  # header only
        with pytest.raises(InvalidParameterError):
            summarize_trace(write_csv(tmp_path, "1.0\nnot-a-number\n"))

    def test_summary_is_flat_and_json_friendly(self, tmp_path):
        s = summarize_trace(write_csv(tmp_path, "1.0\n2.0\n4.0\n"))
        assert isinstance(s, TraceSummary)
        for value in s.as_dict().values():
            assert isinstance(value, (int, float, str))

    def test_example_trace_summarizes(self):
        from pathlib import Path

        trace = Path(__file__).parent.parent / "examples" / "sample_arrivals.csv"
        s = summarize_trace(trace)
        assert s.count > 0
        assert s.burstiness in ("smooth", "poisson-like", "bursty")


HAS_PYARROW = importlib.util.find_spec("pyarrow") is not None


class TestParquetTraces:
    @pytest.mark.skipif(not HAS_PYARROW, reason="pyarrow not installed")
    def test_parquet_matches_csv(self, tmp_path):
        import pyarrow as pa
        import pyarrow.parquet as pq

        arrivals = [1.0, 3.5, 4.0, 9.25]
        sigmas = [100.0, 150.0, 200.0, 250.0]
        deadlines = [50.0, 60.0, 70.0, 80.0]
        csv_path = write_csv(
            tmp_path,
            "arrival_time,sigma,deadline\n"
            + "".join(
                f"{a},{s},{d}\n" for a, s, d in zip(arrivals, sigmas, deadlines)
            ),
        )
        pq_path = tmp_path / "trace.parquet"
        pq.write_table(
            pa.table(
                {
                    "arrival_time": arrivals,
                    "sigma": sigmas,
                    "deadline": deadlines,
                }
            ),
            pq_path,
        )
        got = summarize_trace(pq_path)
        want = summarize_trace(csv_path)
        assert got.count == want.count
        assert got.as_dict() == {**want.as_dict(), "path": str(pq_path)}

    @pytest.mark.skipif(not HAS_PYARROW, reason="pyarrow not installed")
    def test_single_column_parquet(self, tmp_path):
        import pyarrow as pa
        import pyarrow.parquet as pq

        path = tmp_path / "bare.parquet"
        pq.write_table(pa.table({"t": [1.0, 2.0, 4.0]}), path)
        assert summarize_trace(path).count == 3  # only column wins
        multi = tmp_path / "multi.parquet"
        pq.write_table(pa.table({"t": [1.0], "x": [2.0]}), multi)
        with pytest.raises(InvalidParameterError, match="no 'arrival_time'"):
            summarize_trace(multi)

    @pytest.mark.skipif(HAS_PYARROW, reason="pyarrow installed")
    def test_parquet_requires_pyarrow(self, tmp_path):
        path = tmp_path / "trace.parquet"
        path.write_bytes(b"")
        with pytest.raises(InvalidParameterError, match="pyarrow"):
            summarize_trace(path)
