"""Tests for :mod:`repro.obs` — the zero-perturbation contract above all.

The headline property: an instrumented run (registry attached, tracer
on) is **bit-identical** to an uninstrumented run — same stats, same
records, same busy vectors, same metrics snapshot — across all three
admission engines, both policy families, with and without faults, and
through fleet routing (static and bandit).  Instrumentation reads the
simulation; it never perturbs it.

Plus the supporting contracts: trace round-trips (JSONL and Chrome),
per-track timestamp monotonicity, registry snapshot determinism across
serial / process / thread execution, snapshot merging, Prometheus
rendering, and the capture-and-replay profiler's identity check.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.runner import replication_seed, simulate
from repro.faults import FaultProcess
from repro.fleet.scenario import FleetScenario
from repro.fleet.sim import simulate_fleet
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    merge_snapshots,
    read_jsonl,
    render_prometheus,
)
from repro.obs.metrics import DEPTH_BUCKETS
from repro.workload.scenario import Scenario

ENGINES = ("reference", "fast", "batch")


def scenario(seed: int, *, load: float = 1.2, total_time: float = 30_000.0,
             nodes: int = 8) -> Scenario:
    """A small paper-baseline scenario, fast enough for property runs."""
    return Scenario.paper_baseline(
        system_load=load, total_time=total_time, seed=seed, nodes=nodes
    )


def fleet_scenario(policy: str, seed: int = 1234) -> FleetScenario:
    """A small heterogeneous 2-cluster fleet under ``policy``."""
    return FleetScenario.uniform(
        n_clusters=2,
        system_load=0.6,
        total_time=30_000.0,
        seed=seed,
        policy=policy,
        nodes=4,
        cluster_spread=0.6,
        name="obs-test",
    )


def assert_identical(a, b) -> None:
    """Two SimulationOutputs must match bit for bit."""
    assert a.stats == b.stats
    assert set(a.records) == set(b.records)
    for tid, rec in a.records.items():
        assert rec == b.records[tid], f"task {tid} differs"
    assert np.array_equal(a.node_busy_time, b.node_busy_time)
    assert np.array_equal(a.node_allocated_time, b.node_allocated_time)
    assert a.obs_snapshot == b.obs_snapshot


class TestRegistry:
    """MetricsRegistry / instrument unit behavior."""

    def test_counter_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b
        a.inc()
        a.inc(3)
        assert reg.snapshot() == {"x_total": {"type": "counter", "value": 4}}

    def test_labels_sort_into_one_key(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"b": "2", "a": "1"})
        b = reg.counter("x_total", labels={"a": "1", "b": "2"})
        assert a is b
        assert a.name == 'x_total{a="1",b="2"}'

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("depth", (1.0, 2.0, 4.0))
        for v in (0.0, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        cell = reg.snapshot()["depth"]
        # <=1: {0.0, 1.0}; <=2: {1.5}; <=4: {3.0}; +Inf: {100.0}
        assert cell["counts"] == [2, 1, 1, 1]
        assert cell["count"] == 5
        assert cell["sum"] == pytest.approx(105.5)

    def test_wall_instruments_hidden_from_default_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("sim_total").inc()
        reg.counter("wall_total", wall=True).inc()
        assert set(reg.snapshot()) == {"sim_total"}
        assert set(reg.snapshot(include_wall=True)) == {"sim_total", "wall_total"}

    def test_merge_snapshots_sums_counters_and_cells(self):
        snaps = []
        for n in (1, 2):
            reg = MetricsRegistry()
            reg.counter("c_total").inc(n)
            h = reg.histogram("h", (1.0, 2.0))
            h.observe(float(n))
            snaps.append(reg.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["c_total"]["value"] == 3
        assert merged["h"]["counts"] == [1, 1, 0]
        assert merged["h"]["count"] == 2

    def test_merge_rejects_kind_mismatch(self):
        a = MetricsRegistry()
        a.counter("x")
        b = MetricsRegistry()
        b.gauge("x")
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_prometheus_rendering_is_cumulative(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", labels={"op": "submit"}).inc(2)
        h = reg.histogram("depth", (1.0, 2.0), labels={"q": "a"})
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg.snapshot())
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{op="submit"} 2' in text
        assert 'depth_bucket{q="a",le="1"} 1' in text
        assert 'depth_bucket{q="a",le="2"} 1' in text
        assert 'depth_bucket{q="a",le="+Inf"} 2' in text
        assert 'depth_count{q="a"} 2' in text


class TestTracer:
    """Span nesting, track views, and the two export formats."""

    def test_span_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer", "t", 1.0):
            tracer.event("mid", "t", 1.0)
            with tracer.span("inner", "t", 1.0):
                pass
        depths = [r["depth"] for r in tracer.records]
        assert depths == [0, 1, 1]
        assert tracer.depth == 0

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", "cat", 1.5, task=3):
            tracer.event("b", "cat", 1.5, node=2)
        buf = io.StringIO()
        assert tracer.write_jsonl(buf) == 2
        buf.seek(0)
        assert read_jsonl(buf) == tracer.records

    def test_chrome_export_shape(self):
        tracer = Tracer()
        view = tracer.track(3)
        with view.span("a", "cat", 2.0):
            pass
        view.event("b", "cat", 2.0)
        buf = io.StringIO()
        tracer.write_chrome(buf)
        doc = json.loads(buf.getvalue())
        events = doc["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "i"]
        assert all(e["tid"] == 3 for e in events)

    def test_timing_mode_stamps_wall_us(self):
        tracer = Tracer(timing=True)
        with tracer.span("a", "t", 0.0):
            pass
        assert tracer.records[0]["wall_us"] >= 0.0


class TestZeroPerturbation:
    """Traced runs are bit-identical to untraced runs — everywhere."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("algorithm", ("EDF-DLT", "FIFO-UserSplit"))
    def test_cluster_traced_equals_untraced(self, engine, algorithm):
        sc = scenario(7)
        plain = simulate(sc, algorithm, admission_engine=engine)
        obs = Observability(trace=True)
        traced = simulate(sc, algorithm, admission_engine=engine, obs=obs)
        assert_identical(plain.output, traced.output)
        assert obs.tracer is not None and obs.tracer.records

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(ENGINES),
        algorithm=st.sampled_from(("EDF-DLT", "EDF-OPR-MN", "FIFO-DLT")),
        faulted=st.booleans(),
    )
    def test_property_traced_equals_untraced(self, seed, engine, algorithm, faulted):
        sc = scenario(seed)
        if faulted:
            sc = sc.with_overrides(faults=FaultProcess(rate=4e-4))
        plain = simulate(sc, algorithm, admission_engine=engine)
        traced = simulate(
            sc, algorithm, admission_engine=engine, obs=Observability(trace=True)
        )
        assert_identical(plain.output, traced.output)

    @pytest.mark.parametrize(
        "policy", ("round-robin", "earliest-finish", "ucb1", "thompson")
    )
    def test_fleet_traced_equals_untraced(self, policy):
        sc = fleet_scenario(policy)
        plain = simulate_fleet(sc, "EDF-DLT")
        obs = Observability(trace=True)
        traced = simulate_fleet(sc, "EDF-DLT", obs=obs)
        assert list(plain.assignments) == list(traced.assignments)
        for a, b in zip(plain.outputs, traced.outputs):
            assert_identical(a, b)
        assert plain.metrics.obs == traced.metrics.obs
        assert plain.probe_cache_hits == traced.probe_cache_hits
        assert plain.probe_cache_misses == traced.probe_cache_misses

    def test_traced_metrics_snapshot_matches_untraced(self):
        sc = scenario(11)
        plain = simulate(sc, "EDF-DLT")
        traced = simulate(sc, "EDF-DLT", obs=Observability(trace=True))
        assert plain.metrics.obs == traced.metrics.obs
        assert plain.metrics.obs is not None
        snap = plain.metrics.obs
        assert snap["scheduler_arrivals_total"]["value"] == plain.metrics.arrivals
        assert snap["scheduler_rejected_total"]["value"] == plain.metrics.rejected


class TestTraceContent:
    """What a real traced run actually records."""

    def run_traced(self, *, faulted: bool = False):
        sc = scenario(42, load=1.5)
        if faulted:
            sc = sc.with_overrides(faults=FaultProcess(rate=6e-4))
        obs = Observability(trace=True)
        simulate(sc, "EDF-DLT", obs=obs)
        return obs.tracer.records

    def test_span_taxonomy_present(self):
        records = self.run_traced()
        cats = {r["cat"] for r in records}
        names = {r["name"] for r in records}
        assert {"engine", "admission"} <= cats
        assert {"engine.dispatch", "admission.try_admit"} <= names
        # admission nests inside the dispatch that triggered it
        by_name = {r["name"]: r for r in records}
        assert by_name["admission.try_admit"]["depth"] > 0

    def test_fault_events_traced(self):
        records = self.run_traced(faulted=True)
        names = {r["name"] for r in records}
        assert "fault.window_open" in names
        assert "fault.window_close" in names

    def test_timestamps_monotone_per_track(self):
        sc = fleet_scenario("ucb1")
        obs = Observability(trace=True)
        simulate_fleet(sc, "EDF-DLT", obs=obs)
        records = obs.tracer.records
        tracks: dict[int, float] = {}
        for r in records:
            last = tracks.get(r["track"], float("-inf"))
            assert r["ts"] >= last, f"track {r['track']} went backwards"
            tracks[r["track"]] = r["ts"]
        # members 0..n-1 plus the fleet-level routing track
        assert set(tracks) == {0, 1, 2}
        fleet_names = {r["name"] for r in records if r["track"] == 2}
        assert {"fleet.route", "fleet.routed", "bandit.select"} <= fleet_names

    def test_bandit_feedback_traced(self):
        sc = fleet_scenario("thompson")
        obs = Observability(trace=True)
        simulate_fleet(sc, "EDF-DLT", obs=obs)
        learn = [r for r in obs.tracer.records if r["cat"] == "learn"]
        assert any(r["name"] == "bandit.select" for r in learn)
        assert any(r["name"] == "bandit.feedback" for r in learn)
        for r in learn:
            if r["name"] == "bandit.feedback":
                assert 0.0 <= r["args"]["reward"] <= 1.0


class TestExecutionModeDeterminism:
    """Snapshots are identical across serial / process / thread pools."""

    def specs(self) -> list[RunSpec]:
        sc = scenario(5, total_time=25_000.0)
        return [
            RunSpec(
                scenario=sc.with_seed(replication_seed(sc.seed, rep)),
                algorithm="EDF-DLT",
                labels={"replication": rep},
            )
            for rep in range(3)
        ]

    def test_serial_process_thread_summaries_identical(self):
        serial = BatchRunner(workers=None).run(self.specs())
        process = BatchRunner(workers=2, workers_mode="process").run(self.specs())
        thread = BatchRunner(workers=2, workers_mode="thread").run(self.specs())
        for a, b, c in zip(serial, process, thread):
            assert a.metrics == b.metrics == c.metrics
            assert a.metrics.obs is not None
            assert a.metrics.obs == b.metrics.obs == c.metrics.obs

    def test_summary_rows_stay_flat(self):
        # The obs snapshot must not leak into CSV/JSON row exports.
        from repro.metrics.collector import metric_names

        results = BatchRunner().run(self.specs()[:1])
        row = results[0].metrics.as_dict()
        assert "obs" not in row
        assert "obs" not in metric_names()
        json.dumps(row)  # must stay JSON-serializable


class TestProfiler:
    """Capture-and-replay: honest timings, identical decision streams."""

    def test_profile_admission_report(self):
        from repro.obs.profile import profile_admission

        report = profile_admission(
            scenario(3, total_time=20_000.0),
            "EDF-DLT",
            engines=("fast", "batch", "reference"),
        )
        assert report["calls"] > 0
        for engine in ("fast", "batch", "reference"):
            cell = report["engines"][engine]
            assert cell["decisions_per_sec"] > 0
        # fast/batch kernels expose phase hooks; reference does not
        assert {row["phase"] for row in report["engines"]["fast"]["phases"]} == {
            "queue_order",
            "kernel_place",
            "prefix_restore",
        }
        assert report["engines"]["reference"]["phases"] == []

    def test_fleet_profile_exercises_probe_kernel(self):
        from repro.obs.profile import profile_admission

        report = profile_admission(
            fleet_scenario("earliest-finish"), "EDF-DLT", fleet=True
        )
        assert report["fleet"] is True
        assert report["calls"] > 0

    def test_instrumented_replay_is_identical(self):
        from repro.obs.profile import capture_calls, replay_calls

        sc = scenario(3, total_time=20_000.0)
        calls, _ = capture_calls(sc, "EDF-DLT", fleet=False)
        _, plain = replay_calls(sc, "EDF-DLT", "fast", calls, reps=1)
        obs = Observability(trace=True)
        _, instrumented = replay_calls(
            sc, "EDF-DLT", "fast", calls, reps=1, obs=obs
        )
        assert plain == instrumented


class TestObservabilityBundle:
    """The Observability container and its fleet member views."""

    def test_default_has_registry_no_tracer(self):
        obs = Observability()
        assert isinstance(obs.registry, MetricsRegistry)
        assert obs.tracer is None

    def test_member_views_share_the_tracer(self):
        obs = Observability(trace=True)
        m0 = obs.member(0)
        m1 = obs.member(1)
        assert m0.registry is not m1.registry
        m0.tracer.event("a", "t", 1.0)
        m1.tracer.event("b", "t", 1.0)
        assert [r["track"] for r in obs.tracer.records] == [0, 1]

    def test_depth_buckets_cover_typical_queues(self):
        assert DEPTH_BUCKETS[0] == 0.0
        assert list(DEPTH_BUCKETS) == sorted(DEPTH_BUCKETS)
