"""Tests for workload generation (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dlt
from repro.workload.generator import WorkloadGenerator, generate_tasks
from repro.workload.spec import SimulationConfig
from repro.core.errors import InvalidParameterError


def config(**overrides):
    base = dict(
        nodes=16,
        cms=1.0,
        cps=100.0,
        system_load=0.5,
        avg_sigma=200.0,
        dc_ratio=2.0,
        total_time=300_000.0,
        seed=42,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestSpec:
    def test_derived_quantities(self):
        cfg = config()
        e_avg = dlt.execution_time(200.0, 16, 1.0, 100.0)
        assert cfg.min_exec_time_avg == pytest.approx(e_avg)
        assert cfg.mean_interarrival == pytest.approx(e_avg / 0.5)
        assert cfg.avg_deadline == pytest.approx(2.0 * e_avg)

    def test_with_overrides_revalidates(self):
        cfg = config()
        assert cfg.with_overrides(system_load=1.0).system_load == 1.0
        with pytest.raises(InvalidParameterError):
            cfg.with_overrides(system_load=-1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("system_load", 0.0),
            ("avg_sigma", -1.0),
            ("dc_ratio", 0.0),
            ("total_time", 0.0),
            ("seed", -1),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(InvalidParameterError):
            config(**{field: value})


class TestArrivals:
    def test_poisson_rate_matches_system_load(self):
        """Over a long horizon the empirical rate ≈ λ = load / E(Avgσ,N)."""
        cfg = config(total_time=3_000_000.0, seed=1)
        tasks = generate_tasks(cfg)
        expected = cfg.total_time / cfg.mean_interarrival
        assert len(tasks) == pytest.approx(expected, rel=0.1)

    def test_arrivals_sorted_within_horizon(self):
        tasks = generate_tasks(config())
        arr = [t.arrival for t in tasks]
        assert arr == sorted(arr)
        assert arr[0] > 0.0
        assert arr[-1] < config().total_time

    def test_ids_are_arrival_order(self):
        tasks = generate_tasks(config())
        assert [t.task_id for t in tasks] == list(range(len(tasks)))

    def test_exponential_gaps(self):
        """Kolmogorov-style sanity: gap CV ≈ 1 for an exponential."""
        cfg = config(total_time=3_000_000.0, seed=2)
        tasks = generate_tasks(cfg)
        gaps = np.diff([t.arrival for t in tasks])
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.1)


class TestSigmas:
    def test_all_positive(self):
        tasks = generate_tasks(config(seed=3))
        assert all(t.sigma > 0 for t in tasks)

    def test_truncated_normal_mean(self):
        """Truncation at 0 of N(μ, μ) lifts the mean to ≈ 1.288 μ."""
        cfg = config(total_time=5_000_000.0, seed=4)
        sig = np.array([t.sigma for t in generate_tasks(cfg)])
        lifted = 200.0 * (1.0 + 0.2420 / 0.8413)  # μ(1 + φ(1)/Φ(1))
        assert sig.mean() == pytest.approx(lifted, rel=0.05)


class TestDeadlines:
    def test_floor_above_min_execution(self):
        """Every D_i exceeds E(σ_i, N) — the Section 5 requirement."""
        cfg = config(seed=5)
        for t in generate_tasks(cfg):
            assert t.deadline > dlt.execution_time(t.sigma, 16, 1.0, 100.0) * (
                1 - 1e-12
            )

    def test_uniform_range_when_unclamped(self):
        cfg = config(total_time=5_000_000.0, seed=6)
        tasks = generate_tasks(cfg)
        avg_d = cfg.avg_deadline
        ds = np.array([t.deadline for t in tasks])
        # The clamp only moves values up, so the support bounds are
        # [AvgD/2, max(3AvgD/2, clamps)] and most mass is inside.
        assert ds.min() >= avg_d / 2.0 * (1 - 1e-9)
        inside = ((ds >= avg_d / 2) & (ds <= 1.5 * avg_d)).mean()
        assert inside > 0.95

    def test_dc_ratio_scales_deadlines(self):
        d2 = np.mean([t.deadline for t in generate_tasks(config(seed=7))])
        d20 = np.mean(
            [t.deadline for t in generate_tasks(config(seed=7, dc_ratio=20.0))]
        )
        assert d20 == pytest.approx(10.0 * d2, rel=0.15)


class TestReproducibility:
    def test_same_seed_same_tasks(self):
        t1 = generate_tasks(config(seed=11))
        t2 = generate_tasks(config(seed=11))
        assert len(t1) == len(t2)
        for a, b in zip(t1, t2):
            assert a == b

    def test_different_seed_different_tasks(self):
        t1 = generate_tasks(config(seed=11))
        t2 = generate_tasks(config(seed=12))
        assert any(a != b for a, b in zip(t1, t2)) or len(t1) != len(t2)

    def test_algorithm_rng_independent_of_generation(self):
        """Consuming the algorithm stream must not change the task set."""
        gen = WorkloadGenerator(config(seed=13))
        rng = gen.algorithm_rng()
        rng.integers(0, 100, size=1000)  # burn algorithm-side draws
        t1 = gen.generate()
        t2 = WorkloadGenerator(config(seed=13)).generate()
        assert t1 == t2
