"""Tests for EDF / FIFO ordering policies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policies import EdfPolicy, FifoPolicy, make_policy
from repro.core.task import DivisibleTask


def task(tid, arrival, deadline):
    return DivisibleTask(task_id=tid, arrival=arrival, sigma=1.0, deadline=deadline)


class TestEdf:
    def test_orders_by_absolute_deadline(self):
        a = task(0, arrival=0.0, deadline=100.0)  # abs 100
        b = task(1, arrival=50.0, deadline=10.0)  # abs 60
        assert [t.task_id for t in EdfPolicy().order([a, b])] == [1, 0]

    def test_tie_broken_by_arrival_then_id(self):
        a = task(0, arrival=20.0, deadline=80.0)  # abs 100
        b = task(1, arrival=10.0, deadline=90.0)  # abs 100
        c = task(2, arrival=10.0, deadline=90.0)  # abs 100
        assert [t.task_id for t in EdfPolicy().order([a, c, b])] == [1, 2, 0]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0.1, max_value=1e6),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_output_sorted_by_key(self, specs):
        tasks = [task(i, a, d) for i, (a, d) in enumerate(specs)]
        ordered = EdfPolicy().order(tasks)
        deadlines = [t.absolute_deadline for t in ordered]
        assert deadlines == sorted(deadlines)
        assert sorted(t.task_id for t in ordered) == list(range(len(tasks)))


class TestFifo:
    def test_orders_by_arrival(self):
        a = task(0, arrival=5.0, deadline=1.0)
        b = task(1, arrival=1.0, deadline=100.0)
        assert [t.task_id for t in FifoPolicy().order([a, b])] == [1, 0]

    def test_tie_broken_by_id(self):
        a = task(3, arrival=1.0, deadline=5.0)
        b = task(1, arrival=1.0, deadline=2.0)
        assert [t.task_id for t in FifoPolicy().order([a, b])] == [1, 3]

    def test_deadline_irrelevant(self):
        a = task(0, arrival=0.0, deadline=1000.0)
        b = task(1, arrival=1.0, deadline=1.0)  # earlier abs deadline
        assert [t.task_id for t in FifoPolicy().order([a, b])] == [0, 1]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls", [("EDF", EdfPolicy), ("edf", EdfPolicy), ("FIFO", FifoPolicy)]
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("LIFO")
