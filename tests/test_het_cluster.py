"""Heterogeneous-cluster coverage: ClusterProfile, analysis, soundness.

Three layers of guarantees:

* **Construction** — ``ClusterProfile`` vector validation, the deprecated
  ``ClusterSpec`` wrapper, spread/vector constructors.
* **Homogeneous parity** — a profile with uniform vectors must reproduce
  the homogeneous closed forms (``execution_time``, ``opr_alphas``,
  ``ñ_min``) *exactly* (the dispatch is bit-for-bit), and the general
  vector recurrences must agree with the closed forms to float round-off.
* **Soundness** — the Theorem-4 estimate remains an upper bound on the
  actual sequential dispatch for arbitrary per-node cost vectors, both at
  the single-task model level and over full randomized end-to-end runs
  with the strict validator armed.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core import dlt, het_model  # noqa: E402
from repro.core.cluster import ClusterProfile, ClusterSpec  # noqa: E402
from repro.core.errors import InvalidParameterError  # noqa: E402
from repro.experiments.runner import simulate  # noqa: E402
from repro.experiments.sweep import run_spread_sweep  # noqa: E402
from repro.workload.scenario import Scenario, WorkloadModel  # noqa: E402

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

cost_value = st.floats(min_value=0.5, max_value=8.0, allow_nan=False)
cps_value = st.floats(min_value=20.0, max_value=400.0, allow_nan=False)


@st.composite
def het_profiles(draw, min_nodes=2, max_nodes=8):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    cps = draw(
        st.lists(cps_value, min_size=n, max_size=n).filter(
            lambda v: len(set(v)) > 1
        )
    )
    cms = draw(st.lists(cost_value, min_size=n, max_size=n))
    return ClusterProfile(cms_vector=tuple(cms), cps_vector=tuple(cps))


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class TestClusterProfile:
    def test_homogeneous_roundtrip(self):
        p = ClusterProfile.homogeneous(4, 1.0, 100.0)
        assert p.nodes == 4
        assert p.is_homogeneous
        assert p.cms == 1.0 and p.cps == 100.0
        assert p.worst_cms == 1.0 and p.worst_cps == 100.0
        assert p.beta == pytest.approx(100.0 / 101.0)

    def test_vectors_validated(self):
        with pytest.raises(InvalidParameterError):
            ClusterProfile(cms_vector=(), cps_vector=())
        with pytest.raises(InvalidParameterError):
            ClusterProfile(cms_vector=(1.0,), cps_vector=(1.0, 2.0))
        with pytest.raises(InvalidParameterError):
            ClusterProfile(cms_vector=(0.0,), cps_vector=(1.0,))
        with pytest.raises(InvalidParameterError):
            ClusterProfile(cms_vector=(1.0,), cps_vector=(float("nan"),))

    def test_scalar_views_raise_on_heterogeneous(self):
        p = ClusterProfile.from_vectors(cps=[50.0, 100.0], cms=1.0)
        assert not p.is_homogeneous
        assert p.cms == 1.0  # links are still uniform
        with pytest.raises(InvalidParameterError):
            _ = p.cps
        assert p.worst_cps == 100.0

    def test_with_spread_zero_is_homogeneous(self):
        assert ClusterProfile.with_spread(
            8, 1.0, 100.0, speed_spread=0.0
        ) == ClusterProfile.homogeneous(8, 1.0, 100.0)

    def test_with_spread_mean_and_bounds(self):
        p = ClusterProfile.with_spread(5, 1.0, 100.0, speed_spread=1.0)
        cps = np.asarray(p.cps_vector)
        assert cps[0] == pytest.approx(50.0)
        assert cps[-1] == pytest.approx(150.0)
        assert cps.mean() == pytest.approx(100.0)
        assert not p.is_homogeneous
        with pytest.raises(InvalidParameterError):
            ClusterProfile.with_spread(4, 1.0, 100.0, speed_spread=2.0)

    def test_costs_for_gathers_by_id(self):
        p = ClusterProfile.from_vectors(cps=[10.0, 20.0, 30.0], cms=[1.0, 2.0, 3.0])
        cms, cps = p.costs_for([2, 0])
        assert cms.tolist() == [3.0, 1.0]
        assert cps.tolist() == [30.0, 10.0]

    def test_cluster_spec_deprecated_wrapper(self):
        with pytest.warns(DeprecationWarning, match="ClusterProfile"):
            spec = ClusterSpec(nodes=4, cms=1.0, cps=100.0)
        assert spec == ClusterProfile.homogeneous(4, 1.0, 100.0)
        with pytest.warns(DeprecationWarning), pytest.raises(InvalidParameterError):
            ClusterSpec(nodes=0, cms=1.0, cps=100.0)


# ---------------------------------------------------------------------------
# Homogeneous parity: uniform vectors ≡ closed forms
# ---------------------------------------------------------------------------


class TestUniformParity:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=32),
        cms=cost_value,
        cps=cps_value,
        sigma=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    def test_execution_time_exact(self, n, cms, cps, sigma):
        """Uniform profile dispatches to the closed form bit-for-bit."""
        p = ClusterProfile.homogeneous(n, cms, cps)
        assert p.min_execution_time(sigma) == dlt.execution_time(sigma, n, cms, cps)
        sig = np.array([sigma, 2.0 * sigma, 3.0 * sigma])
        assert (
            p.min_execution_time_array(sig)
            == dlt.execution_time_array(sig, n, cms, cps)
        ).all()

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=32), cms=cost_value, cps=cps_value)
    def test_opr_alphas_match_het_recurrence(self, n, cms, cps):
        """The general recurrence collapses to the geometric rule."""
        geometric = dlt.opr_alphas(n, cms, cps)
        general = dlt.het_alphas((cms,) * n, (cps,) * n)
        np.testing.assert_allclose(general, geometric, rtol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=32),
        cms=cost_value,
        cps=cps_value,
        sigma=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    def test_het_execution_time_matches_closed_form(self, n, cms, cps, sigma):
        closed = dlt.execution_time(sigma, n, cms, cps)
        general = dlt.het_execution_time(sigma, (cms,) * n, (cps,) * n)
        assert general == pytest.approx(closed, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        cms=cost_value,
        cps=cps_value,
        sigma=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        budget=st.floats(min_value=10.0, max_value=100_000.0, allow_nan=False),
    )
    def test_ntilde_min_vector_equals_scalar(self, cms, cps, sigma, budget):
        """Uniform cost vectors give exactly the scalar ñ_min (Eq. 14)."""
        scalar = het_model.ntilde_min(sigma, cms, cps, 0.0, budget, 0.0)
        vector = het_model.ntilde_min(
            sigma, (cms,) * 6, (cps,) * 6, 0.0, budget, 0.0
        )
        assert scalar == vector

    def test_build_model_uniform_vector_matches_scalars(self):
        """Vector input with equal entries ≈ the scalar fast path."""
        releases = [0.0, 3.0, 7.0, 7.0]
        scalar = het_model.build_model(100.0, releases, 1.0, 50.0)
        vector = het_model.build_model(100.0, releases, (1.0,) * 4, (50.0,) * 4)
        np.testing.assert_allclose(vector.alphas, scalar.alphas, rtol=1e-12)
        assert vector.completion == pytest.approx(scalar.completion, rel=1e-12)
        assert vector.no_iit_exec_time == pytest.approx(
            scalar.no_iit_exec_time, rel=1e-12
        )


# ---------------------------------------------------------------------------
# Heterogeneous analysis soundness
# ---------------------------------------------------------------------------


class TestHeterogeneousModel:
    @settings(max_examples=60, deadline=None)
    @given(
        profile=het_profiles(),
        sigma=st.floats(min_value=5.0, max_value=400.0, allow_nan=False),
        data=st.data(),
    )
    def test_estimate_bounds_actual_dispatch(self, profile, sigma, data):
        """Theorem 4 generalized: actual completion <= r_n + Ê."""
        n = profile.nodes
        releases = sorted(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        cms, cps = profile.costs_for(range(n))
        model = het_model.build_model(sigma, releases, cms, cps)
        assert abs(sum(model.alphas) - 1.0) < 1e-9
        schedule = het_model.actual_node_schedule(
            sigma, model.alphas, releases, cms, cps
        )
        tol = 1e-6 * max(1.0, abs(model.completion))
        assert schedule.completion <= model.completion + tol

    @settings(max_examples=60, deadline=None)
    @given(profile=het_profiles(), sigma=st.floats(min_value=5.0, max_value=400.0))
    def test_het_execution_time_below_worst_case_bound(self, profile, sigma):
        """E_het <= E_hom at worst-case costs — what makes ñ_min safe."""
        actual = dlt.het_execution_time(sigma, profile.cms_vector, profile.cps_vector)
        bound = dlt.execution_time(
            sigma, profile.nodes, profile.worst_cms, profile.worst_cps
        )
        assert actual <= bound * (1.0 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(profile=het_profiles())
    def test_het_alphas_positive_and_normalized(self, profile):
        alphas = dlt.het_alphas(profile.cms_vector, profile.cps_vector)
        assert (alphas > 0).all()
        assert alphas.sum() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# End-to-end: randomized heterogeneous runs under the strict validator
# ---------------------------------------------------------------------------


class TestHeterogeneousEndToEnd:
    @settings(max_examples=10, deadline=None)
    @given(
        profile=het_profiles(min_nodes=3, max_nodes=8),
        algorithm=st.sampled_from(
            ["EDF-DLT", "FIFO-DLT", "EDF-OPR-MN", "EDF-UserSplit", "EDF-DLT-AN"]
        ),
        load=st.floats(min_value=0.2, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_theorem4_holds_on_random_heterogeneous_runs(
        self, profile, algorithm, load, seed
    ):
        """The strict validator (raises on violation) passes every run."""
        scenario = Scenario(
            cluster=profile,
            workload=WorkloadModel.paper(
                system_load=load, avg_sigma=100.0, dc_ratio=3.0, cluster=profile
            ),
            total_time=15_000.0,
            seed=seed,
            name="het-prop",
        )
        result = simulate(scenario, algorithm, validate=True, trace=True)
        assert result.output.validation.ok
        assert result.metrics.deadline_misses == 0

    def test_spread_sweep_runs_and_is_paired(self):
        r = run_spread_sweep(
            spreads=[0.0, 1.0],
            algorithms=("EDF-DLT", "EDF-OPR-MN"),
            replications=2,
            total_time=20_000.0,
            nodes=6,
        )
        assert r.spreads == (0.0, 1.0)
        for pts in r.series.values():
            assert len(pts) == 2
            assert all(0.0 <= p.mean <= 1.0 for p in pts)

    def test_paper_baseline_spread_calibrates_against_het_capacity(self):
        hom = Scenario.paper_baseline(system_load=0.5, total_time=10_000.0, seed=1)
        het = Scenario.paper_baseline(
            system_load=0.5, total_time=10_000.0, seed=1, speed_spread=1.0
        )
        assert hom.cluster.is_homogeneous
        assert not het.cluster.is_homogeneous
        # The calibrated mean inter-arrival follows the het cluster's E.
        assert het.workload.arrivals.mean_interarrival == pytest.approx(
            het.cluster.min_execution_time(200.0) / 0.5
        )
