"""Tests for the composable Scenario API and its workload models."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.cluster import ClusterProfile, ClusterSpec
from repro.core.errors import InvalidParameterError
from repro.core import dlt
from repro.experiments.runner import simulate
from repro.workload.generator import WorkloadGenerator, generate_tasks
from repro.workload.models import (
    MMPPProcess,
    ParetoSizes,
    PoissonProcess,
    ProportionalDeadlines,
    TraceArrivals,
    TruncatedNormalSizes,
    UniformDeadlines,
    UniformSizes,
)
from repro.workload.scenario import Scenario, WorkloadModel
from repro.workload.spec import SimulationConfig


def fast_config(**kw) -> SimulationConfig:
    base = dict(
        nodes=8,
        cms=1.0,
        cps=100.0,
        system_load=0.6,
        avg_sigma=100.0,
        dc_ratio=2.0,
        total_time=50_000.0,
        seed=11,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestLegacyParity:
    """Scenario path ≡ legacy SimulationConfig path, bit for bit."""

    def test_task_sets_identical(self):
        cfg = fast_config()
        legacy = generate_tasks(cfg)
        via_scenario = Scenario.from_config(cfg).generate_tasks()
        assert legacy == via_scenario
        assert len(legacy) > 0

    def test_to_scenario_equals_from_config_and_paper_baseline(self):
        cfg = fast_config()
        assert cfg.to_scenario() == Scenario.from_config(cfg)
        assert cfg.to_scenario() == Scenario.paper_baseline(
            system_load=cfg.system_load,
            total_time=cfg.total_time,
            seed=cfg.seed,
            nodes=cfg.nodes,
            cms=cfg.cms,
            cps=cfg.cps,
            avg_sigma=cfg.avg_sigma,
            dc_ratio=cfg.dc_ratio,
            name="",
        )

    def test_metrics_byte_identical(self):
        """Acceptance: Scenario.paper_baseline reproduces the legacy path."""
        cfg = fast_config()
        scenario = Scenario.paper_baseline(
            system_load=cfg.system_load,
            total_time=cfg.total_time,
            seed=cfg.seed,
            nodes=cfg.nodes,
            cms=cfg.cms,
            cps=cfg.cps,
            avg_sigma=cfg.avg_sigma,
            dc_ratio=cfg.dc_ratio,
        )
        for algorithm in ("EDF-DLT", "EDF-UserSplit"):
            legacy = simulate(cfg, algorithm)
            composed = simulate(scenario, algorithm)
            assert legacy.metrics == composed.metrics

    def test_algorithm_stream_identical(self):
        cfg = fast_config()
        a = WorkloadGenerator(cfg).algorithm_rng().random(16)
        b = Scenario.from_config(cfg).algorithm_rng().random(16)
        assert (a == b).all()


class TestScenario:
    def test_determinism_same_seed(self):
        scenario = Scenario.paper_baseline(
            system_load=0.5, total_time=40_000.0, seed=99
        )
        assert scenario.generate_tasks() == scenario.generate_tasks()

    def test_different_seed_differs(self):
        scenario = Scenario.paper_baseline(
            system_load=0.5, total_time=40_000.0, seed=99
        )
        assert scenario.generate_tasks() != scenario.with_seed(100).generate_tasks()

    def test_with_overrides_revalidates(self):
        scenario = Scenario.paper_baseline(
            system_load=0.5, total_time=40_000.0, seed=1
        )
        with pytest.raises(InvalidParameterError):
            scenario.with_overrides(total_time=-1.0)
        with pytest.raises(InvalidParameterError):
            scenario.with_seed(-3)

    def test_component_type_validation(self):
        cluster = ClusterSpec(nodes=4, cms=1.0, cps=10.0)
        with pytest.raises(InvalidParameterError):
            WorkloadModel(
                arrivals=object(),  # type: ignore[arg-type]
                sizes=TruncatedNormalSizes(mean=10.0),
                deadlines=ProportionalDeadlines(factor=2.0),
            )
        with pytest.raises(InvalidParameterError):
            Scenario(
                cluster="not-a-cluster",  # type: ignore[arg-type]
                workload=WorkloadModel.paper(
                    system_load=0.5, avg_sigma=10.0, dc_ratio=2.0, cluster=cluster
                ),
                total_time=100.0,
                seed=0,
            )

    def test_swapped_components_rejected(self):
        """All protocols share `sample`; the role marker tells them apart."""
        with pytest.raises(InvalidParameterError, match="arrivals"):
            WorkloadModel(
                arrivals=TruncatedNormalSizes(mean=10.0),  # type: ignore[arg-type]
                sizes=PoissonProcess(mean_interarrival=5.0),  # type: ignore[arg-type]
                deadlines=ProportionalDeadlines(factor=2.0),
            )
        with pytest.raises(InvalidParameterError, match="deadlines"):
            WorkloadModel(
                arrivals=PoissonProcess(mean_interarrival=5.0),
                sizes=TruncatedNormalSizes(mean=10.0),
                deadlines=TruncatedNormalSizes(mean=10.0),  # type: ignore[arg-type]
            )

    def test_describe_is_flat_and_json_friendly(self):
        scenario = Scenario.paper_baseline(
            system_load=0.5, total_time=40_000.0, seed=1
        )
        d = scenario.describe()
        assert d["nodes"] == 16
        assert d["arrivals"] == "PoissonProcess"
        assert d["seed"] == 1
        assert all(isinstance(v, (str, int, float)) for v in d.values())

    def test_scenario_pickles(self):
        scenario = Scenario.paper_baseline(
            system_load=0.5, total_time=40_000.0, seed=1
        )
        assert pickle.loads(pickle.dumps(scenario)) == scenario


class TestArrivalProcesses:
    def test_poisson_fills_horizon(self, rng):
        arr = PoissonProcess(mean_interarrival=10.0).sample(rng, 10_000.0)
        assert arr.size > 0
        assert (np.diff(arr) > 0).all()
        assert arr[-1] < 10_000.0
        # Long-run rate within 10% of the nominal 1/10.
        assert arr.size == pytest.approx(1_000, rel=0.10)

    def test_poisson_rejects_bad_mean(self):
        with pytest.raises(InvalidParameterError):
            PoissonProcess(mean_interarrival=0.0)

    def test_mmpp_balanced_matches_target_rate(self, rng):
        proc = MMPPProcess.balanced(10.0, burst_factor=4.0, sojourn_gaps=25.0)
        arr = proc.sample(rng, 200_000.0)
        assert (np.diff(arr) > 0).all()
        # Long-run mean gap calibrated to 10 (tolerance: finite horizon).
        assert arr.size == pytest.approx(20_000, rel=0.15)

    def test_mmpp_is_burstier_than_poisson(self, rng):
        """Gap coefficient of variation exceeds the Poisson value 1."""
        proc = MMPPProcess.balanced(10.0, burst_factor=8.0, sojourn_gaps=50.0)
        gaps = np.diff(proc.sample(rng, 200_000.0))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.1

    def test_mmpp_rejects_bad_burst_factor(self):
        with pytest.raises(InvalidParameterError):
            MMPPProcess.balanced(10.0, burst_factor=1.0)

    def test_trace_replay_clips_to_horizon(self, rng):
        trace = TraceArrivals.from_sequence([1.0, 5.0, 9.5, 20.0])
        arr = trace.sample(rng, 10.0)
        assert arr.tolist() == [1.0, 5.0, 9.5]

    def test_trace_requires_strictly_increasing(self):
        with pytest.raises(InvalidParameterError):
            TraceArrivals.from_sequence([1.0, 1.0])
        with pytest.raises(InvalidParameterError):
            TraceArrivals.from_sequence([-1.0, 2.0])

    def test_trace_from_csv_with_header(self, tmp_path, rng):
        path = tmp_path / "trace.csv"
        path.write_text(
            "task_id,arrival_time,source\n"
            "0,1.5,siteA\n"
            "1,4.0,siteB\n"
            "2,9.25,siteA\n"
        )
        trace = TraceArrivals.from_csv(path)
        assert trace.times == (1.5, 4.0, 9.25)
        assert trace.sample(rng, 5.0).tolist() == [1.5, 4.0]

    def test_trace_from_csv_headerless_first_column(self, tmp_path):
        path = tmp_path / "bare.csv"
        path.write_text("2.0\n3.5\n10.0\n")
        assert TraceArrivals.from_csv(path).times == (2.0, 3.5, 10.0)

    def test_trace_from_csv_rejects_bad_files(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(InvalidParameterError):
            TraceArrivals.from_csv(empty)
        header_only = tmp_path / "header.csv"
        header_only.write_text("arrival_time\n")
        with pytest.raises(InvalidParameterError):
            TraceArrivals.from_csv(header_only)
        garbled = tmp_path / "bad.csv"
        garbled.write_text("arrival_time\n1.0\nnot-a-number\n")
        with pytest.raises(InvalidParameterError):
            TraceArrivals.from_csv(garbled)

    def test_trace_from_csv_refuses_to_guess_among_columns(self, tmp_path):
        """A multi-column header without the time column must not fall
        back to column 0 (task ids sort ascending and would pass)."""
        path = tmp_path / "renamed.csv"
        path.write_text("task_id,timestamp\n0,100.5\n1,250.0\n2,900.0\n")
        with pytest.raises(InvalidParameterError, match="arrival_time"):
            TraceArrivals.from_csv(path)
        trace = TraceArrivals.from_csv(path, column="timestamp")
        assert trace.times == (100.5, 250.0, 900.0)

    def test_trace_from_csv_single_renamed_column_still_loads(self, tmp_path):
        path = tmp_path / "single.csv"
        path.write_text("ts\n1.0\n2.0\n")
        assert TraceArrivals.from_csv(path).times == (1.0, 2.0)

    def test_trace_from_parquet_matches_csv(self, tmp_path):
        """Both loaders agree on the same trace (shared validation path)."""
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")
        times = [1.5, 4.0, 9.25]
        table = pa.table(
            {"task_id": [0, 1, 2], "arrival_time": times, "source": ["a", "b", "a"]}
        )
        path = tmp_path / "trace.parquet"
        pq.write_table(table, path)
        csv_path = tmp_path / "trace.csv"
        csv_path.write_text(
            "task_id,arrival_time,source\n0,1.5,a\n1,4.0,b\n2,9.25,a\n"
        )
        assert TraceArrivals.from_parquet(path) == TraceArrivals.from_csv(csv_path)

    def test_trace_from_parquet_column_rules(self, tmp_path):
        """Named column, single-column fallback, multi-column refusal."""
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")
        single = tmp_path / "single.parquet"
        pq.write_table(pa.table({"ts": [1.0, 2.0]}), single)
        assert TraceArrivals.from_parquet(single).times == (1.0, 2.0)
        multi = tmp_path / "multi.parquet"
        pq.write_table(pa.table({"task_id": [0, 1], "timestamp": [1.0, 2.0]}), multi)
        with pytest.raises(InvalidParameterError, match="arrival_time"):
            TraceArrivals.from_parquet(multi)
        assert TraceArrivals.from_parquet(multi, column="timestamp").times == (
            1.0,
            2.0,
        )

    def test_trace_from_parquet_rejects_bad_tables(self, tmp_path):
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")
        empty = tmp_path / "empty.parquet"
        pq.write_table(pa.table({"arrival_time": pa.array([], type=pa.float64())}), empty)
        with pytest.raises(InvalidParameterError, match="empty"):
            TraceArrivals.from_parquet(empty)
        nulls = tmp_path / "nulls.parquet"
        pq.write_table(pa.table({"arrival_time": [1.0, None, 3.0]}), nulls)
        with pytest.raises(InvalidParameterError, match="null"):
            TraceArrivals.from_parquet(nulls)
        unsorted = tmp_path / "unsorted.parquet"
        pq.write_table(pa.table({"arrival_time": [2.0, 1.0]}), unsorted)
        with pytest.raises(InvalidParameterError, match="increasing"):
            TraceArrivals.from_parquet(unsorted)
        strings = tmp_path / "strings.parquet"
        pq.write_table(pa.table({"arrival_time": ["first", "second"]}), strings)
        with pytest.raises(InvalidParameterError, match="malformed"):
            TraceArrivals.from_parquet(strings)

    def test_trace_from_parquet_without_pyarrow_explains(self, tmp_path, monkeypatch):
        """Missing optional dependency fails with a how-to, not a stack."""
        import sys

        monkeypatch.setitem(sys.modules, "pyarrow", None)
        monkeypatch.setitem(sys.modules, "pyarrow.parquet", None)
        with pytest.raises(InvalidParameterError, match="pyarrow"):
            TraceArrivals.from_parquet(tmp_path / "whatever.parquet")

    def test_sample_trace_example_loads_and_runs(self):
        """The shipped examples/sample_arrivals.csv replays end to end."""
        import pathlib

        from repro.experiments.runner import simulate
        from repro.workload.models import ProportionalDeadlines

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "examples"
            / "sample_arrivals.csv"
        )
        trace = TraceArrivals.from_csv(path)
        assert len(trace.times) >= 20
        cluster = ClusterProfile.homogeneous(8, 1.0, 100.0)
        scenario = Scenario(
            cluster=cluster,
            workload=WorkloadModel(
                arrivals=trace,
                sizes=TruncatedNormalSizes(mean=100.0),
                deadlines=ProportionalDeadlines(factor=4.0),
            ),
            total_time=30_000.0,
            seed=5,
            name="csv-trace",
        )
        result = simulate(scenario, "EDF-DLT")
        assert result.output.validation.ok
        assert result.metrics.arrivals == sum(
            1 for t in trace.times if t < 30_000.0
        )


class TestSizeModels:
    def test_truncated_normal_positive_and_calibrated(self, rng):
        sig = TruncatedNormalSizes(mean=100.0).sample(rng, 20_000)
        assert (sig > 0).all()
        # Truncation inflates the mean to ≈ 1.288 × nominal.
        assert sig.mean() == pytest.approx(128.8, rel=0.03)

    def test_uniform_sizes_within_bounds(self, rng):
        sig = UniformSizes(low=10.0, high=20.0).sample(rng, 5_000)
        assert (sig >= 10.0).all() and (sig <= 20.0).all()
        with pytest.raises(InvalidParameterError):
            UniformSizes(low=20.0, high=10.0)

    def test_pareto_sizes_heavy_tail_with_given_mean(self, rng):
        model = ParetoSizes(mean=100.0, alpha=2.5)
        sig = model.sample(rng, 200_000)
        assert (sig >= model.scale).all()
        assert sig.mean() == pytest.approx(100.0, rel=0.05)
        with pytest.raises(InvalidParameterError):
            ParetoSizes(mean=100.0, alpha=1.0)


class TestDeadlineModels:
    def test_uniform_deadlines_floor_at_min_exec(self, rng, small_cluster):
        sigmas = np.asarray([10.0, 100.0, 1000.0])
        model = UniformDeadlines(low=1.0, high=2.0)  # absurdly tight window
        deadlines = model.sample(rng, sigmas, small_cluster)
        min_exec = dlt.execution_time_array(
            sigmas, small_cluster.nodes, small_cluster.cms, small_cluster.cps
        )
        assert (deadlines > min_exec).all()

    def test_from_dc_ratio_matches_paper_window(self, baseline_cluster):
        model = UniformDeadlines.from_dc_ratio(2.0, 200.0, baseline_cluster)
        avg_d = 2.0 * dlt.execution_time(200.0, 16, 1.0, 100.0)
        assert model.low == avg_d / 2.0
        assert model.high == 1.5 * avg_d

    def test_proportional_deadlines(self, rng, small_cluster):
        sigmas = np.asarray([10.0, 50.0])
        model = ProportionalDeadlines(factor=3.0)
        deadlines = model.sample(rng, sigmas, small_cluster)
        min_exec = dlt.execution_time_array(
            sigmas, small_cluster.nodes, small_cluster.cms, small_cluster.cps
        )
        np.testing.assert_allclose(deadlines, 3.0 * min_exec)
        with pytest.raises(InvalidParameterError):
            ProportionalDeadlines(factor=1.0)

    def test_proportional_jitter_stays_feasible(self, rng, small_cluster):
        sigmas = np.full(1_000, 25.0)
        model = ProportionalDeadlines(factor=1.05, jitter=0.5)
        deadlines = model.sample(rng, sigmas, small_cluster)
        min_exec = dlt.execution_time_array(
            sigmas, small_cluster.nodes, small_cluster.cms, small_cluster.cps
        )
        assert (deadlines > min_exec).all()


class TestComposedScenarios:
    """Non-paper workloads run end-to-end through the simulator."""

    @pytest.mark.parametrize(
        "workload_kind", ["bursty", "pareto", "uniform", "proportional"]
    )
    def test_end_to_end(self, workload_kind):
        cluster = ClusterSpec(nodes=8, cms=1.0, cps=100.0)
        mean_exec = dlt.execution_time(100.0, 8, 1.0, 100.0)
        arrivals = PoissonProcess(mean_interarrival=mean_exec / 0.6)
        sizes = TruncatedNormalSizes(mean=100.0)
        deadlines = UniformDeadlines.from_dc_ratio(2.0, 100.0, cluster)
        if workload_kind == "bursty":
            arrivals = MMPPProcess.balanced(mean_exec / 0.6, burst_factor=4.0)
        elif workload_kind == "pareto":
            sizes = ParetoSizes(mean=100.0, alpha=2.5)
        elif workload_kind == "uniform":
            sizes = UniformSizes(low=50.0, high=150.0)
        else:
            deadlines = ProportionalDeadlines(factor=2.0, jitter=0.2)
        scenario = Scenario(
            cluster=cluster,
            workload=WorkloadModel(
                arrivals=arrivals, sizes=sizes, deadlines=deadlines
            ),
            total_time=40_000.0,
            seed=5,
            name=workload_kind,
        )
        result = simulate(scenario, "EDF-DLT")
        assert result.output.validation.ok
        assert 0.0 <= result.metrics.reject_ratio <= 1.0
        assert result.metrics.deadline_misses == 0
        # Determinism end-to-end, not just at the task-set level.
        assert simulate(scenario, "EDF-DLT").metrics == result.metrics
