"""Node-ordering policies: availability / fastest-first / bandwidth-first."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import make_algorithm
from repro.core.cluster import ClusterProfile
from repro.core.errors import InvalidParameterError
from repro.core.partition import (
    NODE_ORDERS,
    DltIitPartitioner,
    OprPartitioner,
    UserSplitPartitioner,
    sorted_candidates,
    validate_node_order,
)
from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.runner import simulate
from repro.workload.scenario import Scenario
from tests.conftest import make_task

HET = ClusterProfile.from_vectors(
    cps=[120.0, 80.0, 100.0, 60.0],
    cms=[1.0, 2.0, 1.5, 0.5],
)


class TestSortedCandidates:
    def test_default_matches_stable_argsort(self):
        avail = np.array([5.0, 0.0, 5.0, 0.0])
        order, sorted_avail = sorted_candidates(avail, HET, "availability")
        assert order.tolist() == [1, 3, 0, 2]
        assert sorted_avail.tolist() == [0.0, 0.0, 5.0, 5.0]

    def test_fastest_first_breaks_ties_by_cps(self):
        avail = np.zeros(4)  # everyone free: pure tie-break
        order, _ = sorted_candidates(avail, HET, "fastest-first")
        # cps = [120, 80, 100, 60] → cheapest first: node 3, 1, 2, 0
        assert order.tolist() == [3, 1, 2, 0]

    def test_bandwidth_first_breaks_ties_by_cms(self):
        avail = np.zeros(4)
        order, _ = sorted_candidates(avail, HET, "bandwidth-first")
        # cms = [1, 2, 1.5, 0.5] → node 3, 0, 2, 1
        assert order.tolist() == [3, 0, 2, 1]

    def test_availability_dominates_tiebreak(self):
        avail = np.array([0.0, 0.0, 10.0, 10.0])
        order, _ = sorted_candidates(avail, HET, "fastest-first")
        # among the free pair {0,1}: 1 is cheaper; among {2,3}: 3 is cheaper
        assert order.tolist() == [1, 0, 3, 2]

    def test_equal_costs_fall_back_to_node_id(self):
        uniform = ClusterProfile.homogeneous(4, cms=1.0, cps=100.0)
        avail = np.zeros(4)
        for order_name in NODE_ORDERS:
            order, _ = sorted_candidates(avail, uniform, order_name)
            assert order.tolist() == [0, 1, 2, 3]

    def test_validate_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            validate_node_order("slowest-first")


class TestPartitionerIntegration:
    @pytest.mark.parametrize(
        "cls", [DltIitPartitioner, OprPartitioner, UserSplitPartitioner]
    )
    def test_constructor_validates(self, cls):
        with pytest.raises(InvalidParameterError):
            cls(node_order="no-such-order")

    def test_fastest_first_picks_cheap_nodes(self):
        task = make_task(sigma=10.0, deadline=2_000.0)
        avail = np.zeros(4)
        default = DltIitPartitioner().place(task, avail, HET, 0.0)
        fastest = DltIitPartitioner(node_order="fastest-first").place(
            task, avail, HET, 0.0
        )
        assert default is not None and fastest is not None
        assert fastest.node_ids[0] == 3  # the cheapest node leads
        assert default.node_ids[0] == 0  # paper order: node id
        # fewer/faster nodes → no later completion estimate
        assert fastest.est_completion <= default.est_completion + 1e-9


class TestEndToEndPlumbing:
    def _scenario(self) -> Scenario:
        # Node ids run *against* the speed order (node 0 slowest), so the
        # paper's node-id tie-break and fastest-first genuinely disagree.
        from repro.workload.scenario import WorkloadModel

        cluster = ClusterProfile.from_vectors(
            cps=[150.0, 130.0, 110.0, 90.0, 70.0, 60.0, 50.0, 40.0],
            cms=1.0,
        )
        return Scenario(
            cluster=cluster,
            workload=WorkloadModel.paper(
                system_load=0.7,
                avg_sigma=200.0,
                dc_ratio=2.0,
                cluster=cluster,
            ),
            total_time=40_000.0,
            seed=11,
            name="node-order-test",
        )

    def test_default_order_is_bit_identical_to_unspecified(self):
        scenario = self._scenario()
        plain = simulate(scenario, "EDF-DLT")
        explicit = simulate(scenario, "EDF-DLT", node_order="availability")
        assert plain.metrics == explicit.metrics

    def test_make_algorithm_accepts_order(self):
        inst = make_algorithm("EDF-DLT", node_order="bandwidth-first")
        assert inst.partitioner.node_order == "bandwidth-first"

    def test_order_changes_results_on_het_cluster(self):
        scenario = self._scenario()
        default = simulate(scenario, "EDF-DLT")
        fastest = simulate(scenario, "EDF-DLT", node_order="fastest-first")
        # same arrivals either way; the placements (and typically the
        # reject ratio) differ
        assert default.metrics.arrivals == fastest.metrics.arrivals
        d_nodes = {
            tid: r.node_ids for tid, r in default.output.records.items()
        }
        f_nodes = {
            tid: r.node_ids for tid, r in fastest.output.records.items()
        }
        assert d_nodes != f_nodes

    def test_runspec_carries_node_order(self):
        scenario = self._scenario()
        records = BatchRunner().run(
            [
                RunSpec(
                    scenario=scenario,
                    algorithm="EDF-DLT",
                    node_order="fastest-first",
                ),
                RunSpec(scenario=scenario, algorithm="EDF-DLT"),
            ]
        )
        direct = simulate(scenario, "EDF-DLT", node_order="fastest-first")
        assert records[0].metrics == direct.metrics
        assert records[1].metrics == simulate(scenario, "EDF-DLT").metrics

    def test_runspec_validates_order(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(
                scenario=self._scenario(),
                algorithm="EDF-DLT",
                node_order="bogus",
            )


class TestNodeOrderSweep:
    """The ROADMAP follow-on: grid node orders against heterogeneity spreads."""

    def _run(self, **kw):
        from repro.experiments.sweep import run_node_order_sweep

        base = dict(
            spreads=(0.0, 0.8),
            nodes=6,
            total_time=15_000.0,
            replications=2,
            seed=11,
        )
        base.update(kw)
        return run_node_order_sweep(**base)

    def test_series_are_node_orders(self):
        result = self._run()
        assert tuple(result.series) == NODE_ORDERS
        for order in NODE_ORDERS:
            assert len(result.series[order]) == 2
            for point in result.series[order]:
                assert point.ci.n == 2

    def test_homogeneous_point_is_order_invariant(self):
        """At spread 0 every ordering coincides on the homogeneous cluster."""
        result = self._run()
        at_zero = {o: result.series[o][0].mean for o in NODE_ORDERS}
        assert len(set(at_zero.values())) == 1

    def test_subset_and_single_algorithm(self):
        result = self._run(
            node_orders=("availability", "fastest-first"),
            algorithm="EDF-OPR-MN",
        )
        assert tuple(result.series) == ("availability", "fastest-first")

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidParameterError):
            self._run(node_orders=("bogus",))
        with pytest.raises(ValueError):
            self._run(node_orders=())
        with pytest.raises(ValueError):
            self._run(node_orders=("availability", "availability"))
        with pytest.raises(ValueError):
            self._run(spreads=())

    def test_parallel_matches_serial(self):
        serial = self._run()
        threaded = self._run(workers=2, workers_mode="thread")
        for order in NODE_ORDERS:
            assert (
                [p.mean for p in serial.series[order]]
                == [p.mean for p in threaded.series[order]]
            )
