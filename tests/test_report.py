"""Tests for report rendering (tables, CSV, ASCII charts)."""

from __future__ import annotations

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.report import panel_to_csv, render_chart, render_panel
from repro.experiments.sweep import PanelResult
from repro.metrics.stats import ConfidenceInterval, PointEstimate


def fake_result(loads=(0.2, 0.8), a="EDF-DLT", b="EDF-OPR-MN", means=None):
    """Hand-built PanelResult so rendering tests need no simulation."""
    spec = FIGURES["fig3a"]
    means = means or {a: [0.1, 0.3], b: [0.15, 0.4]}
    series = {
        alg: tuple(
            PointEstimate(
                x=load,
                ci=ConfidenceInterval(
                    mean=means[alg][i], half_width=0.01, confidence=0.95, n=3
                ),
                samples=(means[alg][i],) * 3,
            )
            for i, load in enumerate(loads)
        )
        for alg in (a, b)
    }
    return PanelResult(
        spec=spec, loads=tuple(loads), series=series, total_time=1e5, replications=3
    )


class TestPanelResultHelpers:
    def test_mean_curve(self):
        r = fake_result()
        assert r.mean_curve("EDF-DLT") == [0.1, 0.3]

    def test_wins_counts_strict_wins(self):
        r = fake_result()
        assert r.wins("EDF-DLT") == 2
        assert r.wins("EDF-OPR-MN") == 0

    def test_wins_with_tolerance(self):
        r = fake_result(means={"EDF-DLT": [0.10, 0.30], "EDF-OPR-MN": [0.11, 0.40]})
        assert r.wins("EDF-DLT", tol=0.05) == 1  # only the 0.1 gap counts

    def test_mean_gap_sign(self):
        r = fake_result()
        assert r.mean_gap("EDF-DLT", "EDF-OPR-MN") == pytest.approx(0.075)
        assert r.mean_gap("EDF-OPR-MN", "EDF-DLT") == pytest.approx(-0.075)


class TestRenderers:
    def test_table_without_ci(self):
        text = render_panel(fake_result(), show_ci=False)
        assert "0.1000" in text and "±" not in text.split("\n\n")[-2]

    def test_table_with_ci(self):
        text = render_panel(fake_result(), show_ci=True)
        assert "0.1000 ± 0.0100" in text

    def test_csv_values(self):
        csv = panel_to_csv(fake_result())
        rows = csv.strip().splitlines()
        assert rows[1].startswith("0.200,0.100000,0.010000,0.150000")

    def test_chart_contains_markers_and_axis(self):
        art = render_chart(fake_result())
        assert "*" in art or "@" in art
        assert "o" in art or "@" in art
        assert "Task Reject Ratio vs SystemLoad" in art
        # y-axis labels descend from the max.
        first_label = float(art.splitlines()[1].split("|")[0])
        assert first_label > 0

    def test_chart_single_point(self):
        art = render_chart(fake_result(loads=(0.5,), means={
            "EDF-DLT": [0.2], "EDF-OPR-MN": [0.2]
        }))
        assert "@" in art  # overlapping point marker
