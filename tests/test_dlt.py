"""Unit + property tests for the homogeneous DLT closed forms ([22])."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dlt
from repro.core.errors import InvalidParameterError

# Strategy bounds chosen to cover the paper's entire parameter space
# (Cms in [1, 8], Cps in [10, 10000], sigma around 200) with margin.
costs = st.floats(min_value=0.01, max_value=1e5, allow_nan=False)
sigmas = st.floats(min_value=0.01, max_value=1e5, allow_nan=False)
node_counts = st.integers(min_value=1, max_value=128)


class TestBeta:
    def test_baseline_value(self):
        assert dlt.beta(1.0, 100.0) == pytest.approx(100.0 / 101.0)

    def test_symmetric_costs(self):
        assert dlt.beta(5.0, 5.0) == pytest.approx(0.5)

    @given(cms=costs, cps=costs)
    def test_in_open_unit_interval(self, cms, cps):
        b = dlt.beta(cms, cps)
        assert 0.0 < b < 1.0

    @pytest.mark.parametrize("cms,cps", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0), (1.0, -2.0)])
    def test_invalid_costs_rejected(self, cms, cps):
        with pytest.raises(InvalidParameterError):
            dlt.beta(cms, cps)


class TestExecutionTime:
    def test_single_node_is_transmit_plus_compute(self):
        # n=1: E = sigma*(Cms+Cps) exactly.
        assert dlt.execution_time(200.0, 1, 1.0, 100.0) == pytest.approx(
            200.0 * 101.0
        )

    def test_paper_baseline_e_avg(self):
        # E(200, 16) with Cms=1, Cps=100 — the quantity that calibrates
        # every experiment's arrival rate.  Reference value from the
        # closed form evaluated in exact arithmetic.
        e = dlt.execution_time(200.0, 16, 1.0, 100.0)
        assert e == pytest.approx(1358.8919364178887, rel=1e-12)

    @given(sigma=sigmas, n=node_counts, cms=costs, cps=costs)
    def test_monotone_decreasing_in_n(self, sigma, n, cms, cps):
        e_n = dlt.execution_time(sigma, n, cms, cps)
        e_n1 = dlt.execution_time(sigma, n + 1, cms, cps)
        assert e_n1 <= e_n * (1 + 1e-12)

    @given(sigma=sigmas, n=node_counts, cms=costs, cps=costs)
    def test_bounded_below_by_transmission(self, sigma, n, cms, cps):
        # E(sigma, n) >= sigma*Cms: the head must push all data serially
        # (equality only in the float limit when beta underflows).
        assert dlt.execution_time(sigma, n, cms, cps) >= sigma * cms * (1 - 1e-12)

    @given(sigma=sigmas, cms=costs, cps=costs)
    def test_limit_is_saturated_time(self, sigma, cms, cps):
        e_big = dlt.execution_time(sigma, 10_000, cms, cps)
        sat = dlt.saturated_execution_time(sigma, cms, cps)
        assert e_big >= sat * (1 - 1e-12)
        # With beta^10000 ~ 0 for moderate beta the limit is approached;
        # only assert the ordering plus a generous closeness when beta is
        # not pathologically near 1.
        if dlt.beta(cms, cps) < 0.99:
            assert e_big == pytest.approx(sat, rel=1e-6)

    @given(sigma=sigmas, n=node_counts, cms=costs, cps=costs)
    def test_linear_in_sigma(self, sigma, n, cms, cps):
        e1 = dlt.execution_time(sigma, n, cms, cps)
        e2 = dlt.execution_time(2.0 * sigma, n, cms, cps)
        assert e2 == pytest.approx(2.0 * e1, rel=1e-9)

    def test_extreme_beta_close_to_one_is_stable(self):
        # cps >> cms: beta = 1 - 1e-8; naive (1-b)/(1-b^n) would lose
        # precision; expm1/log1p path must stay accurate.
        e = dlt.execution_time(100.0, 64, 1e-3, 1e5)
        # n*log(beta) tiny => E ~ sigma*(cms+cps)/n
        assert e == pytest.approx(100.0 * (1e-3 + 1e5) / 64, rel=1e-4)

    @pytest.mark.parametrize("bad_sigma", [0.0, -5.0])
    def test_invalid_sigma(self, bad_sigma):
        with pytest.raises(InvalidParameterError):
            dlt.execution_time(bad_sigma, 4, 1.0, 100.0)

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            dlt.execution_time(10.0, 0, 1.0, 100.0)


class TestOprAlphas:
    @given(n=node_counts, cms=costs, cps=costs)
    def test_sum_to_one(self, n, cms, cps):
        a = dlt.opr_alphas(n, cms, cps)
        assert a.sum() == pytest.approx(1.0, rel=1e-12)

    @given(n=node_counts, cms=costs, cps=costs)
    def test_geometric_ratio_is_beta(self, n, cms, cps):
        a = dlt.opr_alphas(n, cms, cps)
        b = dlt.beta(cms, cps)
        # Skip pairs where the geometric tail underflowed to denormals.
        mask = a[:-1] > 1e-280
        ratios = a[1:][mask] / a[:-1][mask]
        assert np.allclose(ratios, b, rtol=1e-6)

    @given(n=node_counts, cms=costs, cps=costs)
    def test_non_increasing(self, n, cms, cps):
        a = dlt.opr_alphas(n, cms, cps)
        assert np.all(np.diff(a) <= 0)

    def test_equal_finish_times(self):
        # The OPR optimality principle: every node's finish time equals E.
        sigma, n, cms, cps = 200.0, 8, 1.0, 100.0
        a = dlt.opr_alphas(n, cms, cps)
        e = dlt.execution_time(sigma, n, cms, cps)
        cum_trans = np.cumsum(a) * sigma * cms
        finish = cum_trans + a * sigma * cps
        assert np.allclose(finish, e, rtol=1e-9)


class TestMinNodes:
    def test_exactness_against_linear_scan(self):
        # n_min from the closed form must equal the smallest n with
        # E(sigma, n) <= budget found by brute force.
        sigma, cms, cps = 200.0, 1.0, 100.0
        for budget in (250.0, 400.0, 1000.0, 2500.0, 10000.0, 25000.0):
            got = dlt.min_nodes(sigma, cms, cps, budget)
            brute = next(
                (
                    n
                    for n in range(1, 4097)
                    if dlt.execution_time(sigma, n, cms, cps) <= budget * (1 + 1e-9)
                ),
                None,
            )
            assert got == brute, f"budget={budget}: closed={got} brute={brute}"

    def test_infeasible_budget_below_transmission(self):
        # budget <= sigma*Cms can never work (gamma <= 0).
        assert dlt.min_nodes(200.0, 1.0, 100.0, 200.0) is None
        assert dlt.min_nodes(200.0, 1.0, 100.0, 199.0) is None
        assert dlt.min_nodes(200.0, 1.0, 100.0, 0.0) is None
        assert dlt.min_nodes(200.0, 1.0, 100.0, -5.0) is None

    def test_max_nodes_cap(self):
        sigma, cms, cps = 200.0, 1.0, 100.0
        tight = dlt.execution_time(sigma, 16, cms, cps)  # needs exactly 16
        assert dlt.min_nodes(sigma, cms, cps, tight, max_nodes=16) == 16
        assert dlt.min_nodes(sigma, cms, cps, tight * 0.999, max_nodes=16) is None

    def test_loose_budget_needs_one_node(self):
        sigma, cms, cps = 10.0, 1.0, 10.0
        assert dlt.min_nodes(sigma, cms, cps, sigma * (cms + cps) * 2) == 1

    @given(
        sigma=st.floats(min_value=1.0, max_value=1e4),
        cms=st.floats(min_value=0.1, max_value=10.0),
        cps=st.floats(min_value=1.0, max_value=1e4),
        budget_factor=st.floats(min_value=1.01, max_value=50.0),
    )
    @settings(max_examples=200)
    def test_returned_n_meets_budget(self, sigma, cms, cps, budget_factor):
        budget = sigma * cms * budget_factor  # above the feasibility floor
        n = dlt.min_nodes(sigma, cms, cps, budget)
        if n is None:
            # Only allowed when even infinitely many nodes cannot help.
            assert budget <= sigma * cms * (1 + 1e-9)
        else:
            assert dlt.execution_time(sigma, n, cms, cps) <= budget * (1 + 1e-6)
            if n > 1:
                assert dlt.execution_time(sigma, n - 1, cms, cps) > budget * (
                    1 - 1e-6
                )

    @given(
        sigma=st.floats(min_value=1.0, max_value=1e4),
        budget1=st.floats(min_value=1.0, max_value=1e6),
        budget2=st.floats(min_value=1.0, max_value=1e6),
    )
    def test_monotone_in_budget(self, sigma, budget1, budget2):
        lo, hi = sorted((budget1, budget2))
        n_lo = dlt.min_nodes(sigma, 1.0, 100.0, lo)
        n_hi = dlt.min_nodes(sigma, 1.0, 100.0, hi)
        if n_lo is not None:
            assert n_hi is not None and n_hi <= n_lo


class TestGamma:
    def test_matches_eq14(self):
        assert dlt.gamma(200.0, 1.0, 400.0) == pytest.approx(0.5)

    def test_nonpositive_budget(self):
        assert dlt.gamma(200.0, 1.0, 0.0) == -math.inf
        assert dlt.gamma(200.0, 1.0, -1.0) == -math.inf


class TestExecutionTimeArray:
    def test_matches_scalar(self):
        sig = np.array([10.0, 200.0, 3333.0])
        arr = dlt.execution_time_array(sig, 16, 1.0, 100.0)
        for s, e in zip(sig, arr):
            assert e == pytest.approx(dlt.execution_time(float(s), 16, 1.0, 100.0))

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            dlt.execution_time_array(np.array([1.0, 0.0]), 4, 1.0, 100.0)
