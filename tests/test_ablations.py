"""Tests for the ablation drivers."""

from __future__ import annotations

import pytest

from repro.ext.ablations import ABLATIONS, run_ablation
from repro.workload.spec import SimulationConfig


def small_config(**kw):
    base = dict(
        nodes=8,
        cms=1.0,
        cps=100.0,
        system_load=0.8,
        avg_sigma=100.0,
        dc_ratio=2.0,
        total_time=60_000.0,
        seed=17,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestRunAblation:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown ablation"):
            run_ablation("nonsense", small_config())

    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_each_ablation_runs(self, name):
        result = run_ablation(name, small_config())
        assert result.name == name
        assert 0.0 <= result.baseline.reject_ratio <= 1.0
        assert 0.0 <= result.variant.reject_ratio <= 1.0
        assert result.baseline.arrivals == result.variant.arrivals
        assert result.summary()  # renders

    def test_eager_release_never_hurts(self):
        result = run_ablation("eager-release", small_config())
        assert result.reject_ratio_delta <= 0.02

    def test_fixed_point_never_hurts_dlt(self):
        result = run_ablation("fixed-point-n", small_config())
        assert result.reject_ratio_delta <= 0.02

    def test_shared_head_link_reports_misses(self):
        """Under the ablation, any overruns surface as recorded deadline
        misses rather than exceptions."""
        result = run_ablation("shared-head-link", small_config(cms=8.0))
        assert result.variant.deadline_misses >= 0  # recorded, not raised

    def test_delta_sign_convention(self):
        r = run_ablation("all-nodes", small_config())
        assert r.reject_ratio_delta == pytest.approx(
            r.variant.reject_ratio - r.baseline.reject_ratio
        )
