"""Tests for the task and cluster models (Section 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cluster import ClusterSpec
from repro.core.errors import InvalidParameterError, InvalidTaskError
from repro.core.task import DivisibleTask, TaskOutcome, TaskRecord


class TestDivisibleTask:
    def test_absolute_deadline(self):
        t = DivisibleTask(task_id=1, arrival=10.0, sigma=5.0, deadline=20.0)
        assert t.absolute_deadline == pytest.approx(30.0)

    def test_immutable(self):
        t = DivisibleTask(task_id=1, arrival=0.0, sigma=1.0, deadline=1.0)
        with pytest.raises(AttributeError):
            t.sigma = 2.0  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_id": -1},
            {"arrival": -0.5},
            {"arrival": float("nan")},
            {"sigma": 0.0},
            {"sigma": -1.0},
            {"sigma": float("inf")},
            {"deadline": 0.0},
            {"deadline": -3.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        base = {"task_id": 0, "arrival": 0.0, "sigma": 1.0, "deadline": 1.0}
        base.update(kwargs)
        with pytest.raises(InvalidTaskError):
            DivisibleTask(**base)

    @given(
        arrival=st.floats(min_value=0, max_value=1e9),
        sigma=st.floats(min_value=1e-6, max_value=1e9),
        deadline=st.floats(min_value=1e-6, max_value=1e9),
    )
    def test_valid_domain_accepted(self, arrival, sigma, deadline):
        t = DivisibleTask(task_id=0, arrival=arrival, sigma=sigma, deadline=deadline)
        assert t.absolute_deadline >= arrival


class TestTaskRecord:
    def _task(self):
        return DivisibleTask(task_id=0, arrival=0.0, sigma=10.0, deadline=100.0)

    def test_deadline_met_none_until_completed(self):
        rec = TaskRecord(task=self._task(), outcome=TaskOutcome.ACCEPTED)
        assert rec.deadline_met is None
        assert rec.completion_slack is None

    def test_deadline_met_true(self):
        rec = TaskRecord(
            task=self._task(),
            outcome=TaskOutcome.ACCEPTED,
            est_completion=90.0,
            actual_completion=85.0,
        )
        assert rec.deadline_met is True
        assert rec.completion_slack == pytest.approx(5.0)

    def test_deadline_met_false(self):
        rec = TaskRecord(
            task=self._task(),
            outcome=TaskOutcome.ACCEPTED,
            est_completion=90.0,
            actual_completion=150.0,
        )
        assert rec.deadline_met is False


class TestClusterSpec:
    def test_beta(self):
        assert ClusterSpec(nodes=4, cms=1.0, cps=100.0).beta == pytest.approx(
            100.0 / 101.0
        )

    def test_cost_functions(self):
        c = ClusterSpec(nodes=2, cms=2.0, cps=50.0)
        assert c.transmission_time(10.0) == pytest.approx(20.0)
        assert c.computation_time(10.0) == pytest.approx(500.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"nodes": -4},
            {"cms": 0.0},
            {"cms": -1.0},
            {"cps": 0.0},
            {"cps": float("nan")},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        base = {"nodes": 4, "cms": 1.0, "cps": 10.0}
        base.update(kwargs)
        with pytest.raises(InvalidParameterError):
            ClusterSpec(**base)

    def test_non_integer_nodes_rejected(self):
        with pytest.raises(InvalidParameterError):
            ClusterSpec(nodes=2.5, cms=1.0, cps=10.0)  # type: ignore[arg-type]
