"""Fault-replay property suite (:mod:`repro.faults`).

The fault layer's three contracts, driven by hypothesis:

(a) an *empty* fault plan reproduces the fault-free run bit for bit —
    across all three admission engines, both policy families, and node
    orders — so attaching the fault machinery costs nothing when unused;
(b) a seeded :class:`FaultProcess` replays the identical event stream
    from the same seed, and materialized plans never violate the event
    model's invariants;
(c) under faults, the world stays honest: all three admission engines
    still agree bit for bit, displaced work re-enters admission exactly
    once per outage (displaced ∪ requeued == readmitted ∪ missed), and
    tasks that cannot be re-fit end as ``DISPLACED`` — never as silent
    successes.

Plus the kernel regression the blackout path exercises: mass
cancellation must trigger heap compaction and keep ``pending_events``
exact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.task import TaskOutcome
from repro.experiments.batch import BatchRunner, RunSpec
from repro.experiments.runner import simulate
from repro.faults import FAULT_KINDS, FAULT_SEED_SALT, FaultEvent, FaultPlan, FaultProcess
from repro.fleet.scenario import FleetScenario
from repro.fleet.sim import simulate_fleet
from repro.sim.engine import COMPACT_MIN_EVENTS, SimulationEngine
from repro.sim.events import EventKind
from repro.workload.scenario import Scenario

ENGINES = ("reference", "fast", "batch")

#: A fault rate that yields a handful of windows on the 40k horizons
#: below — enough to displace work without drowning the run.
RATE = 4e-4


def scenario(seed: int, *, load: float = 1.5, total_time: float = 40_000.0,
             nodes: int = 8, spread: float = 0.0) -> Scenario:
    """A small paper-baseline scenario for fault runs."""
    return Scenario.paper_baseline(
        system_load=load,
        total_time=total_time,
        seed=seed,
        nodes=nodes,
        speed_spread=spread,
    )


def fault_rng(seed: int) -> np.random.Generator:
    """The dedicated fault stream a scenario with this seed would use."""
    return np.random.default_rng(np.random.SeedSequence([seed, FAULT_SEED_SALT]))


def assert_identical_runs(a, b) -> None:
    """Two RunResults must match record for record, counter for counter."""
    assert a.output.stats == b.output.stats
    assert set(a.output.records) == set(b.output.records)
    for tid, rec in a.output.records.items():
        assert rec == b.output.records[tid], f"task {tid} differs"
    assert np.array_equal(a.output.node_busy_time, b.output.node_busy_time)
    assert np.array_equal(
        a.output.node_allocated_time, b.output.node_allocated_time
    )


class TestEventModel:
    """Validation and canonicalization of FaultEvent / FaultPlan."""

    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=0.0, kind="meteor", duration=1.0)

    def test_rejects_bad_scalars(self):
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=-1.0, kind="blackout", duration=1.0)
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=0.0, kind="blackout", duration=0.0)
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=float("nan"), kind="blackout", duration=1.0)

    def test_factor_only_on_capacity_kinds(self):
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=0.0, kind="slowdown", duration=1.0, node=0, factor=0.5)
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=0.0, kind="node_down", duration=1.0, node=0, factor=2.0)
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=0.0, kind="blackout", duration=1.0, factor=2.0)

    def test_node_required_iff_node_kind(self):
        for kind in ("slowdown", "degrade", "node_down"):
            with pytest.raises(InvalidParameterError):
                FaultEvent(
                    time=0.0, kind=kind, duration=1.0,
                    factor=2.0 if kind != "node_down" else 1.0,
                )
        with pytest.raises(InvalidParameterError):
            FaultEvent(time=0.0, kind="blackout", duration=1.0, node=3)

    def test_plan_is_canonically_ordered(self):
        events = [
            FaultEvent(time=5.0, kind="blackout", duration=1.0),
            FaultEvent(time=1.0, kind="node_down", duration=1.0, node=2),
            FaultEvent(time=1.0, kind="slowdown", duration=1.0, node=4, factor=2.0),
        ]
        forward = FaultPlan.from_events(events)
        backward = FaultPlan.from_events(reversed(events))
        assert forward == backward
        assert [e.time for e in forward.events] == [1.0, 1.0, 5.0]
        # same-timestamp priority: capacity changes before outages
        assert forward.events[0].kind == "slowdown"
        assert forward.describe_token() == backward.describe_token()

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.from_events([
            FaultEvent(time=10.0, kind="degrade", duration=5.0, node=1, factor=3.0),
            FaultEvent(time=20.0, kind="blackout", duration=2.0, member=2),
        ])
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.from_dict({"not_events": []})
        with pytest.raises(InvalidParameterError):
            FaultEvent.from_dict({"time": 0.0, "kind": "blackout"})
        with pytest.raises(InvalidParameterError):
            FaultEvent.from_dict(
                {"time": 0.0, "kind": "blackout", "duration": 1.0, "bogus": 1}
            )

    def test_for_member_filters_and_strips(self):
        plan = FaultPlan.from_events([
            FaultEvent(time=1.0, kind="blackout", duration=1.0),           # member 0
            FaultEvent(time=2.0, kind="blackout", duration=1.0, member=0),
            FaultEvent(time=3.0, kind="blackout", duration=1.0, member=1),
        ])
        m0, m1, m2 = plan.for_member(0), plan.for_member(1), plan.for_member(2)
        assert [e.time for e in m0.events] == [1.0, 2.0]
        assert [e.time for e in m1.events] == [3.0]
        assert not m2
        # sub-plans are member-local: the member field is gone
        assert all(e.member is None for e in m0.events + m1.events)
        assert plan.max_member() == 1

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert bool(FaultPlan.from_events(
            [FaultEvent(time=0.0, kind="blackout", duration=1.0)]
        ))


class TestProcessReplay:
    """Property (b): seeded generators replay exactly and stay in-model."""

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_event_stream(self, seed):
        process = FaultProcess(rate=1e-3)
        kwargs = dict(horizon=50_000.0, member_nodes=(8, 4, 16))
        first = process.materialize(fault_rng(seed), **kwargs)
        second = process.materialize(fault_rng(seed), **kwargs)
        assert first == second
        assert first.events == second.events

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        rate=st.sampled_from([1e-4, 1e-3, 5e-3]),
        members=st.sampled_from([(8,), (4, 8), (8, 4, 16)]),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_events_stay_in_model(self, seed, rate, members):
        horizon = 50_000.0
        process = FaultProcess(rate=rate)
        plan = process.materialize(
            fault_rng(seed), horizon=horizon, member_nodes=members
        )
        for event in plan.events:
            assert event.kind in FAULT_KINDS
            assert 0.0 <= event.time < horizon
            assert event.duration > 0.0
            assert event.end > event.time
            member_index = event.member if event.member is not None else 0
            assert 0 <= member_index < len(members)
            if len(members) == 1:
                assert event.member is None
            if event.kind == "blackout":
                assert event.node is None
            else:
                assert event.node is not None
                assert 0 <= event.node < members[member_index]
            if event.kind in ("slowdown", "degrade"):
                assert process.min_factor <= event.factor <= process.max_factor
            else:
                assert event.factor == 1.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_attaching_faults_never_perturbs_the_workload(self, seed):
        clean = scenario(seed)
        faulted = clean.with_overrides(faults=FaultProcess(rate=RATE))
        assert clean.generate_tasks() == faulted.generate_tasks()

    def test_process_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultProcess(rate=0.0)
        with pytest.raises(InvalidParameterError):
            FaultProcess(rate=1e-3, kinds=("meteor",))
        with pytest.raises(InvalidParameterError):
            FaultProcess(rate=1e-3, min_factor=0.5)
        with pytest.raises(InvalidParameterError):
            FaultProcess(rate=1e-3, min_factor=3.0, max_factor=2.0)


class TestEmptyPlanEquivalence:
    """Property (a): an empty plan is bit-for-bit the fault-free run."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        engine=st.sampled_from(ENGINES),
        algorithm=st.sampled_from(["EDF-DLT", "FIFO-OPR-MN", "EDF-UserSplit"]),
        node_order=st.sampled_from(["availability", "fastest-first"]),
        spread=st.sampled_from([0.0, 0.8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_empty_plan_is_the_null_injection(
        self, seed, engine, algorithm, node_order, spread
    ):
        clean = scenario(seed, spread=spread)
        empty = clean.with_overrides(faults=FaultPlan())
        kwargs = dict(admission_engine=engine, node_order=node_order)
        assert_identical_runs(
            simulate(clean, algorithm, **kwargs),
            simulate(empty, algorithm, **kwargs),
        )


class TestEnginesAgreeUnderFaults:
    """Property (c), part 1: the three admission engines stay bit-identical
    when faults mutate availability mid-run."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        algorithm=st.sampled_from(["EDF-DLT", "EDF-OPR-MN", "FIFO-DLT-AN"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_three_engines_bit_identical(self, seed, algorithm):
        faulted = scenario(seed).with_overrides(faults=FaultProcess(rate=RATE))
        reference = simulate(faulted, algorithm, admission_engine="reference")
        for engine in ("fast", "batch"):
            assert_identical_runs(
                reference, simulate(faulted, algorithm, admission_engine=engine)
            )


class TestCheckpointsUnderFaults:
    """The prefix-checkpoint store never serves a stale prefix.

    Outages displace committed work, re-admission replays it through the
    very walks the checkpoint store accelerates, and recovery floors
    mutate availability between walks — the exact sequence that would
    expose a checkpoint keyed on out-of-date reservation state.  Any
    stale restore would change a decision bit against the reference
    engine, so bit-identity under a displacement-heavy plan *is* the
    freshness proof.  An overloaded stream keeps the waiting queue deep
    (checkpoints actually restoring, on both policy orders) rather than
    letting every walk run cold.
    """

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        algorithm=st.sampled_from(["EDF-DLT", "FIFO-DLT"]),
        engine=st.sampled_from(("fast", "batch")),
    )
    @settings(max_examples=10, deadline=None)
    def test_checkpoints_never_serve_a_stale_prefix(
        self, seed, algorithm, engine
    ):
        faulted = scenario(seed, load=3.0).with_overrides(
            faults=FaultProcess(rate=2e-3, kinds=("node_down", "blackout"))
        )
        reference = simulate(faulted, algorithm, admission_engine="reference")
        assert_identical_runs(
            reference, simulate(faulted, algorithm, admission_engine=engine)
        )


class TestDisplacementInvariants:
    """Property (c), part 2: outage bookkeeping is conserved and honest."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_outage_bookkeeping_conserved(self, seed):
        faulted = scenario(seed).with_overrides(
            faults=FaultProcess(rate=RATE, kinds=("node_down", "blackout"))
        )
        result = simulate(faulted, "EDF-DLT")
        output = result.output
        stats = output.stats
        displaced_total = 0
        missed_ids: set[int] = set()
        readmitted_ids: set[int] = set()
        # the fault log rides the runner's RunResult through output-free
        # paths only as counters; re-run the sim directly for the log
        from repro.core.algorithms import make_algorithm
        from repro.sim.cluster_sim import ClusterSimulation

        sim = ClusterSimulation(
            faulted.cluster,
            make_algorithm("EDF-DLT", rng=faulted.algorithm_rng()),
            faulted.generate_tasks(),
            horizon=faulted.total_time,
            faults=faulted.fault_plan(),
        )
        sim_output = sim.run()
        assert sim_output.stats == stats  # the driver path is the direct path
        for entry in sim.fault_log:
            if entry["kind"] in ("slowdown", "degrade"):
                continue
            displaced = set(entry["displaced"])
            requeued = set(entry["requeued"])
            readmitted = set(entry["readmitted"])
            missed = set(entry["missed"])
            # every outage re-plans exactly the torn-down + committed set
            assert displaced | requeued == readmitted | missed
            assert not displaced & requeued
            assert not readmitted & missed
            displaced_total += len(displaced)
            missed_ids |= missed
            readmitted_ids |= readmitted
        assert stats.displaced == displaced_total
        # a task ends DISPLACED iff its *last* re-admission attempt missed
        final_displaced = {
            tid
            for tid, rec in sim_output.records.items()
            if rec.outcome is TaskOutcome.DISPLACED
        }
        assert final_displaced <= missed_ids
        assert missed_ids - readmitted_ids <= final_displaced
        # displaced tasks never report a completion: honest loss, not a
        # silent success
        for tid in final_displaced:
            assert sim_output.records[tid].actual_completion is None

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_slowdown_misses_are_honest(self, seed):
        faulted = scenario(seed).with_overrides(
            faults=FaultProcess(rate=2e-3, kinds=("slowdown", "degrade"))
        )
        output = simulate(faulted, "EDF-DLT").output
        for rec in output.records.values():
            if rec.actual_completion is None:
                continue
            expect_met = (
                rec.actual_completion <= rec.task.arrival + rec.task.deadline
            )
            assert rec.deadline_met == expect_met


class TestHeapCompaction:
    """Mass cancellation keeps the kernel heap compact and counters exact."""

    def test_kernel_compacts_under_mass_cancellation(self):
        engine = SimulationEngine()
        total = 4 * COMPACT_MIN_EVENTS
        handles = [
            engine.schedule(float(i + 1), EventKind.GENERIC, lambda e, t: None)
            for i in range(total)
        ]
        survivors = total // 4
        for handle in handles[survivors:]:
            handle.cancel()
        assert engine.pending_events == survivors
        # compaction fired: the heap holds no dead weight beyond the
        # ratio bound, instead of all (total - survivors) corpses
        assert len(engine._heap) < total
        assert engine._cancelled_in_heap <= len(engine._heap) / 2
        live = sum(1 for e in engine._heap if not e[3].cancelled)
        assert live == survivors == engine.pending_events
        engine.run()
        assert engine.processed_events == survivors
        assert engine.pending_events == 0

    def test_blackout_mass_cancellation_keeps_sim_consistent(self):
        # a saturating load builds a deep committed schedule, then one
        # blackout cancels every start event at once
        plan = FaultPlan.from_events(
            [FaultEvent(time=8_000.0, kind="blackout", duration=6_000.0)]
        )
        sc = scenario(97, load=3.0, total_time=30_000.0).with_overrides(faults=plan)
        from repro.core.algorithms import make_algorithm
        from repro.sim.cluster_sim import ClusterSimulation

        sim = ClusterSimulation(
            sc.cluster,
            make_algorithm("EDF-DLT", rng=sc.algorithm_rng()),
            sc.generate_tasks(),
            horizon=sc.total_time,
            faults=sc.fault_plan(),
        )
        output = sim.run()
        [entry] = [e for e in sim.fault_log if e["kind"] == "blackout"]
        # the blackout actually tore down a committed schedule
        assert len(entry["displaced"]) + len(entry["requeued"]) > 0
        assert output.stats.displaced == len(entry["displaced"])
        # after the run the heap drained completely and counters agree
        assert sim.engine.pending_events == 0
        assert sim.engine._cancelled_in_heap == 0


class TestFaultedFleet:
    """Fleet-level fault plumbing: sub-plans, routing health, determinism."""

    FLEET = dict(
        n_clusters=3,
        system_load=0.8,
        total_time=60_000.0,
        seed=2007,
        nodes=8,
        cluster_spread=0.5,
    )

    def test_empty_plan_fleet_is_fault_free(self):
        base = FleetScenario.uniform(**self.FLEET)
        clean = simulate_fleet(base, "EDF-DLT")
        empty = simulate_fleet(base.with_faults(FaultPlan()), "EDF-DLT")
        assert clean.assignments == empty.assignments
        assert clean.metrics == empty.metrics

    def test_member_sub_plans_partition_the_fleet_plan(self):
        base = FleetScenario.uniform(**self.FLEET).with_faults(
            FaultProcess(rate=1e-3)
        )
        plan = base.fault_plan()
        sub = [base.member_scenario(i).faults for i in range(3)]
        assert sum(len(s) for s in sub) == len(plan)

    def test_least_loaded_steers_around_blackout(self):
        plan = FaultPlan.from_events([
            FaultEvent(time=5_000.0, kind="blackout", duration=30_000.0, member=0)
        ])
        base = FleetScenario.uniform(**self.FLEET).with_policy("least-loaded")
        out = simulate_fleet(base.with_faults(plan), "EDF-DLT")
        routed = out.routed_counts
        assert routed[0] == min(routed)
        assert out.metrics.displaced >= 0

    def test_explicit_plan_member_bound_checked(self):
        plan = FaultPlan.from_events([
            FaultEvent(time=1.0, kind="blackout", duration=1.0, member=7)
        ])
        with pytest.raises(InvalidParameterError):
            FleetScenario.uniform(**self.FLEET).with_faults(plan)

    def test_faulted_fleet_identical_across_worker_modes(self):
        base = FleetScenario.uniform(**self.FLEET).with_policy(
            "least-loaded"
        ).with_faults(FaultProcess(rate=3e-4))
        spec = [RunSpec(scenario=base, algorithm="EDF-OPR-MN")]
        [serial] = BatchRunner(workers=None).run(spec)
        [process] = BatchRunner(workers=2, workers_mode="process").run(spec)
        [thread] = BatchRunner(workers=2, workers_mode="thread").run(spec)
        assert serial.metrics == process.metrics == thread.metrics
        assert serial.metrics.displaced > 0  # the faults actually bit
